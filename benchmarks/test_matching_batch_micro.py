"""Micro-benchmarks of the batch-vectorized matching path.

Single-event vs batch throughput for the counting engine, the
columnar-vs-per-event index probe comparison, and the end-to-end batch
paths.  Results land in ``BENCH_matching.json`` next to the single-event
numbers so the speedup is tracked across PRs (schema documented in
``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

import pytest

from conftest import best_seconds
from repro.events import EventBatch
from repro.matching.batch import counting_match_batch_rowwise
from repro.matching.counting import CountingMatcher


@pytest.fixture(scope="module")
def counting(bench_subscriptions):
    matcher = CountingMatcher()
    for subscription in bench_subscriptions:
        matcher.register(subscription)
    return matcher


def test_batch_matches_sequential(counting, bench_events):
    """The vectorized path is exactly the sequential path, event-wise."""
    events = bench_events.events
    assert counting.match_batch(events) == [
        sorted(counting.match(event)) for event in events
    ]
    assert counting_match_batch_rowwise(counting, events) == [
        sorted(counting.match(event)) for event in events
    ]


def test_batch_matching_throughput(benchmark, counting, bench_events,
                                   bench_results):
    events = bench_events.events

    def run_batch():
        return sum(len(ids) for ids in counting.match_batch(events))

    matches = benchmark(run_batch)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["events"] = len(events)

    def run_sequential():
        return sum(len(counting.match(event)) for event in events)

    batch_seconds, _ = best_seconds(run_batch)
    sequential_seconds, _ = best_seconds(run_sequential)
    bench_results["batch"] = {
        "events": len(events),
        "batch_seconds": batch_seconds,
        "sequential_seconds": sequential_seconds,
        "batch_events_per_second": (
            len(events) / batch_seconds if batch_seconds else None
        ),
        "sequential_events_per_second": (
            len(events) / sequential_seconds if sequential_seconds else None
        ),
        "batch_speedup": (
            sequential_seconds / batch_seconds if batch_seconds else None
        ),
    }


def test_columnar_probe_speedup(counting, bench_events, bench_results):
    """Columnar batch probe vs the per-event ``collect`` loop.

    Measured twice: probe-only (the index work this PR vectorizes — one
    ``searchsorted``/dict lookup per bucket per batch instead of per
    event) and end-to-end through ``match_batch`` (where the shared
    candidate test and tree-evaluation fallback dilute the probe win).
    The acceptance gate is the columnar probe beating the loop.
    """
    events = bench_events.events
    columns = EventBatch(events).columns()
    indexes = counting._indexes

    def probe_columnar():
        positives, negatives = ([], []), ([], [])
        indexes.collect_batch(columns, positives, negatives)
        return sum(len(array) for array in positives[0])

    def probe_rowwise():
        total = 0
        for event in events:
            positives, negatives = [], []
            for attribute, value in event.items():
                indexes.collect(attribute, value, positives, negatives)
            total += sum(len(array) for array in positives)
        return total

    assert probe_columnar() == probe_rowwise()
    columnar_probe_seconds, _ = best_seconds(probe_columnar)
    rowwise_probe_seconds, _ = best_seconds(probe_rowwise)

    def run_columnar():
        # A fresh EventBatch each call keeps columnarization inside the
        # measured region — batches arrive columnarized exactly once.
        return sum(len(ids) for ids in counting.match_batch(EventBatch(events)))

    def run_rowwise():
        return sum(
            len(ids) for ids in counting_match_batch_rowwise(counting, events)
        )

    assert run_columnar() == run_rowwise()
    columnar_seconds, _ = best_seconds(run_columnar)
    rowwise_seconds, _ = best_seconds(run_rowwise)
    bench_results["columnar_probe"] = {
        "events": len(events),
        "columnar_probe_seconds": columnar_probe_seconds,
        "rowwise_probe_seconds": rowwise_probe_seconds,
        "probe_speedup": (
            rowwise_probe_seconds / columnar_probe_seconds
            if columnar_probe_seconds
            else None
        ),
        "columnar_match_seconds": columnar_seconds,
        "rowwise_match_seconds": rowwise_seconds,
        "match_speedup": (
            rowwise_seconds / columnar_seconds if columnar_seconds else None
        ),
    }
    # Gross-regression gate only: the measured speedup itself lands in
    # BENCH_matching.json (typically ~3x at bench scale).  A generous
    # margin keeps shared CI runners' scheduling noise from flaking the
    # build while still catching the columnar path becoming slower than
    # the loop it replaced.
    assert columnar_probe_seconds < rowwise_probe_seconds * 1.5
