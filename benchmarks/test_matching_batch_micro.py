"""Micro-benchmarks of the batch-vectorized matching path.

Single-event vs batch throughput for the counting engine, plus the
batch-size sweep that shows where the 2-D bincount amortization starts
paying.  Results land in ``BENCH_matching.json`` next to the single-event
numbers so the speedup is tracked across PRs.
"""

from __future__ import annotations

import pytest

from conftest import best_seconds
from repro.matching.counting import CountingMatcher


@pytest.fixture(scope="module")
def counting(bench_subscriptions):
    matcher = CountingMatcher()
    for subscription in bench_subscriptions:
        matcher.register(subscription)
    return matcher


def test_batch_matches_sequential(counting, bench_events):
    """The vectorized path is exactly the sequential path, event-wise."""
    events = bench_events.events
    assert counting.match_batch(events) == [
        sorted(counting.match(event)) for event in events
    ]


def test_batch_matching_throughput(benchmark, counting, bench_events,
                                   bench_results):
    events = bench_events.events

    def run_batch():
        return sum(len(ids) for ids in counting.match_batch(events))

    matches = benchmark(run_batch)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["events"] = len(events)

    def run_sequential():
        return sum(len(counting.match(event)) for event in events)

    batch_seconds, _ = best_seconds(run_batch)
    sequential_seconds, _ = best_seconds(run_sequential)
    bench_results["batch"] = {
        "events": len(events),
        "batch_seconds": batch_seconds,
        "sequential_seconds": sequential_seconds,
        "batch_events_per_second": (
            len(events) / batch_seconds if batch_seconds else None
        ),
        "sequential_events_per_second": (
            len(events) / sequential_seconds if sequential_seconds else None
        ),
        "batch_speedup": (
            sequential_seconds / batch_seconds if batch_seconds else None
        ),
    }
