"""Ablation: Δ≈sel/Δ≈eff reference point (Sect. 3.1/3.3).

The paper compares candidate prunings against the *originally registered*
subscription so that accumulated degradation is charged to later
prunings; the alternative — comparing against the current (already
pruned) tree — makes a chain of small degradations look cheap.  This
ablation runs both policies and reports the expected network load after
the same number of prunings.
"""

from __future__ import annotations

import pytest

from repro.core.engine import PruningEngine
from repro.core.heuristics import Dimension
from repro.matching.counting import CountingMatcher


def _matching_fraction(subscriptions, events):
    matcher = CountingMatcher()
    for subscription in subscriptions:
        matcher.register(subscription)
    matcher.rebuild()
    matches = sum(len(matcher.match(event)) for event in events)
    return matches / (len(events) * len(subscriptions))


@pytest.mark.parametrize("reference_mode", ["original", "current"])
def test_reference_tree_ablation(benchmark, bench_context, reference_mode):
    subscriptions = bench_context.subscriptions[:120]
    events = bench_context.events.events[:50]
    estimator = bench_context.estimator
    steps = sum(max(0, s.leaf_count - 1) for s in subscriptions) * 6 // 10

    def run():
        engine = PruningEngine(
            subscriptions,
            estimator,
            Dimension.NETWORK,
            reference_mode=reference_mode,
        )
        engine.run(max_steps=steps)
        return list(engine.pruned_subscriptions().values())

    pruned = benchmark.pedantic(run, iterations=1, rounds=1)
    fraction = _matching_fraction(pruned, events)
    benchmark.extra_info["reference_mode"] = reference_mode
    benchmark.extra_info["matching_fraction"] = fraction
    print("\nreference=%s: matching fraction after %d prunings = %.5f"
          % (reference_mode, steps, fraction))
    assert 0.0 <= fraction <= 1.0
