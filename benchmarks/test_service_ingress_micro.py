"""Micro-benchmark of the service layer's micro-batching ingress.

Events/s through ``Session.publish`` (one ``submit`` per event, final
``flush``) at several ``max_batch`` sizes, against the direct
``publish_batch`` substrate path as the upper bound.  Results land in
``BENCH_matching.json`` under the ``ingress`` key (schema documented in
``docs/BENCHMARKS.md``): the spread between ``max_batch=1`` and the
larger sizes is the amortization the ingress buys single-event callers.
"""

from __future__ import annotations

import pytest

from conftest import best_seconds
from repro.events import EventBatch
from repro.routing.topology import line_topology
from repro.service import CountingSink, PubSubService

MAX_BATCH_SIZES = (1, 16, 128)


@pytest.fixture(scope="module")
def ingress_service(bench_subscriptions):
    """A one-broker service with the benchmark table behind one session."""
    service = PubSubService(topology=line_topology(1), max_batch=64)
    session = service.connect("b0", "subscriber", sink=CountingSink())
    for subscription in bench_subscriptions:
        session.subscribe(subscription.tree)
    publisher = service.connect("b0", "publisher")
    return service, publisher


def test_ingress_deliveries_match_direct_batch(ingress_service, bench_events):
    """The ingress path delivers exactly what the substrate matches."""
    service, publisher = ingress_service
    events = bench_events.events
    sink = service.sessions[0].sink
    sink.clear()
    for event in events:
        publisher.publish(event)
    service.flush()
    ingress_total = sink.total
    # The direct publish below reaches the sink through the delivery
    # hook too, so compare against its returned results, not the sink.
    expected = sum(
        len(result.deliveries)
        for result in service.network.publish_batch("b0", EventBatch(events))
    )
    assert ingress_total == expected
    sink.clear()


def test_ingress_throughput(ingress_service, bench_events, bench_results):
    service, publisher = ingress_service
    events = bench_events.events

    def run_at(max_batch):
        service.ingress.max_batch = max_batch

        def run():
            for event in events:
                publisher.publish(event)
            return service.flush()

        seconds, _ = best_seconds(run)
        return seconds

    def run_direct():
        return len(service.publish_batch("b0", EventBatch(events)))

    direct_seconds, _ = best_seconds(run_direct)
    results = {
        "events": len(events),
        "direct_batch_seconds": direct_seconds,
        "direct_batch_events_per_second": (
            len(events) / direct_seconds if direct_seconds else None
        ),
    }
    for max_batch in MAX_BATCH_SIZES:
        seconds = run_at(max_batch)
        results["max_batch_%d" % max_batch] = {
            "seconds": seconds,
            "events_per_second": len(events) / seconds if seconds else None,
        }
    bench_results["ingress"] = results

    # Gross-regression gate only: batching must not be slower than
    # flushing every single event through the batch machinery.
    assert (
        results["max_batch_128"]["seconds"]
        < results["max_batch_1"]["seconds"] * 1.5
    )
