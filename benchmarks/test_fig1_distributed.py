"""Regenerate Fig. 1(d), 1(e), 1(f): the five-broker line setting.

Same structure as the centralized benchmarks: a full three-heuristic
sweep over the distributed network per figure, with the delivery
invariant enforced by the experiment itself.
"""

from __future__ import annotations

import pytest

from repro.experiments.distributed import DistributedExperiment
from repro.experiments.figures import distributed_figures, render_figure


def _run_and_build(bench_context, figure_id):
    results = DistributedExperiment(bench_context).run_all()
    return distributed_figures(results)[figure_id]


@pytest.mark.parametrize("figure_id", ["1d", "1e", "1f"])
def test_fig1_distributed(benchmark, bench_context, figure_id):
    figure = benchmark.pedantic(
        _run_and_build, args=(bench_context, figure_id), iterations=1, rounds=1
    )
    benchmark.extra_info["figure"] = figure.figure_id
    benchmark.extra_info["xs"] = figure.xs
    benchmark.extra_info["series"] = figure.series
    print()
    print(render_figure(figure))

    series = figure.series
    assert set(series) == {"sel", "eff", "mem"}
    if figure_id == "1e":
        # paper: network-based pruning adds the least load at every point
        for sel_value, mem_value in zip(series["sel"], series["mem"]):
            assert sel_value <= mem_value + 1e-9
        assert series["sel"][0] == 0.0
    if figure_id == "1f":
        assert series["mem"][-1] >= series["sel"][-1] - 1e-9
