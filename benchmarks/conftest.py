"""Shared fixtures for the benchmark suite.

Benchmarks regenerate every figure of the paper at a reduced scale so the
whole suite completes in minutes (the paper's own scale is 200k
subscriptions × 100k events on five machines).  Scale is adjustable
through environment variables:

    REPRO_BENCH_SUBSCRIPTIONS (default 220)
    REPRO_BENCH_EVENTS        (default 70)
    REPRO_BENCH_POINTS        (default 5)

For a full-scale offline run use the CLI instead:
``python -m repro.experiments.run --scale paper``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The benchmark-scale experiment configuration."""
    return ExperimentConfig(
        seed=42,
        subscription_count=_env_int("REPRO_BENCH_SUBSCRIPTIONS", 220),
        event_count=_env_int("REPRO_BENCH_EVENTS", 70),
        grid_points=_env_int("REPRO_BENCH_POINTS", 5),
    )


@pytest.fixture(scope="session")
def bench_context(bench_config) -> ExperimentContext:
    """Shared workload/schedules across all benchmarks."""
    return ExperimentContext(bench_config)


@pytest.fixture(scope="session")
def bench_workload(bench_context):
    """The auction workload behind the benchmark context."""
    return bench_context.workload


@pytest.fixture(scope="session")
def bench_events(bench_context):
    """The benchmark event batch."""
    return bench_context.events


@pytest.fixture(scope="session")
def bench_subscriptions(bench_context):
    """The benchmark subscription set."""
    return bench_context.subscriptions
