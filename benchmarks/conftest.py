"""Shared fixtures for the benchmark suite.

Benchmarks regenerate every figure of the paper at a reduced scale so the
whole suite completes in minutes (the paper's own scale is 200k
subscriptions × 100k events on five machines).  Scale is adjustable
through environment variables:

    REPRO_BENCH_SUBSCRIPTIONS (default 220)
    REPRO_BENCH_EVENTS        (default 70)
    REPRO_BENCH_POINTS        (default 5)

For a full-scale offline run use the CLI instead:
``python -m repro.experiments.run --scale paper``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext

#: Machine-readable matching-benchmark results, written at session end so
#: the perf trajectory of the matching engine is tracked across PRs.
BENCH_MATCHING_PATH = Path(__file__).resolve().parent.parent / "BENCH_matching.json"


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def best_seconds(fn, repeats: int = 5):
    """Best-of-``repeats`` wall-clock seconds of one ``fn()`` call.

    The minimum over several runs is the standard low-noise estimator for
    micro-benchmarks (anything above the minimum is scheduling jitter).
    Returns ``(seconds, last_result)``.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best, result


@pytest.fixture(scope="session")
def bench_results(bench_config):
    """Dict collected by matching micro-benchmarks, flushed to
    ``BENCH_matching.json`` at the repo root when the session ends."""
    results = {}
    yield results
    if not results:
        return
    payload = {
        "schema": 1,
        "suite": "matching",
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        # Host parallelism context: speedup numbers (the sharding sweep
        # especially) are meaningless without knowing how many cores —
        # and which platform — produced them.
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "config": {
            "subscriptions": bench_config.subscription_count,
            "events": bench_config.event_count,
            "seed": bench_config.seed,
        },
        "results": results,
    }
    BENCH_MATCHING_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The benchmark-scale experiment configuration."""
    return ExperimentConfig(
        seed=42,
        subscription_count=_env_int("REPRO_BENCH_SUBSCRIPTIONS", 220),
        event_count=_env_int("REPRO_BENCH_EVENTS", 70),
        grid_points=_env_int("REPRO_BENCH_POINTS", 5),
    )


@pytest.fixture(scope="session")
def bench_context(bench_config) -> ExperimentContext:
    """Shared workload/schedules across all benchmarks."""
    return ExperimentContext(bench_config)


@pytest.fixture(scope="session")
def bench_workload(bench_context):
    """The auction workload behind the benchmark context."""
    return bench_context.workload


@pytest.fixture(scope="session")
def bench_events(bench_context):
    """The benchmark event batch."""
    return bench_context.events


@pytest.fixture(scope="session")
def bench_subscriptions(bench_context):
    """The benchmark subscription set."""
    return bench_context.subscriptions
