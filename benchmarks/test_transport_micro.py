"""Loopback micro-benchmark of the TCP transport edge.

One :class:`~repro.transport.server.PubSubServer` on a loopback socket,
N concurrent subscriber clients (each matching every event) and one
publisher client driving the wire as fast as awaited round trips allow.
For each fan-out the benchmark records achieved publish rate, delivered
events/s across all clients, and per-delivery p50/p99 latency (publish
``send→`` client decode, measured through a timestamp attribute riding
the event itself).  Results land in ``BENCH_matching.json`` under the
``transport`` key (schema in ``docs/BENCHMARKS.md``).

The acceptance bar from the PR-8 issue rides along as an assertion: the
loopback server must sustain at least 8 concurrent clients without
losing or duplicating a single delivery.
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.events import Event
from repro.routing.topology import line_topology
from repro.service import PubSubService
from repro.subscriptions.builder import P
from repro.transport import PubSubClient, PubSubServer

CLIENT_COUNTS = (1, 2, 4, 8)
EVENT_COUNT = int(os.environ.get("REPRO_BENCH_TRANSPORT_EVENTS", "200"))


def _quantile(sorted_values, q):
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


async def _run_fan_out(clients):
    service = PubSubService(topology=line_topology(1), max_batch=8)
    latencies = []

    def on_event(notification):
        latencies.append(time.perf_counter() - notification.event["t"])

    async with PubSubServer(service, "b0") as server:
        subscribers = []
        for index in range(clients):
            subscriber = PubSubClient(
                "127.0.0.1",
                server.port,
                "sub-%d" % index,
                queue_capacity=512,
                on_event=on_event,
            )
            await subscriber.connect()
            await subscriber.subscribe(P("i") >= 0)
            subscribers.append(subscriber)
        publisher = PubSubClient("127.0.0.1", server.port, "pub")
        await publisher.connect()

        started = time.perf_counter()
        for i in range(EVENT_COUNT):
            await publisher.publish(Event({"i": i, "t": time.perf_counter()}))
        for subscriber in subscribers:
            await subscriber.wait_for_notifications(EVENT_COUNT, timeout=60)
        seconds = time.perf_counter() - started

        delivered = sum(len(s.notifications) for s in subscribers)
        duplicates = sum(s.duplicates for s in subscribers)
        for subscriber in subscribers:
            # No loss, no duplication, gapless per-session sequencing.
            assert [
                n.event["i"] for n in subscriber.notifications
            ] == list(range(EVENT_COUNT))
            assert [n.delivery_seq for n in subscriber.notifications] == list(
                range(EVENT_COUNT)
            )
        assert duplicates == 0

        await publisher.close()
        for subscriber in subscribers:
            await subscriber.close()
    service.close()

    latencies.sort()
    return {
        "clients": clients,
        "events": EVENT_COUNT,
        "delivered": delivered,
        "seconds": seconds,
        "publish_rate": EVENT_COUNT / seconds if seconds else None,
        "events_per_second": delivered / seconds if seconds else None,
        "p50_latency_ms": (
            _quantile(latencies, 0.50) * 1e3 if latencies else None
        ),
        "p99_latency_ms": (
            _quantile(latencies, 0.99) * 1e3 if latencies else None
        ),
    }


def test_transport_loopback_fan_out(bench_results):
    results = {}
    for clients in CLIENT_COUNTS:
        measured = asyncio.run(_run_fan_out(clients))
        results["clients_%d" % clients] = measured
        # Every client saw every event — checked inside the run; here
        # the aggregate pins it once more for the record.
        assert measured["delivered"] == clients * EVENT_COUNT
    bench_results["transport"] = results
    # The acceptance bar: 8 concurrent clients sustained.
    assert results["clients_8"]["events_per_second"] > 0
