"""Micro-benchmark of concurrent producers on one shared ingress.

Events/s through ``Session.publish`` with 1, 2, 4, and 8 producer
threads splitting the same event set, at a small and a large
``max_batch``.  Results land in ``BENCH_matching.json`` under the
``ingress_concurrency`` key (schema in ``docs/BENCHMARKS.md``).

The interesting numbers are the *ratios*: the drain itself is
serialized under the publish lock (matching is single-flusher by
design), so producer threads only overlap in buffering and in whatever
Python releases the GIL for — the sweep pins how much the locking
discipline costs or hides, not a parallel speedup claim.  A correctness
probe (delivered count equals the single-producer count) runs inside
every configuration.
"""

from __future__ import annotations

import threading

import pytest

from conftest import best_seconds
from repro.routing.topology import line_topology
from repro.service import CountingSink, PubSubService

PRODUCER_COUNTS = (1, 2, 4, 8)
MAX_BATCH_SIZES = (16, 128)


@pytest.fixture(scope="module")
def concurrency_service(bench_subscriptions):
    """A one-broker service with the benchmark table and one publisher."""
    service = PubSubService(topology=line_topology(1), max_batch=64)
    session = service.connect("b0", "subscriber", sink=CountingSink())
    for subscription in bench_subscriptions:
        session.subscribe(subscription.tree)
    publisher = service.connect("b0", "publisher")
    return service, publisher


def test_ingress_concurrency_throughput(
    concurrency_service, bench_events, bench_results
):
    service, publisher = concurrency_service
    events = bench_events.events
    sink = service.sessions[0].sink

    def run_with(producers):
        shards = [events[i::producers] for i in range(producers)]

        def produce(shard):
            for event in shard:
                publisher.publish(event)

        def once():
            if producers == 1:
                produce(shards[0])
            else:
                threads = [
                    threading.Thread(target=produce, args=(shard,))
                    for shard in shards
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            service.flush()

        seconds, _ = best_seconds(once, repeats=3)
        return seconds

    results = {"events": len(events)}
    expected_per_pass = None
    for max_batch in MAX_BATCH_SIZES:
        service.ingress.max_batch = max_batch
        per_batch = {}
        for producers in PRODUCER_COUNTS:
            sink.clear()
            seconds = run_with(producers)
            # Correctness probe: every configuration (any producer
            # count, any batch size) delivers the same total — 3
            # best_seconds passes over the full event set.
            if expected_per_pass is None:
                expected_per_pass = sink.total // 3
            assert sink.total == 3 * expected_per_pass
            per_batch["producers_%d" % producers] = {
                "seconds": seconds,
                "events_per_second": len(events) / seconds if seconds else None,
            }
        results["max_batch_%d" % max_batch] = per_batch
    bench_results["ingress_concurrency"] = results

    # Gross-regression gate only: adding producer threads to a
    # lock-serialized drain must not collapse throughput (generous 4x
    # bound — this is contention, not a parallelism claim).
    for max_batch in MAX_BATCH_SIZES:
        per_batch = results["max_batch_%d" % max_batch]
        assert (
            per_batch["producers_8"]["seconds"]
            < per_batch["producers_1"]["seconds"] * 4
        )
