"""Regenerate Fig. 1(a), 1(b), 1(c): the centralized setting.

Each benchmark runs the full three-heuristic sweep for the single-broker
setting and rebuilds one figure.  The rendered table/plot is printed (run
pytest with ``-s`` to see it) and the series is attached to the benchmark
record as ``extra_info`` so saved benchmark JSON carries the data.
"""

from __future__ import annotations

import pytest

from repro.experiments.centralized import CentralizedExperiment
from repro.experiments.figures import centralized_figures, render_figure


def _run_and_build(bench_context, figure_id):
    results = CentralizedExperiment(bench_context).run_all()
    return centralized_figures(results)[figure_id]


@pytest.mark.parametrize("figure_id", ["1a", "1b", "1c"])
def test_fig1_centralized(benchmark, bench_context, figure_id):
    figure = benchmark.pedantic(
        _run_and_build, args=(bench_context, figure_id), iterations=1, rounds=1
    )
    benchmark.extra_info["figure"] = figure.figure_id
    benchmark.extra_info["xs"] = figure.xs
    benchmark.extra_info["series"] = figure.series
    print()
    print(render_figure(figure))

    series = figure.series
    assert set(series) == {"sel", "eff", "mem"}
    if figure_id == "1b":
        # paper: mem degrades matching earliest, sel the least (mid-sweep)
        mid = len(figure.xs) // 2
        assert series["sel"][mid] <= series["mem"][mid] + 1e-12
    if figure_id == "1c":
        # paper: mem reduces associations at least as much as the others
        mid = len(figure.xs) // 2
        assert series["mem"][mid] >= series["sel"][mid] - 1e-9
