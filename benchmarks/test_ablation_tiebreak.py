"""Ablation: the lexicographic tie-breaking orders of Sect. 3.4.

The paper breaks heuristic ties with the other two dimensions in a fixed
order.  This ablation runs network-based pruning with and without the
secondary/tertiary keys and compares the expected network load at
mid-sweep — quantifying what the tie-break order buys.
"""

from __future__ import annotations

import pytest

from repro.core.engine import PruningEngine
from repro.core.heuristics import Dimension
from repro.matching.counting import CountingMatcher


def _matching_fraction(subscriptions, events):
    matcher = CountingMatcher()
    for subscription in subscriptions:
        matcher.register(subscription)
    matcher.rebuild()
    matches = sum(len(matcher.match(event)) for event in events)
    return matches / (len(events) * len(subscriptions))


def _run_engine(subscriptions, estimator, order, steps):
    engine = PruningEngine(subscriptions, estimator, Dimension.NETWORK)
    if order is not None:
        engine.set_tiebreak_order(order)
    engine.run(max_steps=steps)
    return list(engine.pruned_subscriptions().values())


@pytest.mark.parametrize(
    "label,order",
    [
        ("paper-tiebreak", None),
        ("primary-only", ("sel", "sel", "sel")),
    ],
)
def test_tiebreak_ablation(benchmark, bench_context, label, order):
    subscriptions = bench_context.subscriptions[:120]
    events = bench_context.events.events[:50]
    estimator = bench_context.estimator
    steps = sum(max(0, s.leaf_count - 1) for s in subscriptions) // 2

    pruned = benchmark.pedantic(
        _run_engine,
        args=(subscriptions, estimator, order, steps),
        iterations=1,
        rounds=1,
    )
    fraction = _matching_fraction(pruned, events)
    benchmark.extra_info["variant"] = label
    benchmark.extra_info["matching_fraction_at_half_sweep"] = fraction
    print("\n%s: matching fraction after %d prunings = %.5f"
          % (label, steps, fraction))
    assert 0.0 <= fraction <= 1.0
