"""Baseline comparison: pruning vs covering vs merging (Sect. 2.3).

The paper positions pruning against the two established routing
optimizations, both restricted to conjunctive subscriptions.  This
benchmark builds a purely conjunctive workload (the specific-item class
only) and compares, for each optimizer,

* the routing-table size achieved (predicate/subscription associations),
* the forwarding load it causes (probability an event is forwarded), and
* the optimizer's own runtime.

Covering is exact but only helps where subset relations exist; merging
and pruning trade table size for extra forwarding.
"""

from __future__ import annotations

import pytest

from repro.baselines.covering import CoveringTable
from repro.baselines.merging import GreedyMerger
from repro.core.engine import PruningEngine
from repro.core.heuristics import Dimension
from repro.subscriptions.metrics import count_leaves
from repro.workloads.auction import (
    AuctionWorkload,
    AuctionWorkloadConfig,
    SubscriptionClassMix,
)


@pytest.fixture(scope="module")
def conjunctive_setup():
    config = AuctionWorkloadConfig(
        seed=77, class_mix=SubscriptionClassMix(1.0, 0.0, 0.0)
    )
    workload = AuctionWorkload(config)
    subscriptions = workload.generate_subscriptions(150)
    events = workload.generate_events(120).events
    return workload, subscriptions, events


def _forwarding_fraction(trees, events):
    matched = 0
    for event in events:
        if any(tree.evaluate(event) for tree in trees):
            matched += 1
    return matched / len(events)


def _report(benchmark, label, associations, forwarding):
    benchmark.extra_info["optimizer"] = label
    benchmark.extra_info["associations"] = associations
    benchmark.extra_info["forwarding_fraction"] = forwarding
    print("\n%s: associations=%d forwarding_fraction=%.4f"
          % (label, associations, forwarding))


def test_pruning_optimizer(benchmark, conjunctive_setup):
    workload, subscriptions, events = conjunctive_setup
    estimator = workload.estimator()
    target = sum(s.leaf_count for s in subscriptions) * 6 // 10

    def run():
        engine = PruningEngine(subscriptions, estimator, Dimension.NETWORK)
        while engine.association_count > target:
            if engine.step() is None:
                break
        return list(engine.pruned_subscriptions().values())

    pruned = benchmark.pedantic(run, iterations=1, rounds=1)
    associations = sum(count_leaves(s.tree) for s in pruned)
    _report(
        benchmark,
        "pruning",
        associations,
        _forwarding_fraction([s.tree for s in pruned], events),
    )
    assert associations <= target + 16


def test_covering_optimizer(benchmark, conjunctive_setup):
    _workload, subscriptions, events = conjunctive_setup

    def run():
        table = CoveringTable()
        for subscription in subscriptions:
            table.register(subscription)
        return table.forwarding_set

    active = benchmark.pedantic(run, iterations=1, rounds=1)
    associations = sum(s.leaf_count for s in active)
    forwarding = _forwarding_fraction([s.tree for s in active], events)
    # covering is exact: forwarding equals the un-optimized fraction
    baseline = _forwarding_fraction([s.tree for s in subscriptions], events)
    _report(benchmark, "covering", associations, forwarding)
    assert forwarding == pytest.approx(baseline)


def test_merging_optimizer(benchmark, conjunctive_setup):
    workload, subscriptions, events = conjunctive_setup
    estimator = workload.estimator()

    def run():
        merger = GreedyMerger(estimator, max_merger_selectivity=0.3)
        return merger.merge(subscriptions, target_count=len(subscriptions) // 2)

    merged = benchmark.pedantic(run, iterations=1, rounds=1)
    associations = sum(s.leaf_count for s in merged)
    forwarding = _forwarding_fraction([s.tree for s in merged], events)
    baseline = _forwarding_fraction([s.tree for s in subscriptions], events)
    _report(benchmark, "merging", associations, forwarding)
    # merging may only add forwarding, never lose it
    assert forwarding >= baseline - 1e-12
