"""Micro-benchmark: what fault tolerance costs, and how fast it heals.

Two questions, answered on one loopback topology (one subscriber
matching every event, one clean publisher):

* **Overhead** — the guarded configuration (heartbeats on both sides
  plus a *disarmed* fault-plan stream wrapper on the subscriber) versus
  the bare PR-8 transport.  The wrapper is a pass-through and the
  heartbeat tasks sleep between pings, so the throughput ratio should
  be ≈ 1.
* **Recovery** — under a time-scheduled plan injecting roughly one
  connection reset per second, an ``auto_reconnect`` subscriber's
  measured drop→resume latencies (its ``recovery_latencies``), reported
  as p50/p95 alongside the reconnect count and a lossless-delivery
  check.

Results land in ``BENCH_matching.json`` under the ``transport_faults``
key (schema in ``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.events import Event
from repro.faults import BackoffSchedule, FaultPlan, faulty_stream
from repro.routing.topology import line_topology
from repro.service import PubSubService
from repro.subscriptions.builder import P
from repro.transport import PubSubClient, PubSubServer

EVENT_COUNT = int(os.environ.get("REPRO_BENCH_TRANSPORT_EVENTS", "200"))
FAULTED_EVENT_COUNT = int(
    os.environ.get("REPRO_BENCH_FAULT_EVENTS", str(EVENT_COUNT))
)


def _quantile(sorted_values, q):
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


async def _run_throughput(guarded):
    """Publish EVENT_COUNT events through one subscriber; seconds taken."""
    service = PubSubService(topology=line_topology(1), max_batch=8)
    server_options = {}
    client_options = {}
    if guarded:
        plan = FaultPlan(0)
        plan.disarm()
        server_options = dict(heartbeat_interval=5.0, idle_timeout=30.0)
        client_options = dict(
            heartbeat_interval=5.0,
            liveness_timeout=30.0,
            auto_reconnect=True,
            stream_wrapper=faulty_stream(plan, "sub"),
        )
    async with PubSubServer(service, "b0", **server_options) as server:
        subscriber = PubSubClient(
            "127.0.0.1",
            server.port,
            "sub",
            queue_capacity=512,
            **client_options,
        )
        await subscriber.connect()
        await subscriber.subscribe(P("i") >= 0)
        publisher = PubSubClient("127.0.0.1", server.port, "pub")
        await publisher.connect()

        started = time.perf_counter()
        for i in range(EVENT_COUNT):
            await publisher.publish(Event({"i": i}))
        await subscriber.wait_for_notifications(EVENT_COUNT, timeout=60)
        seconds = time.perf_counter() - started

        assert [n.event["i"] for n in subscriber.notifications] == list(
            range(EVENT_COUNT)
        )
        await publisher.close()
        await subscriber.close()
    service.close()
    return seconds


async def _run_recovery():
    """Soak one subscriber under ~1 reset/s; recovery latency stats."""
    plan = FaultPlan(
        5,
        wire_kinds=("reset",),
        mean_gap_seconds=1.0,
    )
    plan.disarm()  # setup runs clean; armed once the wiring is up
    service = PubSubService(topology=line_topology(1), max_batch=8)
    async with PubSubServer(
        service, "b0", heartbeat_interval=0.25, idle_timeout=5.0
    ) as server:
        subscriber = PubSubClient(
            "127.0.0.1",
            server.port,
            "sub",
            queue_capacity=512,
            heartbeat_interval=0.25,
            liveness_timeout=2.0,
            auto_reconnect=True,
            max_reconnect_attempts=50,
            backoff=BackoffSchedule(seed=5, label="sub", base=0.02, cap=0.2),
            stream_wrapper=faulty_stream(plan, "sub"),
        )
        await subscriber.connect()
        await subscriber.subscribe(P("i") >= 0)
        publisher = PubSubClient("127.0.0.1", server.port, "pub")
        await publisher.connect()

        plan.arm()
        started = time.perf_counter()
        for i in range(FAULTED_EVENT_COUNT):
            await publisher.publish(Event({"i": i}))
            await asyncio.sleep(0.01)  # spread traffic over the schedule
        plan.disarm()
        await subscriber.wait_for_notifications(
            FAULTED_EVENT_COUNT, timeout=60
        )
        seconds = time.perf_counter() - started

        # Exactly-once through every reset.
        assert [n.event["i"] for n in subscriber.notifications] == list(
            range(FAULTED_EVENT_COUNT)
        )
        latencies = sorted(subscriber.recovery_latencies)
        result = {
            "events": FAULTED_EVENT_COUNT,
            "seconds": seconds,
            "resets_injected": plan.counts().get("reset", 0),
            "reconnects": subscriber.reconnects,
            "liveness_expiries": subscriber.liveness_expiries,
            "recovery_p50_ms": (
                _quantile(latencies, 0.50) * 1e3 if latencies else None
            ),
            "recovery_p95_ms": (
                _quantile(latencies, 0.95) * 1e3 if latencies else None
            ),
        }
        await publisher.close()
        await subscriber.close()
    service.close()
    return result


def test_transport_fault_overhead_and_recovery(bench_results):
    bare = asyncio.run(_run_throughput(guarded=False))
    guarded = asyncio.run(_run_throughput(guarded=True))
    recovery = asyncio.run(_run_recovery())
    overhead = guarded / bare if bare else None
    bench_results["transport_faults"] = {
        "events": EVENT_COUNT,
        "bare_seconds": bare,
        "guarded_seconds": guarded,
        "guarded_overhead_ratio": overhead,
        "recovery": recovery,
    }
    # The guard rails are near-free when nothing is failing (generous
    # bound: CI boxes are noisy).
    assert overhead is not None and overhead < 2.0
    # Under ~1 reset/s the client kept healing and lost nothing.
    assert recovery["reconnects"] >= 1
    assert recovery["recovery_p50_ms"] is not None
