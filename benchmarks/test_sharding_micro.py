"""Micro-benchmark of sharded parallel matching.

Times ``match_batch`` through a :class:`ShardedMatcher` over the full
executor × shard-count grid — ``serial``, ``threads``, and
``processes`` (persistent workers fed shared-memory batches) at shard
counts {1, 2, 4, 8} — against the unsharded :class:`CountingMatcher`
baseline, on both benchmark workloads:

* the auction workload at bench scale (probe-dominated, flat-heavy —
  the region where threads stay GIL-bound and only the process
  executor can win);
* the tree-heavy workload (deep OR-of-ANDs — numpy-bound, where
  threads overlap because the kernels release the GIL).

Results land under the ``sharding`` key of ``BENCH_matching.json``
(schema in ``docs/BENCHMARKS.md``), with the host's ``cpu_count`` at
the payload top level, so the parallel-speedup trajectory is tracked
across PRs and hardware.  The speedup is recorded *measured as-is*: on
single-core CI runners every parallel executor is expected to dip
below 1× (fan-out/IPC overhead with no parallelism to pay for it) —
the equivalence assertions, not the ratio, are the gate here.

Scale riders: the auction side uses the shared bench config
(``REPRO_BENCH_SUBSCRIPTIONS``/``REPRO_BENCH_EVENTS``); the tree-heavy
side uses ``REPRO_BENCH_TREE_SUBSCRIPTIONS``/``REPRO_BENCH_TREE_EVENTS``
like the tree-eval benchmark.
"""

from __future__ import annotations

import pytest

from conftest import _env_int, best_seconds
from repro.events import EventBatch
from repro.matching.counting import CountingMatcher
from repro.matching.sharded import ShardedMatcher
from repro.workloads.tree_heavy import TreeHeavyConfig, TreeHeavyWorkload

SHARD_COUNTS = [1, 2, 4, 8]
EXECUTORS = ["serial", "threads", "processes"]

TREE_SUBSCRIPTIONS = _env_int("REPRO_BENCH_TREE_SUBSCRIPTIONS", 500)
TREE_EVENTS = _env_int("REPRO_BENCH_TREE_EVENTS", 256)


@pytest.fixture(scope="module")
def tree_workload():
    return TreeHeavyWorkload(TreeHeavyConfig(seed=42))


def _measure_workload(subscriptions, events):
    """Baseline vs executor × shard-count timings for one workload.

    Returns the ``BENCH_matching.json`` fragment; asserts every sharded
    configuration produces exactly the unsharded id lists first, so a
    recorded speedup can never come from a wrong answer.
    """
    subscriptions = list(subscriptions)
    batch = EventBatch(events)
    batch.columns()

    baseline = CountingMatcher()
    for subscription in subscriptions:
        baseline.register(subscription)
    expected = baseline.match_batch(batch)
    baseline_seconds, _ = best_seconds(lambda: baseline.match_batch(batch))

    fragment = {
        "subscriptions": len(subscriptions),
        "events": len(batch.events),
        "unsharded_seconds": baseline_seconds,
        "executors": {executor: {} for executor in EXECUTORS},
    }
    for executor in EXECUTORS:
        for shard_count in SHARD_COUNTS:
            with ShardedMatcher(shard_count, executor=executor) as sharded:
                for subscription in subscriptions:
                    sharded.register(subscription)
                assert sharded.match_batch(batch) == expected
                seconds, _ = best_seconds(lambda: sharded.match_batch(batch))
                fragment["executors"][executor][str(shard_count)] = {
                    "seconds": seconds,
                    "speedup_vs_unsharded": (
                        baseline_seconds / seconds if seconds else None
                    ),
                    "populations": sharded.shard_populations,
                }
    return fragment


def test_sharding_speedup(
    bench_subscriptions, bench_events, tree_workload, bench_results
):
    """Record the executor × shards speedup grid on both workloads."""
    auction = _measure_workload(bench_subscriptions, bench_events.events)
    tree_heavy = _measure_workload(
        tree_workload.generate_subscriptions(TREE_SUBSCRIPTIONS),
        tree_workload.generate_events(TREE_EVENTS).events,
    )
    bench_results["sharding"] = {
        "auction": auction,
        "tree_heavy": tree_heavy,
    }
