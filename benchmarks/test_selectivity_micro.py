"""Micro-benchmarks of selectivity estimation and tree codecs."""

from __future__ import annotations


from repro.subscriptions.serialize import decode_node, encode_node


def test_estimate_throughput(benchmark, bench_subscriptions, bench_context):
    estimator = bench_context.estimator
    trees = [subscription.tree for subscription in bench_subscriptions[:100]]

    def run():
        total = 0.0
        for tree in trees:
            total += estimator.estimate(tree).avg
        return total

    total = benchmark(run)
    benchmark.extra_info["mean_estimated_selectivity"] = total / len(trees)


def test_measure_throughput(benchmark, bench_subscriptions, bench_context):
    estimator = bench_context.estimator
    trees = [s.tree for s in bench_subscriptions[:20]]
    events = bench_context.events.events[:40]

    def run():
        return sum(estimator.measure(tree, events) for tree in trees)

    benchmark(run)


def test_binary_codec_roundtrip(benchmark, bench_subscriptions):
    trees = [subscription.tree for subscription in bench_subscriptions[:100]]

    def run():
        total = 0
        for tree in trees:
            blob = encode_node(tree)
            total += len(blob)
            decode_node(blob)
        return total

    total_bytes = benchmark(run)
    benchmark.extra_info["mean_wire_bytes"] = total_bytes / len(trees)
