"""Micro-benchmarks of the pruning engine itself.

The paper's optimization runs *offline* relative to event routing, but
its cost still matters operationally: these benchmarks time engine
construction (heuristic evaluation of every candidate), individual
pruning steps, and full schedule construction per dimension.
"""

from __future__ import annotations

import pytest

from repro.core.engine import PruningEngine
from repro.core.heuristics import Dimension
from repro.core.planner import PruningSchedule


@pytest.mark.parametrize("dimension", list(Dimension), ids=lambda d: d.value)
def test_engine_construction(benchmark, bench_subscriptions, bench_context, dimension):
    subscriptions = bench_subscriptions[:150]
    estimator = bench_context.estimator

    def build():
        return PruningEngine(subscriptions, estimator, dimension)

    engine = benchmark(build)
    benchmark.extra_info["queued_options"] = engine.total_prunings


def test_pruning_step_throughput(benchmark, bench_subscriptions, bench_context):
    subscriptions = bench_subscriptions[:150]
    estimator = bench_context.estimator

    def setup():
        return (PruningEngine(subscriptions, estimator, Dimension.NETWORK),), {}

    def run_steps(engine):
        return len(engine.run(max_steps=50))

    steps = benchmark.pedantic(run_steps, setup=setup, rounds=5)
    assert steps > 0


@pytest.mark.parametrize("dimension", list(Dimension), ids=lambda d: d.value)
def test_schedule_build_to_exhaustion(
    benchmark, bench_subscriptions, bench_context, dimension
):
    subscriptions = bench_subscriptions[:100]
    estimator = bench_context.estimator

    def build():
        return PruningSchedule.build(subscriptions, estimator, dimension)

    schedule = benchmark.pedantic(build, rounds=2, iterations=1)
    benchmark.extra_info["total_prunings"] = schedule.total
    assert schedule.total > 0


def test_schedule_replay(benchmark, bench_context):
    schedule = bench_context.schedule(Dimension.NETWORK)
    half = schedule.prefix_count(0.5)

    def replay():
        return len(schedule.replay(half))

    count = benchmark(replay)
    assert count == len(bench_context.subscriptions)
