"""Micro-benchmark of the vectorized candidate fallback (tree evaluation).

Runs the tree-heavy workload (deep OR-of-ANDs, nearly every subscription
survives the ``pmin`` gate) through the batch matcher twice — once with
the slot-major/dense vectorized tree evaluation, once with the scalar
per-pair recursion it replaced — and records both the isolated fallback
stage and the end-to-end ``match_batch`` comparison under the
``tree_eval`` key of ``BENCH_matching.json``.

Scale is adjustable through environment variables:

    REPRO_BENCH_TREE_SUBSCRIPTIONS (default 500)
    REPRO_BENCH_TREE_EVENTS        (default 256)

The CI smoke gate runs this file at a tiny scale; the perf assertion
only applies at benchmark scale (>= 128-event batches).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import _env_int, best_seconds
from repro.events import EventBatch
from repro.matching import batch as batch_module
from repro.matching.batch import _BatchRun
from repro.matching.counting import _KIND_TREE, CountingMatcher
from repro.workloads.tree_heavy import TreeHeavyConfig, TreeHeavyWorkload

TREE_SUBSCRIPTIONS = _env_int("REPRO_BENCH_TREE_SUBSCRIPTIONS", 500)
TREE_EVENTS = _env_int("REPRO_BENCH_TREE_EVENTS", 256)


@pytest.fixture(scope="module")
def tree_workload():
    return TreeHeavyWorkload(TreeHeavyConfig(seed=42))


@pytest.fixture(scope="module")
def tree_matcher(tree_workload):
    matcher = CountingMatcher()
    for subscription in tree_workload.generate_subscriptions(TREE_SUBSCRIPTIONS):
        matcher.register(subscription)
    return matcher


@pytest.fixture(scope="module")
def tree_events(tree_workload):
    return tree_workload.generate_events(TREE_EVENTS).events


@pytest.fixture(autouse=True)
def restore_toggle():
    original = batch_module._VECTORIZE_TREES
    yield
    batch_module._VECTORIZE_TREES = original


def _surviving_tree_pairs(matcher, events):
    """One un-chunked pass up to the candidate test: the fallback's input.

    Returns ``(flags, tree_rows, tree_slots)`` — exactly what
    ``_BatchRun._resolve_tree_pairs`` receives, assembled by the same
    ``assemble_chunk`` production uses, so the benchmark times the
    fallback stage in isolation against the real pipeline input.
    """
    run = _BatchRun(matcher)
    columns = EventBatch(events).columns()
    pos_pairs, neg_pairs = ([], []), ([], [])
    matcher._indexes.collect_batch(columns, pos_pairs, neg_pairs)
    flags, counts = run.assemble_chunk(len(events), pos_pairs, neg_pairs)
    cand_rows, cand_slots = np.nonzero(counts >= run.pmin[np.newaxis, :])
    tree_mask = run.kinds[cand_slots] == _KIND_TREE
    return flags, cand_rows[tree_mask], cand_slots[tree_mask]


def test_vectorized_fallback_matches_scalar_and_per_event(
    tree_matcher, tree_events
):
    """Both fallback paths produce exactly the per-event oracle's sets."""
    batch_module._VECTORIZE_TREES = True
    vectorized = tree_matcher.match_batch(EventBatch(tree_events))
    batch_module._VECTORIZE_TREES = False
    scalar = tree_matcher.match_batch(EventBatch(tree_events))
    batch_module._VECTORIZE_TREES = True
    assert vectorized == scalar
    assert vectorized == [tree_matcher.match(event) for event in tree_events]


def test_tree_eval_fallback_speedup(tree_matcher, tree_events, bench_results):
    """Scalar vs vectorized candidate fallback, isolated and end-to-end."""
    flags, tree_rows, tree_slots = _surviving_tree_pairs(
        tree_matcher, tree_events
    )
    assert len(tree_rows), "workload must produce surviving tree candidates"

    def run_fallback(vectorize):
        batch_module._VECTORIZE_TREES = vectorize
        run = _BatchRun(tree_matcher)
        matched = [[] for _ in range(len(tree_events))]
        run._resolve_tree_pairs(tree_rows, tree_slots, flags, matched)
        return sum(len(ids) for ids in matched)

    assert run_fallback(True) == run_fallback(False)
    vectorized_fallback_seconds, _ = best_seconds(lambda: run_fallback(True))
    scalar_fallback_seconds, _ = best_seconds(
        lambda: run_fallback(False), repeats=3
    )

    def run_match(vectorize):
        batch_module._VECTORIZE_TREES = vectorize
        return sum(
            len(ids)
            for ids in tree_matcher.match_batch(EventBatch(tree_events))
        )

    assert run_match(True) == run_match(False)
    vectorized_match_seconds, _ = best_seconds(lambda: run_match(True))
    scalar_match_seconds, _ = best_seconds(lambda: run_match(False), repeats=3)
    batch_module._VECTORIZE_TREES = True

    stats = tree_matcher.statistics
    stats.reset()
    tree_matcher.match_batch(EventBatch(tree_events))
    bench_results["tree_eval"] = {
        "subscriptions": TREE_SUBSCRIPTIONS,
        "events": len(tree_events),
        "surviving_tree_pairs": int(len(tree_rows)),
        "tree_evaluations": stats.tree_evaluations,
        "candidates": stats.candidates,
        "matches": stats.matches,
        "scalar_fallback_seconds": scalar_fallback_seconds,
        "vectorized_fallback_seconds": vectorized_fallback_seconds,
        "fallback_speedup": (
            scalar_fallback_seconds / vectorized_fallback_seconds
            if vectorized_fallback_seconds
            else None
        ),
        "scalar_match_seconds": scalar_match_seconds,
        "vectorized_match_seconds": vectorized_match_seconds,
        "match_speedup": (
            scalar_match_seconds / vectorized_match_seconds
            if vectorized_match_seconds
            else None
        ),
    }
    stats.reset()
    # Gross-regression gate only (the measured speedup itself lands in
    # BENCH_matching.json; typically >= 3x end-to-end and far higher for
    # the isolated fallback at bench scale).  Tiny smoke runs are exempt:
    # vectorization overhead only amortizes across real batches.
    if len(tree_events) >= 128:
        assert vectorized_fallback_seconds < scalar_fallback_seconds
