"""Micro-benchmark of the adaptive pruning loop in the serving path.

Runs the same auction → tree-heavy drift through a controller-off oracle
service and an adaptive twin (memory budget at half the exact table
size, so the loop must prune) and records what the controller cost and
reclaimed: routing-table bytes, forwarded event bytes (pruned forwarding
is *more* permissive, so this delta is the paper's network-load price),
measured filter seconds, and the pure observe/probe overhead of a
controller that never prunes.  Results land in ``BENCH_matching.json``
under the ``adaptive`` key (schema in ``docs/BENCHMARKS.md``).

Delivery equality with the oracle is asserted, not assumed.
"""

from __future__ import annotations

import time

import pytest

from repro.adaptive import AdaptiveConfig
from repro.core.adaptive import SystemConditions
from repro.routing.topology import line_topology
from repro.service import CountingSink, PubSubService
from repro.workloads.tree_heavy import TreeHeavyConfig, TreeHeavyWorkload


@pytest.fixture(scope="module")
def drift_events(bench_workload, bench_config):
    """Phase A auction events, phase B tree-heavy events (the drift)."""
    count = max(40, bench_config.event_count)
    tree_heavy = TreeHeavyWorkload(
        TreeHeavyConfig(seed=bench_config.seed, attribute_count=6, depth=1)
    )
    return (
        list(bench_workload.generate_events(count, stream=7)),
        list(tree_heavy.generate_events(count)),
    )


def _run(bench_subscriptions, drift_events, adaptive_factory):
    """One full drift scenario; returns timing, report, network metrics."""
    with PubSubService(
        topology=line_topology(4), max_batch=16, adaptive=None
    ) as probe_service:
        subscriber = probe_service.connect("b3", "subscriber")
        for subscription in bench_subscriptions:
            subscriber.subscribe(subscription.tree)
        exact_table_bytes = probe_service.network.table_size_bytes
    adaptive = adaptive_factory(exact_table_bytes)
    with PubSubService(
        topology=line_topology(4), max_batch=16, adaptive=adaptive
    ) as service:
        subscriber = service.connect("b3", "subscriber", sink=CountingSink())
        for subscription in bench_subscriptions:
            subscriber.subscribe(subscription.tree)
        publisher = service.connect("b0", "publisher")
        started = time.perf_counter()
        for phase in drift_events:
            for event in phase:
                publisher.publish(event)
            service.flush()
        seconds = time.perf_counter() - started
        if service.adaptive is not None:
            # Deterministic dimension switch: a bandwidth-stressed cycle
            # after the memory-driven phases.  The verification stream
            # below re-checks delivery equality *after* the switch.
            service.adaptive.run_cycle(
                SystemConditions(0, 1, bandwidth_utilization=0.95, filter_saturation=0.0)
            )
        for event in drift_events[0]:
            publisher.publish(event)
        service.flush()
        report = service.adaptive.report() if service.adaptive else None
        network_report = service.network.report()
        return {
            "seconds": seconds,
            "deliveries": subscriber.sink.total,
            "event_bytes": network_report.event_bytes,
            "event_messages": network_report.event_messages,
            "filter_seconds": network_report.filter_seconds,
            "table_bytes_exact": exact_table_bytes,
            "table_bytes_end": service.network.table_size_bytes,
            "report": report,
        }


def test_adaptive_loop_under_drift(bench_subscriptions, drift_events, bench_results):
    oracle = _run(bench_subscriptions, drift_events, lambda _bytes: None)

    def stressed(table_bytes):
        return AdaptiveConfig(
            cycle_events=32,
            batch_size=16,
            memory_budget_bytes=max(1, table_bytes // 2),
            min_observations=16,
            stop_degradation=None,
        )

    def observe_only(_table_bytes):
        # Statistics + probe run every cycle, but the warm-up gate never
        # opens: this run prices the controller's pure overhead.
        return AdaptiveConfig(cycle_events=32, min_observations=10**9)

    adaptive = _run(bench_subscriptions, drift_events, stressed)
    overhead = _run(bench_subscriptions, drift_events, observe_only)

    # The tentpole invariant: adaptive delivery is exactly the oracle's.
    assert adaptive["deliveries"] == oracle["deliveries"]
    assert overhead["deliveries"] == oracle["deliveries"]
    report = adaptive["report"]
    assert report["prunings_applied"] > 0
    assert report["bytes_reclaimed_total"] > 0
    assert overhead["report"]["prunings_applied"] == 0
    # The history must show the live memory phase AND the forced switch
    # to network-based pruning, with delivery still exactly the oracle's.
    assert {"mem", "sel"} <= {dim for dim, _count in report["dimension_history"]}

    events = sum(len(phase) for phase in drift_events)
    bench_results["adaptive"] = {
        "events": events,
        "subscriptions": len(bench_subscriptions),
        "memory_budget_bytes": max(1, adaptive["table_bytes_exact"] // 2),
        "table_bytes_exact": adaptive["table_bytes_exact"],
        "table_bytes_end": adaptive["table_bytes_end"],
        "bytes_reclaimed_end": report["bytes_reclaimed"],
        "bytes_reclaimed_total": report["bytes_reclaimed_total"],
        "prunings_applied": report["prunings_applied"],
        "prunings_reverted": report["prunings_reverted"],
        "cycles": report["cycles"],
        "dimension_history": report["dimension_history"],
        "deliveries": adaptive["deliveries"],
        # Network price of pruned (more permissive) forwarding.
        "baseline_event_bytes": oracle["event_bytes"],
        "adaptive_event_bytes": adaptive["event_bytes"],
        "baseline_event_messages": oracle["event_messages"],
        "adaptive_event_messages": adaptive["event_messages"],
        # Filtering time under drift, measured not modelled.
        "baseline_filter_seconds": oracle["filter_seconds"],
        "adaptive_filter_seconds": adaptive["filter_seconds"],
        "baseline_seconds": oracle["seconds"],
        "adaptive_seconds": adaptive["seconds"],
        "observe_only_seconds": overhead["seconds"],
        "controller_overhead_ratio": (
            overhead["seconds"] / oracle["seconds"] if oracle["seconds"] else None
        ),
    }
