"""Micro-benchmarks of the filtering substrate.

These are real pytest-benchmark loops (many rounds), unlike the figure
benchmarks: counting vs naive matching throughput, index rebuild cost,
incremental-update vs full-rebuild churn cost, and the cost of matching
under heavy pruning.  Key numbers are also measured explicitly
(best-of-N wall clock) and written to ``BENCH_matching.json`` at the
repo root via the ``bench_results`` fixture, so the matching engine's
perf trajectory is machine-readable across PRs.
"""

from __future__ import annotations

import pytest

from conftest import best_seconds
from repro.core.heuristics import Dimension
from repro.matching.counting import CountingMatcher
from repro.matching.naive import NaiveMatcher


@pytest.fixture(scope="module")
def matchers(bench_subscriptions):
    counting = CountingMatcher()
    naive = NaiveMatcher()
    for subscription in bench_subscriptions:
        counting.register(subscription)
        naive.register(subscription)
    return counting, naive


def test_counting_matcher_throughput(benchmark, matchers, bench_events,
                                     bench_results):
    counting, _naive = matchers
    events = bench_events.events[:50]

    def run():
        total = 0
        for event in events:
            total += len(counting.match(event))
        return total

    matches = benchmark(run)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["events"] = len(events)
    seconds, _ = best_seconds(run)
    bench_results["single_event_counting"] = {
        "events": len(events),
        "seconds": seconds,
        "events_per_second": len(events) / seconds if seconds else None,
    }


def test_naive_matcher_throughput(benchmark, matchers, bench_events,
                                  bench_results):
    _counting, naive = matchers
    events = bench_events.events[:50]

    def run():
        total = 0
        for event in events:
            total += len(naive.match(event))
        return total

    matches = benchmark(run)
    benchmark.extra_info["matches"] = matches
    seconds, _ = best_seconds(run)
    bench_results["single_event_naive"] = {
        "events": len(events),
        "seconds": seconds,
        "events_per_second": len(events) / seconds if seconds else None,
    }


def test_counting_and_naive_agree(matchers, bench_events):
    counting, naive = matchers
    for event in bench_events.events[:50]:
        assert sorted(counting.match(event)) == sorted(naive.match(event))


def test_index_rebuild_cost(benchmark, bench_subscriptions, bench_results):
    def rebuild():
        matcher = CountingMatcher()
        for subscription in bench_subscriptions:
            matcher.register(subscription)
        matcher.rebuild()
        return matcher.entry_count

    entries = benchmark(rebuild)
    benchmark.extra_info["entries"] = entries
    seconds, _ = best_seconds(rebuild)
    bench_results["full_rebuild"] = {
        "subscriptions": len(bench_subscriptions),
        "entries": entries,
        "seconds": seconds,
    }


def test_incremental_update_vs_rebuild(benchmark, bench_subscriptions,
                                       bench_results):
    """Churn cost: k incremental replaces vs one full table rebuild.

    The old engine rebuilt its whole ``PredicateIndexSet`` after any
    register/unregister/replace; incremental maintenance makes churn
    O(delta).  A small replace burst must therefore be much cheaper than
    rebuilding the table — this is the acceptance gate of the
    incremental refactor.
    """
    matcher = CountingMatcher()
    for subscription in bench_subscriptions:
        matcher.register(subscription)
    churn = bench_subscriptions[: max(1, len(bench_subscriptions) // 20)]

    def burst():
        for subscription in churn:
            matcher.replace(subscription)
        return len(churn)

    replaced = benchmark(burst)
    benchmark.extra_info["replaced"] = replaced

    incremental_seconds, _ = best_seconds(burst)

    def full_rebuild():
        fresh = CountingMatcher()
        for subscription in bench_subscriptions:
            fresh.register(subscription)
        return fresh.entry_count

    rebuild_seconds, _ = best_seconds(full_rebuild)
    bench_results["churn"] = {
        "replaces": len(churn),
        "table_size": len(bench_subscriptions),
        "incremental_seconds": incremental_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": (
            rebuild_seconds / incremental_seconds if incremental_seconds else None
        ),
    }
    # O(delta) must beat O(table) on a 5% churn burst.
    assert incremental_seconds < rebuild_seconds


def test_matching_fully_pruned_tables(benchmark, bench_context):
    """Matching cost at 100% pruning (every table entry is one predicate)."""
    schedule = bench_context.schedule(Dimension.NETWORK)
    pruned = schedule.replay(schedule.total)
    matcher = CountingMatcher()
    for subscription in pruned.values():
        matcher.register(subscription)
    events = bench_context.events.events[:50]

    def run():
        total = 0
        for event in events:
            total += len(matcher.match(event))
        return total

    matches = benchmark(run)
    benchmark.extra_info["matches"] = matches
