"""Micro-benchmarks of the filtering substrate.

These are real pytest-benchmark loops (many rounds), unlike the figure
benchmarks: counting vs naive matching throughput, index rebuild cost,
and the cost of matching under heavy pruning.
"""

from __future__ import annotations

import pytest

from repro.core.heuristics import Dimension
from repro.matching.counting import CountingMatcher
from repro.matching.naive import NaiveMatcher


@pytest.fixture(scope="module")
def matchers(bench_subscriptions):
    counting = CountingMatcher()
    naive = NaiveMatcher()
    for subscription in bench_subscriptions:
        counting.register(subscription)
        naive.register(subscription)
    counting.rebuild()
    return counting, naive


def test_counting_matcher_throughput(benchmark, matchers, bench_events):
    counting, _naive = matchers
    events = bench_events.events[:50]

    def run():
        total = 0
        for event in events:
            total += len(counting.match(event))
        return total

    matches = benchmark(run)
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["events"] = len(events)


def test_naive_matcher_throughput(benchmark, matchers, bench_events):
    _counting, naive = matchers
    events = bench_events.events[:50]

    def run():
        total = 0
        for event in events:
            total += len(naive.match(event))
        return total

    matches = benchmark(run)
    benchmark.extra_info["matches"] = matches


def test_counting_and_naive_agree(matchers, bench_events):
    counting, naive = matchers
    for event in bench_events.events[:50]:
        assert sorted(counting.match(event)) == sorted(naive.match(event))


def test_index_rebuild_cost(benchmark, bench_subscriptions):
    def rebuild():
        matcher = CountingMatcher()
        for subscription in bench_subscriptions:
            matcher.register(subscription)
        matcher.rebuild()
        return matcher.entry_count

    entries = benchmark(rebuild)
    benchmark.extra_info["entries"] = entries


def test_matching_fully_pruned_tables(benchmark, bench_context):
    """Matching cost at 100% pruning (every table entry is one predicate)."""
    schedule = bench_context.schedule(Dimension.NETWORK)
    pruned = schedule.replay(schedule.total)
    matcher = CountingMatcher()
    for subscription in pruned.values():
        matcher.register(subscription)
    matcher.rebuild()
    events = bench_context.events.events[:50]

    def run():
        total = 0
        for event in events:
            total += len(matcher.match(event))
        return total

    matches = benchmark(run)
    benchmark.extra_info["matches"] = matches
