"""Ablation: the bottom-up validity restriction (Sect. 3.2).

Memory-based pruning restricted to bottom-most candidates removes one
small piece at a time; without the restriction it chops the largest
subtree immediately.  The paper adds the restriction to keep memory
pruning from trading enormous selectivity for quick byte wins — this
ablation quantifies both sides: association reduction achieved per step
budget, and the matching-fraction price paid.
"""

from __future__ import annotations

import pytest

from repro.core.engine import PruningEngine
from repro.core.heuristics import Dimension
from repro.matching.counting import CountingMatcher
from repro.subscriptions.metrics import count_leaves


def _stats(subscriptions, events):
    matcher = CountingMatcher()
    for subscription in subscriptions:
        matcher.register(subscription)
    matcher.rebuild()
    matches = sum(len(matcher.match(event)) for event in events)
    fraction = matches / (len(events) * len(subscriptions))
    associations = sum(count_leaves(s.tree) for s in subscriptions)
    return fraction, associations


@pytest.mark.parametrize("bottom_up", [True, False], ids=["bottom-up", "unrestricted"])
def test_bottom_up_ablation(benchmark, bench_context, bottom_up):
    subscriptions = bench_context.subscriptions[:120]
    events = bench_context.events.events[:50]
    estimator = bench_context.estimator
    initial_associations = sum(count_leaves(s.tree) for s in subscriptions)
    steps = len(subscriptions) // 2  # a small fixed pruning budget

    def run():
        engine = PruningEngine(
            subscriptions, estimator, Dimension.MEMORY, bottom_up_only=bottom_up
        )
        engine.run(max_steps=steps)
        return list(engine.pruned_subscriptions().values())

    pruned = benchmark.pedantic(run, iterations=1, rounds=1)
    fraction, associations = _stats(pruned, events)
    reduction = 1.0 - associations / initial_associations
    benchmark.extra_info["association_reduction"] = reduction
    benchmark.extra_info["matching_fraction"] = fraction
    print(
        "\nbottom_up=%s: %d prunings -> association reduction %.4f, "
        "matching fraction %.5f" % (bottom_up, steps, reduction, fraction)
    )
    assert 0.0 <= reduction < 1.0
