#!/usr/bin/env python3
"""Adaptive pruning: switch the dimension as system pressure shifts.

The paper's introduction sketches this mode of operation: "if the number
of subscriptions increases strongly, we use memory-based pruning;
bandwidth limitations suggest to apply network-based pruning."  This
example simulates a broker going through three operational phases —
a subscription flash crowd (memory pressure), a bandwidth crunch, and a
CPU-bound filtering phase — and lets :class:`repro.AdaptivePruner` pick
the dimension per batch.

Run:  python examples/adaptive_pruning.py
"""

from repro import (
    AdaptivePruner,
    AuctionWorkload,
    AuctionWorkloadConfig,
    SystemConditions,
)

SUBSCRIPTIONS = 400
BATCH = 120


def main() -> None:
    workload = AuctionWorkload(AuctionWorkloadConfig(seed=99))
    subscriptions = workload.generate_subscriptions(SUBSCRIPTIONS)
    estimator = workload.estimator()

    pruner = AdaptivePruner(subscriptions, estimator)
    table_bytes = pruner.engine.total_size_bytes

    phases = [
        ("flash crowd: routing tables near the memory budget",
         SystemConditions(
             memory_used_bytes=int(table_bytes),
             memory_budget_bytes=int(table_bytes * 1.02),
             bandwidth_utilization=0.30,
             filter_saturation=0.40,
         )),
        ("bandwidth crunch: links close to saturation",
         SystemConditions(
             memory_used_bytes=int(table_bytes * 0.6),
             memory_budget_bytes=int(table_bytes * 1.5),
             bandwidth_utilization=0.93,
             filter_saturation=0.40,
         )),
        ("CPU-bound filtering: matching saturates the broker",
         SystemConditions(
             memory_used_bytes=int(table_bytes * 0.5),
             memory_budget_bytes=int(table_bytes * 1.5),
             bandwidth_utilization=0.35,
             filter_saturation=0.95,
         )),
    ]

    print("adaptive pruning over %d subscriptions (%d bytes of tables)\n"
          % (SUBSCRIPTIONS, table_bytes))
    for description, conditions in phases:
        records = pruner.optimize(conditions, batch_size=BATCH,
                                  stop_degradation=0.35)
        saved = sum(record.vector.mem for record in records)
        worst_sel = max((record.vector.sel for record in records), default=0.0)
        print("phase: %s" % description)
        print("  chose %s-based pruning; executed %d prunings"
              % (pruner.current_dimension.value, len(records)))
        print("  freed %d bytes of routing table, worst Δsel %.4f"
              % (saved, worst_sel))
        print("  remaining associations: %d\n" % pruner.engine.association_count)

    print("dimension history: %s"
          % " -> ".join("%s x%d" % (dimension.value, count)
                        for dimension, count in pruner.dimension_history))


if __name__ == "__main__":
    main()
