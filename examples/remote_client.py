#!/usr/bin/env python3
"""Network serving: a pub/sub broker on a TCP socket, clients over the wire.

Everything earlier examples did in-process — sessions, handles, sinks —
moves across a socket here: a :class:`repro.PubSubServer` puts the
service's broker network behind a length-prefixed JSON wire protocol,
and :class:`repro.PubSubClient` speaks it from the other side.  The
bounded delivery queues of the service layer become per-connection send
buffers, so a slow or absent reader is a *policy decision*, not a
stalled broker.

The example runs three acts on a loopback socket:

1. **Remote subscribe/publish** — an alert client registers Boolean
   subscriptions over the wire and a feed client publishes auction
   events; deliveries stream back with gapless per-session sequence
   numbers.
2. **Crash and resume** — the alert client is killed mid-stream (no
   goodbye, just a dead socket).  Events keep flowing into its
   server-side queue.  It reconnects with its session token and the
   server replays exactly the unseen tail: nothing lost, nothing
   duplicated.
3. **Authenticated handshake** — a second server requires per-client
   tokens; a wrong token is refused with a structured error.

Run:  python examples/remote_client.py
"""

import asyncio

from repro import (
    And,
    Event,
    P,
    PubSubClient,
    PubSubServer,
    PubSubService,
    TransportError,
    line_topology,
)

FEED = [
    {"category": "fiction", "price": 8.0, "title": "Pale Fire"},
    {"category": "tech", "price": 120.0, "title": "TAOCP"},
    {"category": "fiction", "price": 35.0, "title": "First Folio"},
    {"category": "fiction", "price": 6.5, "title": "Dubliners"},
    {"category": "history", "price": 15.0, "title": "Decline and Fall"},
    {"category": "fiction", "price": 9.0, "title": "Molloy"},
]


async def act_one_and_two() -> None:
    service = PubSubService(topology=line_topology(2), max_batch=1)
    async with PubSubServer(service, "b0") as server:
        print("serving on 127.0.0.1:%d" % server.port)

        alerts = PubSubClient(
            "127.0.0.1", server.port, "alerts", broker="b1", queue_capacity=32
        )
        await alerts.connect()
        await alerts.subscribe(
            And(P("category") == "fiction", P("price") <= 10.0)
        )
        feed = PubSubClient("127.0.0.1", server.port, "feed")
        await feed.connect()

        # Act 1: three events over the wire, matched server-side.
        for attributes in FEED[:3]:
            await feed.publish(Event(attributes))
        await alerts.wait_for_notifications(1)
        for note in alerts.notifications:
            print(
                "  alert #%d: %s ($%.2f)"
                % (note.delivery_seq, note.event["title"], note.event["price"])
            )

        # Act 2: kill the alert client without so much as a goodbye.
        token = alerts.token
        await alerts.abort()
        print("alert client crashed (token %s... survives)" % token[:8])
        for attributes in FEED[3:]:
            await feed.publish(Event(attributes))

        replayed = await alerts.reconnect()
        await alerts.wait_for_notifications(3)
        print("resumed: server replayed %d in-flight deliveries" % replayed)
        for note in alerts.notifications:
            print(
                "  alert #%d: %s ($%.2f)"
                % (note.delivery_seq, note.event["title"], note.event["price"])
            )
        assert [n.delivery_seq for n in alerts.notifications] == [0, 1, 2]
        assert alerts.duplicates == 0

        await feed.close()
        await alerts.close()
    service.close()


async def act_three() -> None:
    service = PubSubService(topology=line_topology(1), max_batch=1)
    async with PubSubServer(
        service, "b0", auth_tokens={"alerts": "opensesame"}
    ) as server:
        impostor = PubSubClient(
            "127.0.0.1", server.port, "alerts", auth="guessing"
        )
        try:
            await impostor.connect()
        except TransportError as error:
            print("impostor refused: [%s] %s" % (error.code, error))
        genuine = PubSubClient(
            "127.0.0.1", server.port, "alerts", auth="opensesame"
        )
        await genuine.connect()
        print("authenticated session %s..." % genuine.token[:8])
        await genuine.close()
    service.close()


def main() -> None:
    asyncio.run(act_one_and_two())
    asyncio.run(act_three())


if __name__ == "__main__":
    main()
