#!/usr/bin/env python3
"""Distributed routing through the service layer: five brokers, pruned tables.

Reproduces the paper's distributed setting as a runnable scenario, on the
session/handle/sink API: subscriber sessions attach to five brokers
connected in a line (subscription ids are assigned by the service, never
hand-chosen); publisher sessions emit auction events at every broker
through the micro-batching ingress; each broker prunes the routing
entries it holds for *remote* subscribers.  The example verifies the
delivery guarantee (every client's sink receives exactly the events its
original subscriptions match, at any pruning level) and reports the
network-load price.

Run:  python examples/distributed_brokers.py
"""

from repro import (
    AuctionWorkload,
    AuctionWorkloadConfig,
    CollectingSink,
    Dimension,
    PruningSchedule,
    PubSubService,
    line_topology,
)

SUBSCRIPTIONS = 300
EVENTS = 200
BROKERS = 5
MAX_BATCH = 32


def deliveries_signature(service, publishers, sinks, events):
    """Per-event delivery sets, reconstructed from the client sinks.

    Events ride the micro-batching ingress; each notification carries
    the service-wide publish sequence of its event, so the signature is
    independent of how the ingress batched the stream.
    """
    start = service.publish_count
    for sink in sinks.values():
        sink.clear()
    for index, event in enumerate(events):
        publishers[index % len(publishers)].publish(event)
    service.flush()
    signature = {}
    for sink in sinks.values():
        for note in sink.notifications:
            signature.setdefault(note.sequence - start, set()).add(
                (note.client, note.subscription_id))
    return signature


def main() -> None:
    workload = AuctionWorkload(AuctionWorkloadConfig(seed=7))
    subscriptions = workload.generate_subscriptions(SUBSCRIPTIONS)
    events = list(workload.generate_events(EVENTS))

    service = PubSubService(topology=line_topology(BROKERS),
                            max_batch=MAX_BATCH)
    network = service.network
    broker_ids = network.topology.broker_ids

    # One session (with a collecting sink) per client; the service hands
    # out subscription handles — the workload's own ids are only used to
    # look up pruning-schedule entries below.
    sessions, sinks, workload_id_for = {}, {}, {}
    for index, subscription in enumerate(subscriptions):
        home = broker_ids[index % BROKERS]
        client = "%s-user%d" % (home, index % 4)
        if (home, client) not in sessions:
            sinks[(home, client)] = CollectingSink()
            sessions[(home, client)] = service.connect(
                home, client, sink=sinks[(home, client)])
        handle = sessions[(home, client)].subscribe(subscription.tree)
        workload_id_for[handle.id] = subscription.id

    publishers = [service.connect(broker_id, "publisher")
                  for broker_id in broker_ids]

    report = network.report()
    print("subscription forwarding: %d messages, %.1f KiB"
          % (report.subscription_messages, report.subscription_bytes / 1024))

    baseline = deliveries_signature(service, publishers, sinks, events)
    base_report = network.report()
    print("\nun-optimized routing of %d events (ingress max_batch=%d):"
          % (EVENTS, MAX_BATCH))
    print("  %d broker-to-broker event messages (%.2f per event)"
          % (base_report.event_messages, base_report.messages_per_event))
    print("  %d notifications delivered to client sinks"
          % base_report.deliveries)
    print("  %.2f ms per event (filtering + modelled 10 Mbps transmission)"
          % (base_report.seconds_per_event * 1e3))

    estimator = workload.estimator()
    schedule = PruningSchedule.build(subscriptions, estimator, Dimension.NETWORK)
    for proportion in (0.5, 0.75, 1.0):
        pruned = schedule.replay(schedule.prefix_count(proportion))
        per_broker = {
            broker_id: {
                entry.subscription_id:
                    pruned[workload_id_for[entry.subscription_id]].tree
                for entry in network.brokers[broker_id].non_local_entries()
            }
            for broker_id in broker_ids
        }
        network.apply_pruned_tables(per_broker)
        network.reset_statistics()
        signature = deliveries_signature(service, publishers, sinks, events)
        assert signature == baseline, "delivery invariant violated!"
        pruned_report = network.report()
        increase = (pruned_report.event_messages
                    / max(1, base_report.event_messages) - 1.0)
        print("\nnetwork-based pruning at %.0f%% of prunings:" % (proportion * 100))
        print("  routing tables: %d associations (non-local), %+.0f%% network load"
              % (network.non_local_association_count, increase * 100))
        print("  %.2f ms per event; deliveries unchanged ✓"
              % (pruned_report.seconds_per_event * 1e3))

    print("\nEvery client sink received exactly the same notifications at "
          "every pruning level:\nexact post-filtering at the home broker "
          "absorbs all false forwarding.")
    service.close()


if __name__ == "__main__":
    main()
