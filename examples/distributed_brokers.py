#!/usr/bin/env python3
"""Distributed routing: five brokers in a line, pruned routing tables.

Reproduces the paper's distributed setting as a runnable scenario:
subscribers attach to five brokers connected in a line; publishers emit
auction events at every broker; each broker prunes the routing entries it
holds for *remote* subscribers.  The example verifies the delivery
guarantee (clients receive exactly the events their original subscription
matches, at any pruning level) and reports the network-load price.

Run:  python examples/distributed_brokers.py
"""


from repro import (
    AuctionWorkload,
    AuctionWorkloadConfig,
    BrokerNetwork,
    Dimension,
    PruningSchedule,
    line_topology,
)

SUBSCRIPTIONS = 300
EVENTS = 200
BROKERS = 5


def deliveries_signature(network, broker_ids, events):
    signature = []
    for index, event in enumerate(events):
        result = network.publish(broker_ids[index % len(broker_ids)], event)
        signature.append(frozenset(
            (d.client, d.subscription_id) for d in result.deliveries))
    return signature


def main() -> None:
    workload = AuctionWorkload(AuctionWorkloadConfig(seed=7))
    subscriptions = workload.generate_subscriptions(SUBSCRIPTIONS)
    events = list(workload.generate_events(EVENTS))

    network = BrokerNetwork(line_topology(BROKERS))
    broker_ids = network.topology.broker_ids
    for index, subscription in enumerate(subscriptions):
        home = broker_ids[index % BROKERS]
        network.subscribe(home, "%s-user%d" % (home, index % 4),
                          subscription.tree, subscription_id=subscription.id)

    report = network.report()
    print("subscription forwarding: %d messages, %.1f KiB"
          % (report.subscription_messages, report.subscription_bytes / 1024))

    baseline = deliveries_signature(network, broker_ids, events)
    base_report = network.report()
    print("\nun-optimized routing of %d events:" % EVENTS)
    print("  %d broker-to-broker event messages (%.2f per event)"
          % (base_report.event_messages, base_report.messages_per_event))
    print("  %d notifications delivered" % base_report.deliveries)
    print("  %.2f ms per event (filtering + modelled 10 Mbps transmission)"
          % (base_report.seconds_per_event * 1e3))

    estimator = workload.estimator()
    schedule = PruningSchedule.build(subscriptions, estimator, Dimension.NETWORK)
    for proportion in (0.5, 0.75, 1.0):
        pruned = schedule.replay(schedule.prefix_count(proportion))
        per_broker = {
            broker_id: {
                entry.subscription_id: pruned[entry.subscription_id].tree
                for entry in network.brokers[broker_id].non_local_entries()
            }
            for broker_id in broker_ids
        }
        network.apply_pruned_tables(per_broker)
        network.reset_statistics()
        signature = deliveries_signature(network, broker_ids, events)
        assert signature == baseline, "delivery invariant violated!"
        pruned_report = network.report()
        increase = (pruned_report.event_messages
                    / max(1, base_report.event_messages) - 1.0)
        print("\nnetwork-based pruning at %.0f%% of prunings:" % (proportion * 100))
        print("  routing tables: %d associations (non-local), %+.0f%% network load"
              % (network.non_local_association_count, increase * 100))
        print("  %.2f ms per event; deliveries unchanged ✓"
              % (pruned_report.seconds_per_event * 1e3))

    print("\nEvery client received exactly the same notifications at every "
          "pruning level:\nexact post-filtering at the home broker absorbs "
          "all false forwarding.")


if __name__ == "__main__":
    main()
