#!/usr/bin/env python3
"""Fault injection and self-healing: break the wire, watch it heal.

The transport from ``examples/remote_client.py`` promised exactly-once
delivery across a *voluntary* crash.  This example stops being polite:
a seeded :class:`repro.FaultPlan` injects connection resets, stalls,
and split frames into the subscriber's streams while a separate plan
keeps killing the matcher's worker processes — and every guarantee
still holds, because the stack heals itself:

1. **Wire chaos** — a subscriber dials in through
   :func:`repro.faulty_stream`, which wraps its reader/writer in
   fault-injecting shims driven by one reproducible plan.  Heartbeats
   (``ping``/``pong``) detect the half-open connections the faults
   leave behind; ``auto_reconnect=True`` redials under capped jittered
   backoff (:class:`repro.BackoffSchedule`) and resumes by session
   token.  After the storm the client holds exactly the events a clean
   client would, in order, gapless.
2. **Worker chaos** — a :class:`repro.WorkerFaultInjector` kills a
   matcher worker process on a schedule.  The sharded matcher restarts
   the pool inside the failing call; when the kills loop faster than
   its crash-loop threshold, it degrades to in-process threads —
   bit-identical results, story told by ``health_report()``.

Run:  python examples/chaos_demo.py
"""

import asyncio

from repro import (
    BackoffSchedule,
    Event,
    FaultPlan,
    P,
    PubSubClient,
    PubSubServer,
    PubSubService,
    WorkerFaultInjector,
    faulty_stream,
    line_topology,
)

EVENTS = 40


async def act_one_wire_chaos() -> None:
    plan = FaultPlan(
        17,
        wire_kinds=("reset", "stall", "split"),
        mean_gap_bytes=900.0,
        min_first_gap_bytes=256,
        stall_seconds=0.05,
        max_faults=6,
    )
    plan.disarm()  # wiring happens on a calm sea

    service = PubSubService(topology=line_topology(2), max_batch=1)
    async with PubSubServer(
        service, "b0", heartbeat_interval=0.2, idle_timeout=2.0
    ) as server:
        alerts = PubSubClient(
            "127.0.0.1",
            server.port,
            "alerts",
            broker="b1",
            queue_capacity=256,
            heartbeat_interval=0.2,
            liveness_timeout=1.0,
            auto_reconnect=True,
            max_reconnect_attempts=50,
            backoff=BackoffSchedule(seed=17, label="alerts", base=0.02, cap=0.2),
            stream_wrapper=faulty_stream(plan, "alerts"),
        )
        await alerts.connect()
        await alerts.subscribe(P("i") >= 0)
        feed = PubSubClient("127.0.0.1", server.port, "feed")
        await feed.connect()

        plan.arm()  # let it rip
        for i in range(EVENTS):
            await feed.publish(Event({"i": i, "pad": "x" * 120}))
            await asyncio.sleep(0.01)
        plan.disarm()

        await alerts.wait_for_notifications(EVENTS, timeout=30)
        got = [note.event["i"] for note in alerts.notifications]
        assert got == list(range(EVENTS))
        assert [n.delivery_seq for n in alerts.notifications] == list(
            range(EVENTS)
        )
        print("wire chaos: %s" % dict(plan.counts()))
        print(
            "  healed via %d reconnect(s), %d liveness expiries;"
            " %d/%d events delivered exactly once, gapless"
            % (alerts.reconnects, alerts.liveness_expiries, len(got), EVENTS)
        )
        if alerts.recovery_latencies:
            print(
                "  worst drop->resume gap: %.0f ms"
                % (max(alerts.recovery_latencies) * 1e3)
            )

        await feed.close()
        await alerts.close()
    service.close()


def act_two_worker_chaos() -> None:
    from repro.matching import CountingMatcher, ShardedMatcher
    from repro.subscriptions import Subscription

    plan = FaultPlan(7, worker_kinds=("worker_kill",), worker_mean_gap_calls=2.0)
    events = [Event({"i": i}) for i in range(64)]
    subscriptions = [Subscription(i, P("i") >= i) for i in range(12)]

    oracle = CountingMatcher()
    for subscription in subscriptions:
        oracle.register(subscription)
    expected = oracle.match_batch(events)

    with ShardedMatcher(
        2, executor="processes", crash_loop_threshold=2
    ) as matcher:
        matcher.set_fault_injector(WorkerFaultInjector(plan, label="pool"))
        for subscription in subscriptions:
            matcher.register(subscription)
        for start in range(0, len(events), 8):
            assert (
                matcher.match_batch(events[start : start + 8])
                == expected[start : start + 8]
            )
        health = matcher.health_report()
        print("worker chaos: %s" % dict(plan.counts()))
        print(
            "  %d worker crash(es) healed; executor now %r (degraded=%s)"
            % (health.crashes, health.executor, health.degraded)
        )
        if health.degraded:
            print("  reason: %s" % health.degraded_reason)


def main() -> None:
    asyncio.run(act_one_wire_chaos())
    act_two_worker_chaos()


if __name__ == "__main__":
    main()
