#!/usr/bin/env python3
"""Auction alerts: a centralized service under memory pressure.

Scenario (the paper's motivating application): an online book-auction
site lets users register Boolean alert subscriptions; a single broker
filters every auction event against all of them.  The routing table
grows past its budget, so the operator prunes it — and must pick a
dimension.

This example runs the whole thing through the service layer: user
sessions with counting sinks, server-assigned subscription handles, and
event admission through the micro-batching ingress.  It prunes the live
table by 25% of its possible prunings with each dimension (pushed out
with `handle.replace`, restored the same way) and reports the resulting
table size, filtering time, and false-alert overhead, showing the
trade-off surface of Sect. 4.

Run:  python examples/auction_alerts.py
"""

import time

from repro import (
    AuctionWorkload,
    AuctionWorkloadConfig,
    CountingSink,
    Dimension,
    PruningSchedule,
    PubSubService,
    line_topology,
)

SUBSCRIPTIONS = 600
EVENTS = 250
PRUNE_PROPORTION = 0.25
USERS = 8
MAX_BATCH = 64


def measure(service, publisher, sinks, events):
    """(seconds/event, alerts, associations) for the live table."""
    alerts_before = sum(sink.total for sink in sinks)
    started = time.perf_counter()
    for event in events:
        publisher.publish(event)
    service.flush()
    elapsed = time.perf_counter() - started
    alerts = sum(sink.total for sink in sinks) - alerts_before
    return elapsed / len(events), alerts, service.network.association_count


def main() -> None:
    workload = AuctionWorkload(AuctionWorkloadConfig(seed=2026))
    subscriptions = workload.generate_subscriptions(SUBSCRIPTIONS)
    events = list(workload.generate_events(EVENTS))
    estimator = workload.estimator()

    service = PubSubService(topology=line_topology(1), max_batch=MAX_BATCH)
    sessions = {}
    handles = []
    for index, subscription in enumerate(subscriptions):
        client = "user-%d" % (index % USERS)
        if client not in sessions:
            sessions[client] = service.connect("b0", client,
                                               sink=CountingSink())
        handle = sessions[client].subscribe(subscription.tree)
        handles.append((handle, subscription))
    sinks = [session.sink for session in sessions.values()]
    publisher = service.connect("b0", "auction-site")

    seconds, alerts, associations = measure(service, publisher, sinks, events)
    print("un-optimized table: %d subs, %d associations" % (
        len(subscriptions), associations))
    print("  %.3f ms/event, %d alerts delivered" % (seconds * 1e3, alerts))

    print("\npruning %.0f%% of possible prunings with each dimension "
          "(live, via handle.replace):" % (PRUNE_PROPORTION * 100))
    print("%-12s %14s %12s %16s" % (
        "dimension", "associations", "ms/event", "extra alerts"))
    for dimension in Dimension:
        schedule = PruningSchedule.build(subscriptions, estimator, dimension)
        pruned = schedule.replay(schedule.prefix_count(PRUNE_PROPORTION))
        for handle, original in handles:
            handle.replace(pruned[original.id].tree)
        p_seconds, p_alerts, p_associations = measure(
            service, publisher, sinks, events)
        for handle, original in handles:
            handle.replace(original.tree)
        print("%-12s %14d %12.3f %16d" % (
            dimension.value, p_associations, p_seconds * 1e3,
            p_alerts - alerts))

    print(
        "\nReading the table: memory-based pruning shrinks the table most,\n"
        "network-based pruning adds the fewest false alerts (in the\n"
        "distributed setting they are discarded by exact post-filtering at\n"
        "the home broker before reaching users), and throughput-based\n"
        "pruning keeps per-event filtering cheapest early in the sweep —\n"
        "exactly the paper's Fig. 1(a)-(c) trade-off."
    )
    service.close()


if __name__ == "__main__":
    main()
