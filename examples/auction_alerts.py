#!/usr/bin/env python3
"""Auction alerts: a centralized broker under memory pressure.

Scenario (the paper's motivating application): an online book-auction
site lets users register Boolean alert subscriptions; a single broker
filters every auction event against all of them.  The routing table grows
past its budget, so the operator prunes it — and must pick a dimension.

This example generates the paper's auction workload, prunes the table by
25% of its possible prunings with each dimension, and reports the
resulting table size, filtering time, and false-alert overhead, showing
the trade-off surface of Sect. 4.

Run:  python examples/auction_alerts.py
"""

import time

from repro import (
    AuctionWorkload,
    AuctionWorkloadConfig,
    CountingMatcher,
    Dimension,
    PruningSchedule,
)

SUBSCRIPTIONS = 600
EVENTS = 250
PRUNE_PROPORTION = 0.25


def measure(subscriptions, events):
    """(seconds/event, alerts, associations) for a routing table."""
    matcher = CountingMatcher()
    matcher.register_all(subscriptions)
    matcher.rebuild()
    matcher.statistics.reset()
    started = time.perf_counter()
    alerts = 0
    for event in events:
        alerts += len(matcher.match(event))
    elapsed = time.perf_counter() - started
    return elapsed / len(events), alerts, matcher.association_count


def main() -> None:
    workload = AuctionWorkload(AuctionWorkloadConfig(seed=2026))
    subscriptions = workload.generate_subscriptions(SUBSCRIPTIONS)
    events = list(workload.generate_events(EVENTS))
    estimator = workload.estimator()

    seconds, alerts, associations = measure(subscriptions, events)
    print("un-optimized table: %d subs, %d associations" % (
        len(subscriptions), associations))
    print("  %.3f ms/event, %d alerts delivered" % (seconds * 1e3, alerts))

    print("\npruning %.0f%% of possible prunings with each dimension:"
          % (PRUNE_PROPORTION * 100))
    print("%-12s %14s %12s %16s" % (
        "dimension", "associations", "ms/event", "extra alerts"))
    for dimension in Dimension:
        schedule = PruningSchedule.build(subscriptions, estimator, dimension)
        pruned = schedule.replay(schedule.prefix_count(PRUNE_PROPORTION))
        p_seconds, p_alerts, p_associations = measure(
            list(pruned.values()), events)
        print("%-12s %14d %12.3f %16d" % (
            dimension.value, p_associations, p_seconds * 1e3,
            p_alerts - alerts))

    print(
        "\nReading the table: memory-based pruning shrinks the table most,\n"
        "network-based pruning adds the fewest false alerts (they are\n"
        "discarded by exact post-filtering before reaching users), and\n"
        "throughput-based pruning keeps per-event filtering cheapest early\n"
        "in the sweep — exactly the paper's Fig. 1(a)-(c) trade-off."
    )


if __name__ == "__main__":
    main()
