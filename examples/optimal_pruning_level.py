#!/usr/bin/env python3
"""How much pruning is optimal?  (the paper's future-work question)

In the distributed setting pruning first lowers routing cost (smaller,
cheaper tables) and then raises it again: too-general entries forward
events everywhere, and every extra message must be sent, received, and
post-filtered (the effect behind the paper's Fig. 1(d)).  Somewhere in
between lies an optimum.  The paper leaves "how to dynamically determine
the number of pruning operations leading to the best overall
optimization" as future work; this example answers it with
:class:`repro.core.optimum.OptimumSearch` against the *measured plus
modelled* per-event routing cost of a five-broker line.

Run:  python examples/optimal_pruning_level.py
"""

import itertools

from repro import (
    AuctionWorkload,
    AuctionWorkloadConfig,
    BrokerNetwork,
    Dimension,
    line_topology,
)
from repro.core.optimum import OptimumSearch
from repro.core.planner import PruningSchedule

SUBSCRIPTIONS = 700
EVENTS = 120
BROKERS = 5


def main() -> None:
    workload = AuctionWorkload(AuctionWorkloadConfig(seed=17))
    subscriptions = workload.generate_subscriptions(SUBSCRIPTIONS)
    events = list(workload.generate_events(EVENTS))
    estimator = workload.estimator()

    network = BrokerNetwork(line_topology(BROKERS))
    broker_ids = network.topology.broker_ids
    for index, subscription in enumerate(subscriptions):
        # Registered in workload order on a fresh network, so the
        # auto-assigned ids coincide with the workload subscription ids.
        network.subscribe(
            broker_ids[index % BROKERS], "c%d" % index, subscription.tree,
        )

    schedule = PruningSchedule.build(subscriptions, estimator, Dimension.NETWORK)
    print("schedule: %d possible prunings (network dimension)" % schedule.total)

    def routing_cost(pruned, _count):
        """Per-event cost: measured filtering + modelled transmission."""
        per_broker = {
            broker_id: {
                entry.subscription_id: pruned[entry.subscription_id].tree
                for entry in network.brokers[broker_id].non_local_entries()
            }
            for broker_id in broker_ids
        }
        network.apply_pruned_tables(per_broker)
        for broker in network.brokers.values():
            broker.matcher.rebuild()
        network.reset_statistics()
        network.publish_many(itertools.cycle(broker_ids), events)
        return network.report().seconds_per_event

    search = OptimumSearch(schedule, routing_cost, coarse_points=6,
                           refine_rounds=1, refine_points=4)
    result = search.search()

    print("\nevaluated %d pruning levels:" % len(result.evaluations))
    baseline = dict(result.evaluations).get(0)
    for count, value in sorted(result.evaluations):
        marker = "  <-- optimum" if count == result.count else ""
        print("  %6d prunings (x=%.2f): %.3f ms/event%s"
              % (count, count / schedule.total, value * 1e3, marker))

    print("\noptimum: %d prunings (%.0f%% of the schedule)"
          % (result.count, result.proportion * 100))
    if baseline:
        print("  routing cost %.3f ms/event vs %.3f un-optimized (%.0f%%)"
              % (result.cost * 1e3, baseline * 1e3,
                 result.cost / baseline * 100))
    if 0 < result.count < schedule.total:
        print("\n(The optimum sits in the interior: past it, additionally"
              "\n routed events cost more than the smaller tables save —"
              "\n the paper's Fig. 1(d) in one number.)")
    else:
        print("\n(At this scale the endpoint wins; with larger routing"
              "\n tables the interior optimum of Fig. 1(d) emerges.)")


if __name__ == "__main__":
    main()
