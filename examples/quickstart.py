#!/usr/bin/env python3
"""Quickstart: the service layer — sessions, handles, sinks, and pruning.

Walks the full pipeline the way a client of the system sees it:

1. start a `PubSubService` over a broker topology,
2. connect client sessions and subscribe with the P/And/Or/Not DSL —
   subscription identity is a server-assigned handle, never a
   hand-chosen integer,
3. publish events through the micro-batching ingress and read the
   deliveries from each client's sink,
4. change a live subscription with `handle.replace` / `.unsubscribe`,
5. estimate selectivities and preview dimension-based pruning on the
   registered subscriptions.

Run:  python examples/quickstart.py
"""

from repro import (
    And,
    CategoricalStatistics,
    ContinuousStatistics,
    Dimension,
    Event,
    EventStatistics,
    Not,
    Or,
    P,
    PruningEngine,
    PubSubService,
    SelectivityEstimator,
    line_topology,
)


def main() -> None:
    # -- 1. A service over three brokers in a line ---------------------------
    service = PubSubService(topology=line_topology(3), max_batch=8)

    # -- 2. Sessions and subscriptions (ids are assigned by the service) -----
    alice = service.connect("b0", "alice")
    bob = service.connect("b1", "bob")
    carol = service.connect("b2", "carol")

    handles = {
        "alice": alice.subscribe(And(
            P("category") == "fiction",
            P("price") <= 20.0,
            P("seller_rating") >= 4.0,
        )),
        "bob": bob.subscribe(And(
            Or(P("category") == "scifi", P("category") == "fantasy"),
            P("price") <= 35.0,
            Not(P("condition") == "poor"),
        )),
        "carol": carol.subscribe(Or(
            And(P("author") == "author-007", P("price") <= 50.0),
            And(P("title") == "book-0042", P("buy_now") == True),  # noqa: E712
        )),
    }
    print("== Subscription handles (server-assigned identity) ==")
    for name, handle in handles.items():
        print("  %s -> %r" % (name, handle))

    # -- 3. Publishing through the micro-batching ingress --------------------
    publisher = service.connect("b1", "auction-site")
    events = [
        Event({"category": "fiction", "price": 12.0, "seller_rating": 4.5,
               "condition": "good"}),
        Event({"category": "scifi", "price": 30.0, "seller_rating": 3.0,
               "condition": "like-new"}),
        Event({"author": "author-007", "title": "book-0001", "price": 45.0,
               "buy_now": False, "category": "history",
               "seller_rating": 5.0, "condition": "new"}),
    ]
    for event in events:
        publisher.publish(event)       # buffered: rides the ingress
    service.flush()                    # drain the partial micro-batch

    print("\n== Deliveries (per-session sinks) ==")
    for session in (alice, bob, carol):
        got = ["#%d %r" % (note.sequence, dict(list(note.event.items())[:2]))
               for note in session.sink.notifications]
        print("  %s: %s" % (session.client, ", ".join(got) or "(nothing)"))

    # -- 4. Live subscription changes ---------------------------------------
    # Bob narrows his alert mid-stream; the handle keeps its identity and
    # pending events are flushed before the change takes effect.
    handles["bob"].replace(And(P("category") == "scifi", P("price") <= 15.0))
    publisher.publish(Event({"category": "scifi", "price": 30.0,
                             "condition": "new"}))
    publisher.publish(Event({"category": "scifi", "price": 9.0,
                             "condition": "new"}))
    service.flush()
    print("\n== After bob.replace(scifi AND price<=15) ==")
    print("  bob now has %d notifications (the $30 sci-fi no longer matches)"
          % len(bob.sink.notifications))

    # -- 5. Selectivity estimation and pruning preview -----------------------
    statistics = EventStatistics({
        "category": CategoricalStatistics(
            {"fiction": 0.4, "scifi": 0.2, "fantasy": 0.15, "history": 0.25}),
        "price": ContinuousStatistics([0, 10, 25, 50, 200], [0, 0.3, 0.6, 0.85, 1.0]),
        "seller_rating": ContinuousStatistics([0, 3, 4, 5], [0, 0.2, 0.5, 1.0]),
        "condition": CategoricalStatistics(
            {"new": 0.3, "like-new": 0.2, "good": 0.35, "poor": 0.15}),
    }, default_probability=0.05)
    estimator = SelectivityEstimator(statistics)

    subscriptions = [handle.subscription for handle in handles.values()]
    print("\n== Selectivity estimates (min/avg/max) ==")
    for subscription in subscriptions:
        estimate = estimator.estimate(subscription.tree)
        print("  sub %d (%s): %.4f / %.4f / %.4f"
              % (subscription.id, subscription.owner,
                 estimate.min, estimate.avg, estimate.max))

    print("\n== Pruning, one dimension at a time ==")
    for dimension in Dimension:
        engine = PruningEngine(subscriptions, estimator, dimension)
        records = engine.run(max_steps=3)
        print("  %s-based pruning removes first:" % dimension.value)
        for record in records:
            print("    step %d: sub %d  Δsel=%.4f Δeff=%d Δmem=%dB"
                  % (record.sequence, record.subscription_id,
                     record.vector.sel, record.vector.eff, record.vector.mem))

    # The pruned routing entries still match everything the originals did.
    engine = PruningEngine(subscriptions, estimator, Dimension.NETWORK)
    engine.run()
    pruned = engine.pruned_subscriptions()
    print("\n== Generalization check (exhaustive pruning) ==")
    for event in events:
        for subscription in subscriptions:
            if subscription.matches(event):
                assert pruned[subscription.id].matches(event)
    print("  every original match is preserved by the pruned trees ✓")

    service.close()


if __name__ == "__main__":
    main()
