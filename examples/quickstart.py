#!/usr/bin/env python3
"""Quickstart: subscriptions, matching, and dimension-based pruning.

Walks the full pipeline on a handful of subscriptions:

1. build Boolean subscriptions with the P/And/Or/Not DSL,
2. match events with the counting engine,
3. estimate selectivities,
4. prune with each of the paper's three dimensions and watch how the
   heuristics disagree about what to remove first.

Run:  python examples/quickstart.py
"""

from repro import (
    And,
    CategoricalStatistics,
    ContinuousStatistics,
    CountingMatcher,
    Dimension,
    Event,
    EventStatistics,
    Not,
    Or,
    P,
    PruningEngine,
    SelectivityEstimator,
    Subscription,
)


def main() -> None:
    # -- 1. Boolean subscriptions over attribute-value events ---------------
    subscriptions = [
        Subscription(1, And(
            P("category") == "fiction",
            P("price") <= 20.0,
            P("seller_rating") >= 4.0,
        ), owner="alice"),
        Subscription(2, And(
            Or(P("category") == "scifi", P("category") == "fantasy"),
            P("price") <= 35.0,
            Not(P("condition") == "poor"),
        ), owner="bob"),
        Subscription(3, Or(
            And(P("author") == "author-007", P("price") <= 50.0),
            And(P("title") == "book-0042", P("buy_now") == True),  # noqa: E712
        ), owner="carol"),
    ]

    # -- 2. Matching with the counting engine -------------------------------
    matcher = CountingMatcher()
    matcher.register_all(subscriptions)

    events = [
        Event({"category": "fiction", "price": 12.0, "seller_rating": 4.5,
               "condition": "good"}),
        Event({"category": "scifi", "price": 30.0, "seller_rating": 3.0,
               "condition": "like-new"}),
        Event({"author": "author-007", "title": "book-0001", "price": 45.0,
               "buy_now": False, "category": "history",
               "seller_rating": 5.0, "condition": "new"}),
    ]
    print("== Matching ==")
    for event in events:
        matched = matcher.match_subscriptions(event)
        owners = ", ".join(sub.owner for sub in matched) or "(nobody)"
        print("  %r -> %s" % (dict(list(event.to_dict().items())[:2]), owners))
    print("  engine stats:", matcher.statistics)

    # -- 3. Selectivity estimation -------------------------------------------
    statistics = EventStatistics({
        "category": CategoricalStatistics(
            {"fiction": 0.4, "scifi": 0.2, "fantasy": 0.15, "history": 0.25}),
        "price": ContinuousStatistics([0, 10, 25, 50, 200], [0, 0.3, 0.6, 0.85, 1.0]),
        "seller_rating": ContinuousStatistics([0, 3, 4, 5], [0, 0.2, 0.5, 1.0]),
        "condition": CategoricalStatistics(
            {"new": 0.3, "like-new": 0.2, "good": 0.35, "poor": 0.15}),
    }, default_probability=0.05)
    estimator = SelectivityEstimator(statistics)

    print("\n== Selectivity estimates (min/avg/max) ==")
    for subscription in subscriptions:
        estimate = estimator.estimate(subscription.tree)
        print("  sub %d (%s): %.4f / %.4f / %.4f"
              % (subscription.id, subscription.owner,
                 estimate.min, estimate.avg, estimate.max))

    # -- 4. Dimension-based pruning ------------------------------------------
    print("\n== Pruning, one dimension at a time ==")
    for dimension in Dimension:
        engine = PruningEngine(subscriptions, estimator, dimension)
        records = engine.run(max_steps=3)
        print("  %s-based pruning removes first:" % dimension.value)
        for record in records:
            print("    step %d: sub %d  Δsel=%.4f Δeff=%d Δmem=%dB"
                  % (record.sequence, record.subscription_id,
                     record.vector.sel, record.vector.eff, record.vector.mem))

    # The pruned routing entries still match everything the originals did.
    engine = PruningEngine(subscriptions, estimator, Dimension.NETWORK)
    engine.run()
    pruned = engine.pruned_subscriptions()
    print("\n== Generalization check (exhaustive pruning) ==")
    for event in events:
        for subscription in subscriptions:
            if subscription.matches(event):
                assert pruned[subscription.id].matches(event)
    print("  every original match is preserved by the pruned trees ✓")


if __name__ == "__main__":
    main()
