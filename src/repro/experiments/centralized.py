"""The centralized (single broker) experiment: Fig. 1(a), 1(b), 1(c).

One broker holds every subscription.  For each dimension, the pruning
schedule is swept from 0 to 100% of possible prunings; at each grid point
a fresh counting engine is built over the pruned trees and the event
batch is matched through the vectorized batch path to measure

* mean filtering time per event (Fig. 1(a)),
* the proportional number of matching events — total matches normalized
  by events × subscriptions, which converges to 1.0 when every
  subscription has been generalized to triviality (Fig. 1(b)),
* the proportional reduction in predicate/subscription associations over
  *all* subscriptions (Fig. 1(c); in the centralized analysis the paper
  prunes everything to expose the expected effects).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.heuristics import Dimension
from repro.experiments.context import ExperimentContext
from repro.experiments.measurements import (
    CentralizedPoint,
    association_reduction,
    measure_matching,
)


class CentralizedExperiment:
    """Runs the single-broker sweep for one or all dimensions."""

    def __init__(self, context: ExperimentContext) -> None:
        self.context = context

    def run(self, dimension: Dimension) -> List[CentralizedPoint]:
        """Sweep one dimension over the configured proportion grid."""
        context = self.context
        schedule = context.schedule(dimension)
        counts = context.grid_counts(dimension)
        proportions = context.config.proportions
        initial_associations = context.initial_association_count
        events = context.events

        points: List[CentralizedPoint] = []
        for index, (count, pruned) in enumerate(schedule.sweep(counts)):
            subscriptions = list(pruned.values())
            seconds, fraction, matcher = measure_matching(subscriptions, events)
            stats = matcher.statistics
            associations = sum(s.leaf_count for s in subscriptions)
            points.append(
                CentralizedPoint(
                    proportion=proportions[index],
                    prunings=count,
                    seconds_per_event=seconds,
                    matching_fraction=fraction,
                    association_reduction=association_reduction(
                        associations, initial_associations
                    ),
                    candidates_per_event=(
                        stats.candidates / stats.events if stats.events else 0.0
                    ),
                    evaluations_per_event=(
                        stats.tree_evaluations / stats.events if stats.events else 0.0
                    ),
                )
            )
        return points

    def run_all(self) -> Dict[Dimension, List[CentralizedPoint]]:
        """Sweep every configured dimension."""
        return {
            dimension: self.run(dimension)
            for dimension in self.context.config.dimensions
        }
