"""Experiment harness reproducing the paper's evaluation (Fig. 1(a)–(f)).

The harness mirrors the paper's setup: an auction workload of registered
subscriptions and published events, three pruning heuristics swept from 0
to 100% of possible prunings, measured in a centralized (single broker)
and a distributed (five brokers in a line) setting.

Entry points:

* :class:`~repro.experiments.config.ExperimentConfig` /
  :func:`~repro.experiments.config.config_for_scale` — sizing;
* :class:`~repro.experiments.context.ExperimentContext` — shared workload,
  schedules and grids;
* :class:`~repro.experiments.centralized.CentralizedExperiment` — Fig. 1(a)–(c);
* :class:`~repro.experiments.distributed.DistributedExperiment` — Fig. 1(d)–(f);
* :mod:`repro.experiments.figures` / :mod:`repro.experiments.report` —
  tables, ASCII plots, CSV;
* ``python -m repro.experiments.run`` — the CLI.
"""

from repro.experiments.centralized import CentralizedExperiment
from repro.experiments.config import SCALES, ExperimentConfig, config_for_scale
from repro.experiments.context import ExperimentContext
from repro.experiments.distributed import DistributedExperiment
from repro.experiments.figures import (
    DIMENSION_LABELS,
    FigureSeries,
    centralized_figures,
    distributed_figures,
    render_figure,
)
from repro.experiments.measurements import CentralizedPoint, DistributedPoint

__all__ = [
    "CentralizedExperiment",
    "CentralizedPoint",
    "DIMENSION_LABELS",
    "DistributedExperiment",
    "DistributedPoint",
    "ExperimentConfig",
    "ExperimentContext",
    "FigureSeries",
    "SCALES",
    "centralized_figures",
    "config_for_scale",
    "distributed_figures",
    "render_figure",
]
