"""Experiment sizing and scale presets.

The paper runs 200,000 subscriptions and 100,000 events on a five-machine
testbed.  A pure-Python in-process reproduction cannot grind that per
measurement point in reasonable benchmark time, so the default scale is
reduced; the reported curves are ratios and proportions whose shapes are
scale-stable (see DESIGN.md §4).  The ``paper`` preset restores the
original magnitudes for long offline runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.heuristics import Dimension
from repro.errors import ExperimentError
from repro.workloads.auction import AuctionWorkloadConfig


@dataclass
class ExperimentConfig:
    """Everything that determines one experiment run."""

    seed: int = 42
    subscription_count: int = 1500
    event_count: int = 400
    grid_points: int = 11
    broker_count: int = 5
    #: Broker graph shape for the distributed setting: ``"line"`` (the
    #: paper's five-brokers-in-a-line), ``"star"``, or ``"tree"``.
    topology: str = "line"
    clients_per_broker: int = 4
    dimensions: Tuple[Dimension, ...] = (
        Dimension.NETWORK,
        Dimension.THROUGHPUT,
        Dimension.MEMORY,
    )
    bandwidth_bps: float = 10e6
    per_message_overhead_s: float = 100e-6
    workload: Optional[AuctionWorkloadConfig] = None

    def __post_init__(self) -> None:
        if self.subscription_count < 1:
            raise ExperimentError("subscription_count must be positive")
        if self.event_count < 1:
            raise ExperimentError("event_count must be positive")
        if self.grid_points < 2:
            raise ExperimentError("grid_points must be at least 2")
        if self.broker_count < 1:
            raise ExperimentError("broker_count must be positive")
        if self.topology not in ("line", "star", "tree"):
            raise ExperimentError("topology must be 'line', 'star', or 'tree'")
        if self.clients_per_broker < 1:
            raise ExperimentError("clients_per_broker must be positive")
        if not self.dimensions:
            raise ExperimentError("at least one dimension is required")
        if self.workload is None:
            self.workload = AuctionWorkloadConfig(seed=self.seed)

    @property
    def proportions(self) -> Tuple[float, ...]:
        """The x-axis grid: ``grid_points`` proportions spanning [0, 1]."""
        step = 1.0 / (self.grid_points - 1)
        return tuple(round(index * step, 6) for index in range(self.grid_points))


#: Scale presets: (subscriptions, events, grid points).
SCALES: Dict[str, Tuple[int, int, int]] = {
    "tiny": (250, 80, 5),
    "small": (800, 250, 9),
    "default": (1500, 400, 11),
    "large": (5000, 1200, 11),
    "paper": (200000, 100000, 21),
}


def config_for_scale(scale: str, seed: int = 42) -> ExperimentConfig:
    """An :class:`ExperimentConfig` for a named scale preset."""
    try:
        subscriptions, events, points = SCALES[scale]
    except KeyError:
        raise ExperimentError(
            "unknown scale %r (choose from %s)" % (scale, ", ".join(sorted(SCALES)))
        )
    return ExperimentConfig(
        seed=seed,
        subscription_count=subscriptions,
        event_count=events,
        grid_points=points,
    )
