"""Command-line entry point for the experiment harness.

Examples
--------
Regenerate one figure at the default scale::

    python -m repro.experiments.run --figure 1a

All six figures at a small scale, with CSV output::

    python -m repro.experiments.run --figure all --scale small --out results/

The ``paper`` scale restores the original 200k subscriptions / 100k events
(expect a very long run).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.experiments.centralized import CentralizedExperiment
from repro.experiments.config import SCALES, config_for_scale
from repro.experiments.context import ExperimentContext
from repro.experiments.distributed import DistributedExperiment
from repro.experiments.figures import (
    ALL_FIGURE_IDS,
    CENTRALIZED_FIGURE_IDS,
    DISTRIBUTED_FIGURE_IDS,
    FigureSeries,
    centralized_figures,
    distributed_figures,
    render_figure,
)
from repro.experiments.report import summarize, write_figures


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the figures of Bittner & Hinze (ICDCSW 2006).",
    )
    parser.add_argument(
        "--figure",
        default="all",
        choices=list(ALL_FIGURE_IDS) + ["all", "centralized", "distributed"],
        help="which figure(s) to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=sorted(SCALES),
        help="workload scale preset (default: default)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master seed")
    parser.add_argument(
        "--points", type=int, default=None, help="override number of grid points"
    )
    parser.add_argument(
        "--subscriptions", type=int, default=None, help="override subscription count"
    )
    parser.add_argument(
        "--events", type=int, default=None, help="override event count"
    )
    parser.add_argument(
        "--topology",
        default=None,
        choices=["line", "star", "tree"],
        help="broker graph for the distributed figures (default: line)",
    )
    parser.add_argument(
        "--out", default=None, help="directory for CSV output (optional)"
    )
    parser.add_argument(
        "--no-plot", action="store_true", help="suppress ASCII plots"
    )
    return parser


def select_figures(name: str) -> List[str]:
    """Expand a --figure argument into concrete figure ids."""
    if name == "all":
        return list(ALL_FIGURE_IDS)
    if name == "centralized":
        return list(CENTRALIZED_FIGURE_IDS)
    if name == "distributed":
        return list(DISTRIBUTED_FIGURE_IDS)
    return [name]


def run_figures(
    figure_ids: List[str],
    scale: str,
    seed: int,
    points: Optional[int] = None,
    subscriptions: Optional[int] = None,
    events: Optional[int] = None,
    topology: Optional[str] = None,
) -> Dict[str, FigureSeries]:
    """Run the experiments needed for ``figure_ids`` and build the figures."""
    config = config_for_scale(scale, seed=seed)
    if points is not None:
        config.grid_points = points
    if subscriptions is not None:
        config.subscription_count = subscriptions
    if events is not None:
        config.event_count = events
    if topology is not None:
        config.topology = topology
    context = ExperimentContext(config)
    figures: Dict[str, FigureSeries] = {}
    if any(figure_id in CENTRALIZED_FIGURE_IDS for figure_id in figure_ids):
        results = CentralizedExperiment(context).run_all()
        figures.update(centralized_figures(results))
    if any(figure_id in DISTRIBUTED_FIGURE_IDS for figure_id in figure_ids):
        results = DistributedExperiment(context).run_all()
        figures.update(distributed_figures(results))
    return {fid: figures[fid] for fid in figure_ids if fid in figures}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI main; returns a process exit code."""
    args = build_parser().parse_args(argv)
    figure_ids = select_figures(args.figure)
    figures = run_figures(
        figure_ids,
        scale=args.scale,
        seed=args.seed,
        points=args.points,
        subscriptions=args.subscriptions,
        events=args.events,
        topology=args.topology,
    )
    for _figure_id, figure in sorted(figures.items()):
        print(render_figure(figure, plot=not args.no_plot))
        print()
    print(summarize(figures))
    if args.out:
        paths = write_figures(figures, args.out)
        for figure_id, path in sorted(paths.items()):
            print("wrote %s" % path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
