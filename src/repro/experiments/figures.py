"""Figure definitions: turning measurement points into the paper's plots.

Each of the paper's six sub-figures becomes a :class:`FigureSeries`: a
shared x grid (proportional number of prunings) and one y-series per
heuristic, labelled with the paper's subscripts (``sel`` for
network-based, ``eff`` for throughput-based, ``mem`` for memory-based).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.heuristics import Dimension
from repro.errors import ExperimentError
from repro.experiments.measurements import CentralizedPoint, DistributedPoint
from repro.util.tables import ascii_plot, format_table

#: The paper's curve labels per heuristic.
DIMENSION_LABELS: Dict[Dimension, str] = {
    Dimension.NETWORK: "sel",
    Dimension.THROUGHPUT: "eff",
    Dimension.MEMORY: "mem",
}


@dataclass
class FigureSeries:
    """One reproduced figure: x grid plus one y-series per heuristic."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    xs: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)

    def rows(self) -> List[List[float]]:
        """Table rows: one per x value, columns per series."""
        rows = []
        for index, x in enumerate(self.xs):
            row: List[float] = [x]
            for label in self.series:
                row.append(self.series[label][index])
            rows.append(row)
        return rows

    def headers(self) -> List[str]:
        """Column headers matching :meth:`rows`."""
        return [self.x_label] + ["%s_%s" % (self.y_label, k) for k in self.series]


_FIGURES_CENTRAL = {
    "1a": ("Time efficiency (centralized)", "filtering time per event (s)",
           lambda p: p.seconds_per_event),
    "1b": ("Expected network load (centralized)", "proport. no. of matching events",
           lambda p: p.matching_fraction),
    "1c": ("Memory usage (centralized)", "prop. reduction in pred/sub assoc.",
           lambda p: p.association_reduction),
}

_FIGURES_DISTRIBUTED = {
    "1d": ("Time efficiency (distributed)", "filtering time per event (s)",
           lambda p: p.seconds_per_event),
    "1e": ("Actual network load (distributed)", "proport. increase in network load",
           lambda p: p.network_increase),
    "1f": ("Memory usage (distributed)", "prop. reduction in pred/sub assoc.",
           lambda p: p.association_reduction),
}

CENTRALIZED_FIGURE_IDS = tuple(sorted(_FIGURES_CENTRAL))
DISTRIBUTED_FIGURE_IDS = tuple(sorted(_FIGURES_DISTRIBUTED))
ALL_FIGURE_IDS = CENTRALIZED_FIGURE_IDS + DISTRIBUTED_FIGURE_IDS


def _build(
    figure_id: str,
    spec: Dict,
    results: Dict[Dimension, Sequence],
) -> FigureSeries:
    title, y_label, extract = spec[figure_id]
    xs: Optional[List[float]] = None
    figure = FigureSeries(
        figure_id=figure_id,
        title="Fig. %s: %s" % (figure_id, title),
        x_label="proportion_of_prunings",
        y_label=y_label,
        xs=[],
    )
    for dimension, points in results.items():
        label = DIMENSION_LABELS[dimension]
        figure.series[label] = [extract(point) for point in points]
        point_xs = [point.proportion for point in points]
        if xs is None:
            xs = point_xs
        elif xs != point_xs:
            raise ExperimentError("dimension sweeps use different x grids")
    figure.xs = xs or []
    return figure


def centralized_figures(
    results: Dict[Dimension, List[CentralizedPoint]]
) -> Dict[str, FigureSeries]:
    """Figures 1a–1c from centralized sweep results."""
    return {
        figure_id: _build(figure_id, _FIGURES_CENTRAL, results)
        for figure_id in CENTRALIZED_FIGURE_IDS
    }


def distributed_figures(
    results: Dict[Dimension, List[DistributedPoint]]
) -> Dict[str, FigureSeries]:
    """Figures 1d–1f from distributed sweep results."""
    return {
        figure_id: _build(figure_id, _FIGURES_DISTRIBUTED, results)
        for figure_id in DISTRIBUTED_FIGURE_IDS
    }


def render_figure(figure: FigureSeries, plot: bool = True) -> str:
    """A text rendering: data table plus (optionally) an ASCII plot."""
    parts = [figure.title, ""]
    parts.append(format_table(figure.headers(), figure.rows()))
    if plot and figure.xs:
        parts.append("")
        parts.append(
            ascii_plot(
                figure.series,
                figure.xs,
                title=figure.title,
                y_label="",
            )
        )
    return "\n".join(parts)


def crossover_proportion(
    xs: Sequence[float], first: Sequence[float], second: Sequence[float]
) -> Optional[float]:
    """The first x past which ``second`` drops below ``first``.

    Used to locate the paper's "throughput-based pruning is fastest up to
    ~43% of prunings, then network-based wins" style of observation.
    Returns ``None`` when no crossover happens.
    """
    was_lower = None
    for x, a, b in zip(xs, first, second):
        lower_now = b < a
        if was_lower is False and lower_now:
            return x
        was_lower = lower_now
    return None


def sharp_bend(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    """The x of the strongest increase in slope (discrete second difference).

    Locates the "sharp bend" the paper reads off its network-load curves.
    """
    if len(xs) < 3:
        return None
    best_x = None
    best_curvature = 0.0
    for index in range(1, len(xs) - 1):
        left = (ys[index] - ys[index - 1]) / max(1e-12, xs[index] - xs[index - 1])
        right = (ys[index + 1] - ys[index]) / max(1e-12, xs[index + 1] - xs[index])
        curvature = right - left
        if curvature > best_curvature:
            best_curvature = curvature
            best_x = xs[index]
    return best_x
