"""Measurement points and shared measurement helpers."""

from __future__ import annotations

from typing import Iterable, NamedTuple, Optional, Tuple, Union

from repro.events import EventBatch
from repro.matching.counting import CountingMatcher
from repro.matching.sharded import ExecutorSpec, ShardedMatcher
from repro.subscriptions.subscription import Subscription


class CentralizedPoint(NamedTuple):
    """One measurement of the single-broker setting (Fig. 1(a)–(c))."""

    proportion: float            #: x: fraction of performed prunings
    prunings: int                #: absolute number of performed prunings
    seconds_per_event: float     #: Fig. 1(a): mean filtering time per event
    matching_fraction: float     #: Fig. 1(b): matches / (events × subscriptions)
    association_reduction: float  #: Fig. 1(c): 1 − associations / initial
    candidates_per_event: float  #: diagnostics: pmin threshold crossings
    evaluations_per_event: float  #: diagnostics: full tree evaluations


class DistributedPoint(NamedTuple):
    """One measurement of the five-broker line setting (Fig. 1(d)–(f))."""

    proportion: float             #: x: fraction of performed prunings
    prunings: int                 #: absolute number of performed prunings
    seconds_per_event: float      #: Fig. 1(d): filtering + modelled transmission
    filter_seconds_per_event: float  #: measured filtering share
    network_increase: float       #: Fig. 1(e): routed events vs un-optimized − 1
    messages_per_event: float     #: broker-to-broker event messages per event
    association_reduction: float  #: Fig. 1(f): non-local associations vs initial
    deliveries: int               #: client notifications (must stay constant)


def measure_matching(
    subscriptions: Iterable[Subscription],
    events: EventBatch,
    *,
    shards: Optional[int] = None,
    executor: ExecutorSpec = "threads",
) -> Tuple[float, float, Union[CountingMatcher, ShardedMatcher]]:
    """Match all events against a fresh engine; return timing and fraction.

    Returns ``(seconds_per_event, matching_fraction, matcher)``.
    Registration builds the indexes incrementally *before* timing starts,
    so Fig. 1(a) measures pure filtering, as in the paper; the timed pass
    runs through the vectorized batch path — the production hot path.
    ``shards=K`` measures a :class:`ShardedMatcher` over K slot shards
    instead of the single-pipeline engine (identical results; the timing
    then includes the fan-out/merge overhead and any parallel speedup);
    ``executor`` selects the fan-out — ``"serial"``, ``"threads"``, or
    ``"processes"`` for worker processes fed shared-memory batches.
    Callers measuring with ``"processes"`` should ``close()`` the
    returned matcher (or use it as a context manager) to stop the pool.
    """
    matcher: Union[CountingMatcher, ShardedMatcher] = (
        CountingMatcher()
        if shards is None
        else ShardedMatcher(shards, executor=executor)
    )
    count = 0
    for subscription in subscriptions:
        matcher.register(subscription)
        count += 1
    # Warm caches (lazy bucket arrays, numpy scratch) and columnarize the
    # batch so timing reflects steady state: columns are built once per
    # batch and shared by every matcher the batch meets.
    matcher.match_batch(events.events[: min(16, len(events))])
    events.columns()
    matcher.statistics.reset()
    matcher.match_batch(events)
    stats = matcher.statistics
    matching_fraction = 0.0
    if stats.events and count:
        matching_fraction = stats.matches / (stats.events * count)
    return stats.mean_time_per_event, matching_fraction, matcher


def association_reduction(current: int, initial: int) -> float:
    """Proportional reduction of predicate/subscription associations."""
    if initial <= 0:
        return 0.0
    return 1.0 - current / initial
