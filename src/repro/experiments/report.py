"""CSV and markdown reporting for reproduced figures."""

from __future__ import annotations

import os
from typing import Dict, Sequence

from repro.experiments.figures import (
    FigureSeries,
    crossover_proportion,
    sharp_bend,
)

#: What the paper reports, per figure, for the shape comparison.
PAPER_EXPECTATIONS: Dict[str, str] = {
    "1a": (
        "throughput-based (eff) pruning filters fastest up to ~43% of "
        "prunings, then network-based (sel) wins; memory-based (mem) is "
        "slowest throughout"
    ),
    "1b": (
        "matching events grow slowly for sel (bend ~75%), earlier for eff "
        "(bend ~50%), and almost immediately for mem (bend ~5%)"
    ),
    "1c": (
        "mem reduces associations most, by at most ~10 percentage points "
        "over sel/eff; all heuristics converge past ~70% of prunings"
    ),
    "1d": (
        "sel achieves the best distributed filtering time (paper: 4.2 ms "
        "vs 6.5 ms for eff — 35% faster; 53% better than un-optimized); "
        "mem shows no improvement"
    ),
    "1e": (
        "network load grows slowest for sel (bend ~75%, +37%), earlier "
        "for eff (bend ~50%, +26%), immediately for mem (bend ~5%)"
    ),
    "1f": (
        "same ordering as 1c, restricted to non-local entries"
    ),
}


def figure_to_csv(figure: FigureSeries) -> str:
    """Render a figure as CSV text."""
    lines = [",".join(figure.headers())]
    for row in figure.rows():
        lines.append(",".join("%.9g" % value for value in row))
    return "\n".join(lines) + "\n"


def write_figures(figures: Dict[str, FigureSeries], out_dir: str) -> Dict[str, str]:
    """Write one CSV per figure into ``out_dir``; returns id → path."""
    os.makedirs(out_dir, exist_ok=True)
    paths = {}
    for figure_id, figure in sorted(figures.items()):
        path = os.path.join(out_dir, "fig%s.csv" % figure_id)
        with open(path, "w") as handle:
            handle.write(figure_to_csv(figure))
        paths[figure_id] = path
    return paths


def _final(series: Sequence[float]) -> float:
    return series[-1] if series else 0.0


def summarize_figure(figure: FigureSeries) -> str:
    """A shape summary of one figure against the paper's observations."""
    lines = ["%s" % figure.title]
    expectation = PAPER_EXPECTATIONS.get(figure.figure_id)
    if expectation:
        lines.append("  paper: %s" % expectation)
    xs = figure.xs
    for label, values in figure.series.items():
        start = values[0] if values else 0.0
        low = min(values) if values else 0.0
        low_x = xs[values.index(low)] if values else 0.0
        summary = (
            "  measured %-3s start=%.6g min=%.6g (at x=%.2f) end=%.6g"
            % (label, start, low, low_x, _final(values))
        )
        lines.append(summary)
    if figure.figure_id in ("1a", "1d") and {"sel", "eff"} <= set(figure.series):
        cross = crossover_proportion(xs, figure.series["eff"], figure.series["sel"])
        if cross is not None:
            lines.append(
                "  crossover: sel becomes faster than eff at x=%.2f" % cross
            )
    if figure.figure_id in ("1b", "1e"):
        for label, values in figure.series.items():
            bend = sharp_bend(xs, values)
            if bend is not None:
                lines.append("  sharp bend of %s at x=%.2f" % (label, bend))
    return "\n".join(lines)


def summarize(figures: Dict[str, FigureSeries]) -> str:
    """Shape summaries for a set of figures."""
    return "\n\n".join(
        summarize_figure(figure) for _id, figure in sorted(figures.items())
    )


def figures_to_markdown(
    figures: Dict[str, FigureSeries], heading_level: int = 2
) -> str:
    """Markdown rendering (tables) of a set of figures, for EXPERIMENTS.md."""
    prefix = "#" * heading_level
    blocks = []
    for figure_id, figure in sorted(figures.items()):
        lines = ["%s %s" % (prefix, figure.title), ""]
        headers = figure.headers()
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join(["---"] * len(headers)) + "|")
        for row in figure.rows():
            lines.append("| " + " | ".join("%.6g" % value for value in row) + " |")
        expectation = PAPER_EXPECTATIONS.get(figure_id)
        if expectation:
            lines.append("")
            lines.append("*Paper:* %s" % expectation)
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
