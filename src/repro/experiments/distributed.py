"""The distributed (five brokers in a line) experiment: Fig. 1(d)–(f).

Subscriptions are registered round-robin across brokers through the
service layer (each broker hosts ``clients_per_broker`` local client
sessions with counting delivery sinks; subscription ids are assigned by
the network, not taken from the workload); subscription forwarding gives
every broker a routing entry for every subscription.  Pruning applies
only to the *non-local* entries of each broker, per the paper.  Events
are published round-robin across all brokers.

Per grid point we measure

* routing cost per published event: measured filtering time across all
  brokers plus modelled transmission cost of every broker-to-broker event
  message (Fig. 1(d)) — this is where additionally routed events hurt,
* the proportional increase in routed event messages over the
  un-optimized baseline (Fig. 1(e)),
* the proportional reduction in non-local predicate/subscription
  associations (Fig. 1(f)),

and assert the delivery invariant: every client receives exactly the
events matching its original subscription, at every pruning level.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.heuristics import Dimension
from repro.errors import ExperimentError
from repro.experiments.context import ExperimentContext
from repro.experiments.measurements import DistributedPoint, association_reduction
from repro.routing.metrics import CostModel
from repro.routing.network import BrokerNetwork
from repro.routing.topology import (
    Topology,
    line_topology,
    star_topology,
    tree_topology,
)
from repro.service import CountingSink, PubSubService, Session


def _build_topology(kind: str, broker_count: int) -> Topology:
    """A broker graph of ``broker_count`` nodes in the requested shape."""
    if kind == "line":
        return line_topology(broker_count)
    if kind == "star":
        if broker_count < 2:
            return line_topology(broker_count)
        return star_topology(broker_count - 1)
    # "tree": binary tree with as many full levels as broker_count allows;
    # falls back to a line for very small networks.
    height = 1
    while 2 ** (height + 2) - 1 <= broker_count:
        height += 1
    if 2 ** (height + 1) - 1 > broker_count:
        return line_topology(broker_count)
    return tree_topology(branching=2, height=height)


class DistributedExperiment:
    """Runs the five-broker line sweep for one or all dimensions."""

    def __init__(self, context: ExperimentContext) -> None:
        self.context = context
        config = context.config
        self.network = BrokerNetwork(
            _build_topology(config.topology, config.broker_count),
            cost_model=CostModel(
                bandwidth_bps=config.bandwidth_bps,
                per_message_overhead_s=config.per_message_overhead_s,
            ),
        )
        self.service = PubSubService(self.network)
        self.broker_ids = self.network.topology.broker_ids
        self._sinks: Dict[Tuple[str, str], CountingSink] = {}
        #: network-assigned subscription id -> workload subscription id
        #: (pruning schedules are keyed by the latter).
        self._workload_id_for: Dict[int, int] = {}
        self._register_subscriptions()
        self._non_local: Dict[str, List[int]] = {
            broker_id: [
                entry.subscription_id
                for entry in self.network.brokers[broker_id].non_local_entries()
            ]
            for broker_id in self.broker_ids
        }
        self._initial_non_local_associations = (
            self.network.non_local_association_count
        )
        self._baseline_messages: Optional[int] = None
        self._baseline_deliveries: Optional[int] = None

    def _register_subscriptions(self) -> None:
        config = self.context.config
        sessions: Dict[Tuple[str, str], Session] = {}
        for index, subscription in enumerate(self.context.subscriptions):
            broker_id = self.broker_ids[index % len(self.broker_ids)]
            client = "%s-client-%d" % (
                broker_id,
                index % config.clients_per_broker,
            )
            key = (broker_id, client)
            session = sessions.get(key)
            if session is None:
                sink = CountingSink()
                session = self.service.connect(broker_id, client, sink=sink)
                sessions[key] = session
                self._sinks[key] = sink
            handle = session.subscribe(subscription.tree)
            self._workload_id_for[handle.id] = subscription.id

    # -- sweep ---------------------------------------------------------------

    def run(self, dimension: Dimension) -> List[DistributedPoint]:
        """Sweep one dimension over the configured proportion grid."""
        context = self.context
        network = self.network
        schedule = context.schedule(dimension)
        counts = context.grid_counts(dimension)
        proportions = context.config.proportions
        events = context.events

        network.restore_all_entries()
        points: List[DistributedPoint] = []
        for index, (count, pruned) in enumerate(schedule.sweep(counts)):
            per_broker = {
                broker_id: {
                    sub_id: pruned[self._workload_id_for[sub_id]].tree
                    for sub_id in self._non_local[broker_id]
                }
                for broker_id in self.broker_ids
            }
            # Pruned trees flow through the matcher's incremental replace
            # path — no engine rebuild between grid points.
            network.apply_pruned_tables(per_broker)
            # Warm up so the timed pass reflects steady-state filtering.
            network.publish_round_robin(
                self.broker_ids, events.events[: min(16, len(events))]
            )
            network.reset_statistics()
            sink_deliveries_before = self._sink_deliveries()
            # The timed pass publishes whole batches per origin broker, so
            # brokers filter and forward through the vectorized batch
            # path; passing the EventBatch shares one columnar view of
            # the events across all brokers and grid points.  Deliveries
            # additionally fan out to the client sessions' counting
            # sinks via the service's delivery hook.
            network.publish_round_robin(self.broker_ids, events)
            report = network.report()
            sink_deliveries = self._sink_deliveries() - sink_deliveries_before

            if report.deliveries != sink_deliveries:
                raise ExperimentError(
                    "sink deliveries diverge from link accounting: %d != %d"
                    % (sink_deliveries, report.deliveries)
                )
            if self._baseline_messages is None:
                if proportions[index] != 0.0:
                    raise ExperimentError("first grid point must be proportion 0")
                self._baseline_messages = report.event_messages
                self._baseline_deliveries = report.deliveries
            if report.deliveries != self._baseline_deliveries:
                raise ExperimentError(
                    "delivery invariant violated: %d != %d"
                    % (report.deliveries, self._baseline_deliveries)
                )
            baseline = max(1, self._baseline_messages)
            points.append(
                DistributedPoint(
                    proportion=proportions[index],
                    prunings=count,
                    seconds_per_event=report.seconds_per_event,
                    filter_seconds_per_event=(
                        report.filter_seconds / report.events_published
                        if report.events_published
                        else 0.0
                    ),
                    network_increase=report.event_messages / baseline - 1.0,
                    messages_per_event=report.messages_per_event,
                    association_reduction=association_reduction(
                        network.non_local_association_count,
                        self._initial_non_local_associations,
                    ),
                    deliveries=report.deliveries,
                )
            )
        return points

    def _sink_deliveries(self) -> int:
        """Total notifications seen by the client sessions' sinks."""
        return sum(sink.total for sink in self._sinks.values())

    def run_all(self) -> Dict[Dimension, List[DistributedPoint]]:
        """Sweep every configured dimension (baseline shared across them)."""
        return {
            dimension: self.run(dimension)
            for dimension in self.context.config.dimensions
        }
