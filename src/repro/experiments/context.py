"""Shared experiment state: workload, subscriptions, events, schedules.

Building a pruning schedule (a full run of one heuristic to exhaustion) is
the expensive part of an experiment, and both settings (centralized and
distributed) need the *same* schedules: pruning decisions are per
subscription and independent of where the subscription's routing entry
lives.  The context builds each schedule once and caches it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.heuristics import Dimension
from repro.core.planner import PruningSchedule
from repro.events import EventBatch
from repro.experiments.config import ExperimentConfig
from repro.selectivity.estimator import SelectivityEstimator
from repro.subscriptions.subscription import Subscription
from repro.workloads.auction import AuctionWorkload


class ExperimentContext:
    """Lazily built, cached inputs of one experiment configuration."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.workload = AuctionWorkload(config.workload)
        self._subscriptions: List[Subscription] = []
        self._events: EventBatch = EventBatch([])
        self._estimator: SelectivityEstimator = self.workload.estimator()
        self._schedules: Dict[Dimension, PruningSchedule] = {}
        self._built = False

    def _build(self) -> None:
        if self._built:
            return
        self._subscriptions = self.workload.generate_subscriptions(
            self.config.subscription_count
        )
        self._events = self.workload.generate_events(self.config.event_count)
        self._built = True

    @property
    def subscriptions(self) -> List[Subscription]:
        """The registered subscriptions (ids ``0 .. count-1``)."""
        self._build()
        return self._subscriptions

    @property
    def events(self) -> EventBatch:
        """The published event batch."""
        self._build()
        return self._events

    @property
    def estimator(self) -> SelectivityEstimator:
        """Selectivity estimator over the workload's analytic statistics."""
        return self._estimator

    def schedule(self, dimension: Dimension) -> PruningSchedule:
        """The full pruning schedule of one dimension (cached)."""
        schedule = self._schedules.get(dimension)
        if schedule is None:
            schedule = PruningSchedule.build(
                self.subscriptions, self.estimator, dimension
            )
            self._schedules[dimension] = schedule
        return schedule

    def grid_counts(self, dimension: Dimension) -> List[int]:
        """Pruning counts corresponding to the config's proportion grid."""
        schedule = self.schedule(dimension)
        return [
            schedule.prefix_count(proportion)
            for proportion in self.config.proportions
        ]

    @property
    def initial_association_count(self) -> int:
        """Predicate/subscription associations before any pruning."""
        return sum(
            subscription.leaf_count for subscription in self.subscriptions
        )
