"""Naive filtering engine: evaluate every subscription tree per event.

This engine is deliberately simple — it is the correctness oracle for the
counting engine and the "no indexing" baseline in the micro-benchmarks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.events import Event
from repro.matching.interfaces import Matcher
from repro.subscriptions.subscription import Subscription


class NaiveMatcher(Matcher):
    """O(subscriptions × tree size) matcher with no index structures.

    ``match_batch`` is inherited from :class:`Matcher` — the loop-based
    default is exactly the batch oracle this engine exists to provide.
    """

    def __init__(self) -> None:
        self._subscriptions: Dict[int, Subscription] = {}

    def register(self, subscription: Subscription) -> None:
        self._require_unknown(subscription.id)
        self._subscriptions[subscription.id] = subscription

    def unregister(self, subscription_id: int) -> None:
        self._require_known(subscription_id)
        del self._subscriptions[subscription_id]

    def match(self, event: Event) -> List[int]:
        return [
            sub_id
            for sub_id, subscription in self._subscriptions.items()
            if subscription.tree.evaluate(event)
        ]

    def subscriptions(self) -> Dict[int, Subscription]:
        return self._subscriptions
