"""Shared-memory transport for columnar event batches.

The process-shard executor (:mod:`repro.matching.process_pool`) must
hand each worker the batch being matched.  Pickling the event objects —
or even the numpy columns — would copy the batch once per shard, on
both sides of the pipe.  This module ships a batch **once** instead:
all fixed-width arrays of an :class:`~repro.events.EventColumns` view
(presence rows, numeric/bool row and value arrays) are flattened into a
single :class:`multiprocessing.shared_memory.SharedMemory` segment, and
a small picklable :class:`PackedColumns` header records each array's
``(offset, length)``.  Workers attach the segment by name and rebuild
the columns as **zero-copy numpy views** over the shared buffer;
string/object columns — which cannot live in a flat buffer — ride the
header as pickled sidecars (tuples of ``str``).

Tiny batches skip the segment entirely (``segment_name is None``) and
inline the arrays in the header: below :data:`INLINE_MAX_BYTES` the
pickle cost is smaller than two shared-memory syscalls, and empty
batches cannot allocate a zero-byte segment at all.

Lifecycle and leak-freedom:

* the **creating** side owns the segment: :func:`pack_columns` registers
  it in a module-level registry and :func:`release_columns` closes and
  unlinks it.  An ``atexit`` hook unlinks everything still registered,
  so an aborted benchmark or a killed test run never leaves segments
  behind in ``/dev/shm`` (satellite-tested in ``tests/test_shm.py``);
* the **attaching** side (:func:`unpack_columns` in a worker) receives
  the :class:`~multiprocessing.shared_memory.SharedMemory` handle back
  and must ``close()`` it once the views are dropped; attachment is
  excluded from the ``multiprocessing`` resource tracker (the creator
  unlinks, a tracker double-unlink would race it).

>>> from repro.events import Event, EventBatch
>>> batch = EventBatch([Event({"price": 5}), Event({"tag": "x"})])
>>> packed = pack_columns(batch.columns())
>>> columns, segment = unpack_columns(packed)
>>> columns.column("price").numeric_values.tolist()
[5.0]
>>> columns.column("tag").string_values.tolist()
['x']
>>> release_columns(packed)
"""

from __future__ import annotations

import atexit
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.events import AttributeColumn, EventColumns

#: Batches whose fixed-width payload is at most this many bytes are
#: inlined in the header (pickled) instead of copied into a segment —
#: two shm syscalls cost more than pickling a few hundred bytes.
INLINE_MAX_BYTES = 2048

#: Offsets are rounded up to this alignment so every view is naturally
#: aligned for its dtype (the widest is 8 bytes).
_ALIGN = 8

#: dtypes of the six fixed-width arrays of an :class:`AttributeColumn`,
#: in header-tuple order (string *values* travel as a pickled sidecar).
_FIELD_DTYPES = (
    np.dtype(np.int64),    # rows
    np.dtype(np.int64),    # numeric_rows
    np.dtype(np.float64),  # numeric_values
    np.dtype(np.int64),    # string_rows
    np.dtype(np.int64),    # bool_rows
    np.dtype(bool),        # bool_values
)

#: Segments created by this process that are still live, by name.  The
#: atexit hook below unlinks whatever a crashed run left here.
_LIVE_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}


class PackedColumns:
    """The picklable header of one packed columnar batch.

    ``segment_name`` names the shared segment holding the fixed-width
    arrays, or is ``None`` when the batch was inlined.  ``columns`` maps
    attribute name → a 7-tuple: six array fields (each an ``(offset,
    length)`` ref into the segment, or the array itself when inlined)
    in :data:`_FIELD_DTYPES` order with the string-value sidecar (a
    tuple of ``str``) spliced in after ``string_rows``.
    """

    __slots__ = ("segment_name", "row_count", "columns", "nbytes")

    def __init__(
        self,
        segment_name: Optional[str],
        row_count: int,
        columns: Dict[str, Tuple],
        nbytes: int,
    ) -> None:
        self.segment_name = segment_name
        self.row_count = row_count
        self.columns = columns
        self.nbytes = nbytes

    @property
    def inline(self) -> bool:
        """Whether the arrays ride the header instead of a segment."""
        return self.segment_name is None

    def __getstate__(self):
        return (self.segment_name, self.row_count, self.columns, self.nbytes)

    def __setstate__(self, state) -> None:
        self.segment_name, self.row_count, self.columns, self.nbytes = state

    def __repr__(self) -> str:
        return "PackedColumns(%s, %d rows, %d attrs, %d bytes)" % (
            "inline" if self.inline else self.segment_name,
            self.row_count,
            len(self.columns),
            self.nbytes,
        )


def _column_arrays(column: AttributeColumn) -> Tuple[np.ndarray, ...]:
    """The six fixed-width arrays of ``column`` in header order."""
    return (
        column.rows,
        column.numeric_rows,
        column.numeric_values,
        column.string_rows,
        column.bool_rows,
        column.bool_values,
    )


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def pack_columns(
    columns: EventColumns, *, inline_max_bytes: int = INLINE_MAX_BYTES
) -> PackedColumns:
    """Pack ``columns`` for shipment to worker processes.

    One copy into the shared segment here is the only copy the batch
    ever pays: every worker rebuilds views over the same pages.  The
    caller owns the returned header's segment and must call
    :func:`release_columns` when all workers have answered.
    """
    total = 0
    for _name, column in columns.items():
        for array in _column_arrays(column):
            total += _aligned(array.nbytes)
    segment: Optional[shared_memory.SharedMemory] = None
    if total > inline_max_bytes:
        segment = shared_memory.SharedMemory(create=True, size=total)
        _LIVE_SEGMENTS[segment.name] = segment
    specs: Dict[str, Tuple] = {}
    offset = 0
    for name, column in columns.items():
        fields = []
        for array in _column_arrays(column):
            if segment is None:
                fields.append(np.ascontiguousarray(array))
            else:
                view = np.frombuffer(
                    segment.buf,
                    dtype=array.dtype,
                    count=len(array),
                    offset=offset,
                )
                view[:] = array
                fields.append((offset, len(array)))
                offset += _aligned(array.nbytes)
        strings = tuple(column.string_values.tolist())
        specs[name] = (
            fields[0], fields[1], fields[2], fields[3], strings,
            fields[4], fields[5],
        )
    return PackedColumns(
        segment.name if segment is not None else None,
        columns.row_count,
        specs,
        total,
    )


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without resource-tracker ownership.

    The creating process unlinks the segment; if the attaching side's
    resource tracker also registered it, the tracker would try a second
    unlink at interpreter exit and warn about a "leak" that never
    happened.  Python 3.13 grew ``track=False`` for exactly this;
    earlier versions need the manual unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: suppress registration during construction.  An
        # unregister-after-attach would instead *steal* the creator's
        # registration (fork children share the parent's tracker
        # process) and make the creator's later unlink warn.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def unpack_columns(
    packed: PackedColumns,
) -> Tuple[EventColumns, Optional[shared_memory.SharedMemory]]:
    """Rebuild the :class:`EventColumns` view of a packed batch.

    For segment-backed headers the arrays are zero-copy read-only views
    over the shared pages and the attached segment is returned alongside
    the columns — the caller must drop every array reference and then
    ``close()`` it.  Inline headers return ``(columns, None)``.
    """
    segment = None if packed.inline else _attach(packed.segment_name)
    columns: Dict[str, AttributeColumn] = {}
    for name, spec in packed.columns.items():
        rows_s, nrows_s, nvals_s, srows_s, strings, brows_s, bvals_s = spec
        fields = []
        for field_spec, dtype in zip(
            (rows_s, nrows_s, nvals_s, srows_s, brows_s, bvals_s), _FIELD_DTYPES
        ):
            if segment is None:
                fields.append(field_spec)
            else:
                offset, length = field_spec
                view = np.frombuffer(
                    segment.buf, dtype=dtype, count=length, offset=offset
                )
                view.flags.writeable = False
                fields.append(view)
        string_values = (
            np.array(strings, dtype=object)
            if strings
            else np.empty(0, dtype=object)
        )
        columns[name] = AttributeColumn(
            name, fields[0], fields[1], fields[2], fields[3], string_values,
            fields[4], fields[5],
        )
    return EventColumns(packed.row_count, columns), segment


def release_columns(packed: PackedColumns) -> None:
    """Close and unlink the segment behind ``packed`` (idempotent).

    Only meaningful in the creating process; inline headers and already
    released segments are no-ops.
    """
    if packed.segment_name is None:
        return
    segment = _LIVE_SEGMENTS.pop(packed.segment_name, None)
    if segment is None:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - unlinked out of band
        pass


def live_segment_names() -> Tuple[str, ...]:
    """Names of segments this process created and has not released."""
    return tuple(_LIVE_SEGMENTS)


@atexit.register
def _release_leaked_segments() -> None:
    """Last-chance cleanup: unlink whatever a dying run left behind.

    Normal operation releases each segment right after its batch is
    merged; this hook only fires for runs that error or get killed
    between pack and release, keeping ``/dev/shm`` clean regardless.
    """
    for name in list(_LIVE_SEGMENTS):
        try:
            release_columns(PackedColumns(name, 0, {}, 0))
        except Exception:  # pragma: no cover - best effort at exit
            pass
