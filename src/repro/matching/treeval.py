"""Columnar compiled-tree evaluation: the shared flat tree program.

The counting engine decides most candidates with the fulfilled-predicate
counter alone; only *general* Boolean trees need evaluating against the
per-entry truth flags.  Per event that is cheap, but in the batch path it
used to be the last scalar hot spot: every surviving (event, candidate)
pair recursed through ``_evaluate_compiled`` in Python.

:class:`TreePrograms` removes that per-pair recursion.  All general trees
of a matcher are compiled into one **shared flat program**: each tree
owns a contiguous *node range* in a shared arena (positions are the rows
of the evaluation working matrix; the arena column stores each leaf's
entry id), plus a bottom-up *level order* computed once per tree at
register/replace time — per level, one AND and one OR segment-reduction
group ``(targets, seg_starts, children)`` in tree-local node ids, which
is the tree's child structure laid out level-major, ready to execute.
At match time the batch path groups surviving candidate rows by slot and
evaluates each tree **once against all of its rows simultaneously**:

1. leaf truth values are gathered from the chunk's 2-D
   ``flags[event, entry]`` matrix with one fancy-indexing read per tree
   (``node_count × rows`` working matrix);
2. internal nodes are computed level by level (children always live in
   strictly lower levels), each level as at most two segment reductions:
   ``np.logical_and.reduceat`` over the concatenated AND children and
   ``np.logical_or.reduceat`` over the concatenated OR children;
3. the root row is the per-row verdict for the whole group.

:meth:`TreePrograms.evaluate_dense` additionally concatenates every
tree's level groups into **arena-global** ones (derived lazily, dropped
on any mutation) so a whole table evaluates in a handful of numpy calls
— the batch path switches to it when surviving candidates are dense.

The program is **incrementally maintained** under subscription churn:
compiling a tree appends (or recycles) one contiguous node range;
withdrawing returns the range to a per-length free list.  All intra-tree
references are *tree-local*, so a recycled or re-packed range needs no
pointer rewriting.  When unregister churn leaves the arena dominated by
holes, the program lazily re-materializes itself into dense arrays (the
same policy :class:`~repro.matching.predicate_index.PredicateIndexSet`
buckets use).

Trees beyond :data:`MAX_TREE_DEPTH` levels or :data:`MAX_TREE_NODES`
nodes are refused (``compile`` returns ``False``) and the caller falls
back to the scalar recursive evaluator, which remains the correctness
oracle the vectorized path is property-tested against.

>>> import numpy as np
>>> programs = TreePrograms()
>>> # (a AND b) OR c over entry ids 0, 1, 2:
>>> tree = (OP_OR, ((OP_AND, ((OP_LEAF, 0), (OP_LEAF, 1))), (OP_LEAF, 2)))
>>> programs.compile(slot=4, program=tree)
True
>>> flags = np.array([[True, True, False], [False, True, False]])
>>> programs.evaluate(4, np.array([0, 1]), flags).tolist()
[True, False]
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MatchingError

#: Compiled evaluator opcodes (shared with the scalar recursive
#: evaluator in :mod:`repro.matching.counting`).
OP_LEAF = 0
OP_AND = 1
OP_OR = 2

#: Auto-fallback bounds: a tree deeper or larger than this is not
#: compiled into the shared program and keeps the scalar evaluator.
MAX_TREE_DEPTH = 64
MAX_TREE_NODES = 4096

#: Lazy re-materialization policy: compact the arena when free cells
#: exceed this fraction of the live cells *and* the absolute waste
#: clears the floor (small programs never thrash).
_COMPACT_FREE_FRACTION = 0.5
_COMPACT_MIN_FREE = 1024


class _DenseProgram:
    """Arena-global evaluation order over *all* compiled trees at once.

    Derived lazily from the live records (and dropped on any mutation,
    the same lazy re-materialization the predicate-index buckets use):
    per bottom-up level, one AND and one OR segment-reduction group
    whose targets/children are **arena positions** spanning every tree.
    Evaluating the whole program against a chunk is then a handful of
    numpy calls regardless of how many trees it holds.
    """

    __slots__ = ("leaf_positions", "leaf_entries", "levels", "root_positions")

    def __init__(
        self,
        leaf_positions: np.ndarray,
        leaf_entries: np.ndarray,
        levels: Tuple,
        root_positions: np.ndarray,
    ) -> None:
        self.leaf_positions = leaf_positions
        self.leaf_entries = leaf_entries
        self.levels = levels
        self.root_positions = root_positions


class _TreeRecord:
    """Placement and evaluation order of one compiled tree.

    ``base`` locates the tree's contiguous node range inside the shared
    arena; everything else is expressed in **tree-local** node ids so the
    record survives range relocation unchanged.
    """

    __slots__ = ("base", "node_count", "leaf_locals", "levels", "depth")

    def __init__(
        self,
        base: int,
        node_count: int,
        leaf_locals: np.ndarray,
        levels: Tuple,
        depth: int,
    ) -> None:
        self.base = base
        self.node_count = node_count
        self.leaf_locals = leaf_locals
        self.levels = levels
        self.depth = depth


def _flatten(program: Tuple) -> Tuple[List[int], List[int], List[List[int]]]:
    """Flatten nested opcode tuples into preorder parallel lists.

    Returns ``(ops, entries, children)`` where ``children[i]`` holds the
    local ids of node ``i``'s children (empty for leaves).  Preorder
    guarantees every descendant has a higher local id than its ancestor,
    which is what makes the reverse scan in :func:`_levels` bottom-up.
    """
    ops: List[int] = []
    entries: List[int] = []
    children: List[List[int]] = []
    stack: List[Tuple[Tuple, int]] = [(program, -1)]
    while stack:
        node, parent = stack.pop()
        opcode, operand = node
        local = len(ops)
        ops.append(opcode)
        children.append([])
        if parent >= 0:
            children[parent].append(local)
        if opcode == OP_LEAF:
            entries.append(operand)
        elif opcode in (OP_AND, OP_OR):
            entries.append(-1)
            for child in reversed(operand):
                stack.append((child, local))
        else:
            raise MatchingError("unknown compiled opcode %r" % (opcode,))
    return ops, entries, children


def _levels(ops: List[int], children: List[List[int]]) -> Tuple[List[int], int]:
    """Bottom-up level of every node (leaves are level 0)."""
    level = [0] * len(ops)
    for local in range(len(ops) - 1, -1, -1):
        kids = children[local]
        if kids:
            level[local] = 1 + max(level[kid] for kid in kids)
    return level, level[0] if ops else 0


def _level_groups(
    ops: List[int], children: List[List[int]], level: List[int], depth: int
) -> Tuple:
    """Per level, the two segment-reduction groups (AND and OR).

    Each group is ``(targets, seg_starts, child_locals)``: evaluating a
    level means gathering ``values[child_locals]`` and reducing the
    segments that start at ``seg_starts`` into ``values[targets]``.
    """
    groups: List[Tuple] = []
    for current in range(1, depth + 1):
        per_op: List[Tuple] = []
        for opcode in (OP_AND, OP_OR):
            targets = [
                local
                for local in range(len(ops))
                if level[local] == current and ops[local] == opcode
            ]
            starts: List[int] = []
            child_locals: List[int] = []
            for target in targets:
                starts.append(len(child_locals))
                child_locals.extend(children[target])
            per_op.append(
                (
                    np.array(targets, dtype=np.int64),
                    np.array(starts, dtype=np.int64),
                    np.array(child_locals, dtype=np.int64),
                )
            )
        groups.append((per_op[0], per_op[1]))
    return tuple(groups)


class TreePrograms:
    """The shared flat compiled-tree program of one counting engine.

    Keyed by the engine's *slot* ids: at most one tree per slot, with
    the same lifetime as the slot's subscription (``replace`` withdraws
    and re-compiles).  See the module docstring for representation and
    evaluation; see :meth:`compile` / :meth:`discard` for maintenance.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> None:
        self.max_depth = MAX_TREE_DEPTH if max_depth is None else max_depth
        self.max_nodes = MAX_TREE_NODES if max_nodes is None else max_nodes
        #: The node arena: each leaf position holds its predicate entry
        #: id (-1 at internal nodes); positions are the rows of the
        #: evaluation working matrices.
        self.node_entry = np.empty(0, dtype=np.int64)
        self._node_top = 0
        #: Exact-fit free list: range length -> list of range bases.
        self._free_nodes: Dict[int, List[int]] = {}
        self._free_node_total = 0
        self._records: Dict[int, _TreeRecord] = {}
        #: Arena-global evaluation order, rebuilt lazily after mutations.
        self._dense: Optional[_DenseProgram] = None

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def has(self, slot: int) -> bool:
        """True when ``slot`` holds a compiled (vectorizable) tree."""
        return slot in self._records

    @property
    def live_node_count(self) -> int:
        """Arena cells referenced by live trees."""
        return sum(record.node_count for record in self._records.values())

    @property
    def free_node_count(self) -> int:
        """Arena cells parked on the free list awaiting reuse."""
        return self._free_node_total

    @property
    def node_capacity(self) -> int:
        """Size of the node arena (live cells + free-list holes); the
        row count of a dense evaluation's working matrix."""
        return self._node_top

    # -- maintenance ----------------------------------------------------------

    def compile(self, slot: int, program: Tuple) -> bool:
        """Compile ``program`` (nested opcode tuples) into the shared
        program under ``slot``.

        Returns ``False`` — and stores nothing — when the tree exceeds
        the depth/size bounds; the caller keeps the scalar evaluator for
        that slot.
        """
        if slot in self._records:
            raise MatchingError("slot %d already holds a compiled tree" % slot)
        ops, entries, children = _flatten(program)
        node_count = len(ops)
        if node_count > self.max_nodes:
            return False
        level, depth = _levels(ops, children)
        if depth > self.max_depth:
            return False

        base = self._allocate(node_count)
        self.node_entry[base : base + node_count] = entries
        leaf_locals = np.array(
            [local for local in range(node_count) if ops[local] == OP_LEAF],
            dtype=np.int64,
        )
        self._records[slot] = _TreeRecord(
            base,
            node_count,
            leaf_locals,
            _level_groups(ops, children, level, depth),
            depth,
        )
        self._dense = None
        return True

    def discard(self, slot: int) -> None:
        """Withdraw ``slot``'s tree (no-op when it was never compiled).

        The freed node range goes to the exact-fit free list; when holes
        dominate the arena the program re-materializes densely.
        """
        record = self._records.pop(slot, None)
        if record is None:
            return
        self._dense = None
        if record.node_count:
            self._free_nodes.setdefault(record.node_count, []).append(record.base)
            self._free_node_total += record.node_count
        self._maybe_rematerialize()

    def _allocate(self, length: int) -> int:
        """A node range of exactly ``length`` cells: recycled when the
        free list holds one, appended (arena grown) otherwise."""
        bucket = self._free_nodes.get(length)
        if bucket:
            base = bucket.pop()
            if not bucket:
                del self._free_nodes[length]
            self._free_node_total -= length
            return base
        base = self._node_top
        self._node_top += length
        if self._node_top > len(self.node_entry):
            capacity = max(64, len(self.node_entry) * 2, self._node_top)
            grown = np.full(capacity, -1, dtype=np.int64)
            grown[: len(self.node_entry)] = self.node_entry
            self.node_entry = grown
        return base

    def _maybe_rematerialize(self) -> None:
        if self._free_node_total < _COMPACT_MIN_FREE:
            return
        if self._free_node_total > max(1, self.live_node_count) * (
            _COMPACT_FREE_FRACTION
        ):
            self._rematerialize()

    def _rematerialize(self) -> None:
        """Re-pack the arena densely, slot order, dropping all holes.

        Records only store their arena *base* plus tree-local data, so
        moving a tree is one slice copy and one base update.
        """
        node_top = sum(record.node_count for record in self._records.values())
        node_entry = np.empty(node_top, dtype=np.int64)
        cursor = 0
        for slot in sorted(self._records):
            record = self._records[slot]
            stop = cursor + record.node_count
            node_entry[cursor:stop] = self.node_entry[
                record.base : record.base + record.node_count
            ]
            record.base = cursor
            cursor = stop
        self.node_entry = node_entry
        self._node_top = node_top
        self._free_nodes = {}
        self._free_node_total = 0
        self._dense = None

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, slot: int, rows: np.ndarray, flags: np.ndarray) -> np.ndarray:
        """Evaluate ``slot``'s tree for every listed row at once.

        ``rows`` indexes the chunk's ``flags[event, entry]`` matrix;
        returns one boolean verdict per row.  Level by level, bottom-up:
        one ``logical_and.reduceat`` over the concatenated AND children
        and one ``logical_or.reduceat`` over the OR children per level.
        """
        record = self._records[slot]
        leaf_entries = self.node_entry[record.base + record.leaf_locals]
        values = np.empty((record.node_count, len(rows)), dtype=bool)
        values[record.leaf_locals] = flags[rows[:, np.newaxis], leaf_entries].T
        for and_group, or_group in record.levels:
            targets, starts, child_locals = and_group
            if len(targets):
                values[targets] = np.logical_and.reduceat(
                    values[child_locals], starts, axis=0
                )
            targets, starts, child_locals = or_group
            if len(targets):
                values[targets] = np.logical_or.reduceat(
                    values[child_locals], starts, axis=0
                )
        return values[0]

    def evaluate_dense(self, flags: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate **every** compiled tree against every row of ``flags``.

        Returns ``(root_positions, values)``: ``root_positions[slot]`` is
        the arena position of ``slot``'s root (``-1`` for slots without a
        compiled tree, including slots past the array's end), and
        ``values[root_positions[slot], row]`` is the verdict of that
        slot's tree for ``row``.  One leaf gather plus two segment
        reductions per level — a handful of numpy calls for the whole
        table, regardless of tree count.  Worth it when most trees are
        candidates for most rows of the chunk; the caller gates on pair
        density and masks out the pairs it did not ask for.
        """
        dense = self._dense
        if dense is None:
            dense = self._dense = self._build_dense()
        values = np.empty((self._node_top, flags.shape[0]), dtype=bool)
        if len(dense.leaf_positions):
            values[dense.leaf_positions] = flags[:, dense.leaf_entries].T
        for and_group, or_group in dense.levels:
            targets, starts, positions = and_group
            if len(targets):
                values[targets] = np.logical_and.reduceat(
                    values[positions], starts, axis=0
                )
            targets, starts, positions = or_group
            if len(targets):
                values[targets] = np.logical_or.reduceat(
                    values[positions], starts, axis=0
                )
        return dense.root_positions, values

    def _build_dense(self) -> _DenseProgram:
        """Concatenate every record's level groups into arena-global ones."""
        leaf_positions: List[np.ndarray] = []
        max_depth = 0
        max_slot = -1
        for slot, record in self._records.items():
            leaf_positions.append(record.base + record.leaf_locals)
            max_depth = max(max_depth, record.depth)
            max_slot = max(max_slot, slot)
        root_positions = np.full(max_slot + 1, -1, dtype=np.int64)
        for slot, record in self._records.items():
            root_positions[slot] = record.base
        levels: List[Tuple] = []
        for level_index in range(max_depth):
            per_op: List[Tuple] = []
            for op_index in (0, 1):
                targets: List[np.ndarray] = []
                starts: List[np.ndarray] = []
                positions: List[np.ndarray] = []
                offset = 0
                for record in self._records.values():
                    if level_index >= len(record.levels):
                        continue
                    group_targets, group_starts, group_children = (
                        record.levels[level_index][op_index]
                    )
                    if not len(group_targets):
                        continue
                    targets.append(record.base + group_targets)
                    starts.append(group_starts + offset)
                    positions.append(record.base + group_children)
                    offset += len(group_children)
                per_op.append(
                    (
                        _concat(targets),
                        _concat(starts),
                        _concat(positions),
                    )
                )
            levels.append((per_op[0], per_op[1]))
        all_leaves = _concat(leaf_positions)
        return _DenseProgram(
            all_leaves,
            self.node_entry[all_leaves],
            tuple(levels),
            root_positions,
        )


def _concat(arrays: List[np.ndarray]) -> np.ndarray:
    """Concatenate int64 arrays (empty-safe)."""
    if not arrays:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(arrays)
