"""Filtering engines: match event messages against registered subscriptions.

Two engines implement the same :class:`~repro.matching.interfaces.Matcher`
interface:

* :class:`~repro.matching.counting.CountingMatcher` — the production engine,
  modelled on the counting-based Boolean filtering algorithm of Bittner &
  Hinze (CoopIS 2005, the paper's ref [2]): predicates are indexed per
  attribute and operator; a subscription's tree is only evaluated once at
  least ``pmin`` of its predicates are fulfilled.
* :class:`~repro.matching.naive.NaiveMatcher` — evaluates every subscription
  tree against every event; the correctness oracle and baseline.

A third engine composes the first:
:class:`~repro.matching.sharded.ShardedMatcher` partitions the table
into K independent counting-engine shards (stable ``sub_id → shard``
hash) and fans ``match_batch`` out to per-shard workers — numpy releases
the GIL, so shards run in parallel on threads — merging per-event id
lists and summing statistics so results are bit-identical to one
unsharded engine.

Both engines support ``match_batch`` (:mod:`repro.matching.batch`): the
counting engine probes its indexes once per batch over the batch's
columnar view, vectorizes the candidate test with a 2-D
fulfilled-count matrix, and evaluates surviving general-tree candidates
through a shared flat compiled-tree program
(:mod:`repro.matching.treeval`) — segment reductions over the batch's
entry-flag matrix instead of per-pair recursion; the naive engine loops
— equal outputs are the batch path's correctness contract.  The
counting engine's indexes and compiled-tree program are incrementally
maintained: register/unregister/replace apply deltas to the touched
predicate buckets and program ranges only (O(subscription), not
O(table)), and tables self-compact when unregistration churn fragments
them.
"""

from repro.matching.batch import counting_match_batch, counting_match_batch_rowwise
from repro.matching.counting import CountingMatcher
from repro.matching.interfaces import Matcher
from repro.matching.naive import NaiveMatcher
from repro.matching.sharded import ShardedMatcher, shard_of
from repro.matching.stats import MatchStatistics
from repro.matching.treeval import TreePrograms

__all__ = [
    "CountingMatcher",
    "Matcher",
    "MatchStatistics",
    "NaiveMatcher",
    "ShardedMatcher",
    "TreePrograms",
    "counting_match_batch",
    "counting_match_batch_rowwise",
    "shard_of",
]
