"""Per-attribute predicate indexes for the counting engine.

Every registered predicate instance becomes an *entry* (an integer id) in
the index of its attribute.  At match time the index answers, for one
event attribute value, which entries are fulfilled — as numpy arrays of
entry ids, so the caller can count fulfilled predicates per subscription
with vectorized ``bincount`` operations.

Negated operators (``!=``, ``not-in``, ``not-prefix``, ``not-contains``)
are almost always fulfilled when the attribute is present, so enumerating
their fulfilled entries directly would be wasteful.  They are reported as
an *all entries* positive array plus a small *excluded* negative array;
the counting engine adds the first and subtracts the second.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import MatchingError
from repro.events import Value
from repro.subscriptions.predicates import Operator, Predicate

_EMPTY = np.empty(0, dtype=np.int64)

#: Value-key kind tags; keep bool and int apart (Python hashes True == 1).
_KIND_BOOL = "b"
_KIND_NUM = "n"
_KIND_STR = "s"


def value_key(value: Value) -> Tuple[str, Value]:
    """A dict key under which cross-kind equality never collides."""
    if isinstance(value, bool):
        return (_KIND_BOOL, value)
    if isinstance(value, (int, float)):
        return (_KIND_NUM, float(value))
    return (_KIND_STR, value)


class _SortedConstants:
    """Constants of one ordered operator over one value kind, sorted.

    Suffix/prefix slices of the aligned entry array are exactly the
    fulfilled entries for a probe value (see ``collect``).
    """

    __slots__ = ("pairs", "constants", "entries")

    def __init__(self) -> None:
        self.pairs: List[Tuple[Value, int]] = []
        self.constants: Union[np.ndarray, List[Value]] = _EMPTY
        self.entries: np.ndarray = _EMPTY

    def add(self, constant: Value, entry: int) -> None:
        self.pairs.append((constant, entry))

    def finalize(self, numeric: bool) -> None:
        self.pairs.sort(key=lambda pair: pair[0])
        if numeric:
            self.constants = np.array(
                [float(constant) for constant, _entry in self.pairs], dtype=np.float64
            )
        else:
            self.constants = [constant for constant, _entry in self.pairs]
        self.entries = np.array(
            [entry for _constant, entry in self.pairs], dtype=np.int64
        )

    def __len__(self) -> int:
        return len(self.pairs)


class _OrderedOps:
    """The four range operators for one value kind (numeric or string)."""

    __slots__ = ("lt", "le", "gt", "ge", "numeric")

    def __init__(self, numeric: bool) -> None:
        self.lt = _SortedConstants()
        self.le = _SortedConstants()
        self.gt = _SortedConstants()
        self.ge = _SortedConstants()
        self.numeric = numeric

    def for_operator(self, operator: Operator) -> _SortedConstants:
        if operator is Operator.LT:
            return self.lt
        if operator is Operator.LE:
            return self.le
        if operator is Operator.GT:
            return self.gt
        return self.ge

    def finalize(self) -> None:
        for bucket in (self.lt, self.le, self.gt, self.ge):
            bucket.finalize(self.numeric)

    def _split(self, bucket: _SortedConstants, value: Value, side: str) -> int:
        if self.numeric:
            return int(np.searchsorted(bucket.constants, value, side=side))
        if side == "left":
            return bisect.bisect_left(bucket.constants, value)
        return bisect.bisect_right(bucket.constants, value)

    def collect(self, value: Value, positives: List[np.ndarray]) -> None:
        """Append fulfilled range entries for probe ``value``.

        attr < c  holds iff c > v: suffix after the last constant <= v.
        attr <= c holds iff c >= v: suffix from the first constant >= v.
        attr > c  holds iff c < v: prefix before the first constant >= v.
        attr >= c holds iff c <= v: prefix through the last constant <= v.
        """
        if len(self.lt):
            positives.append(self.lt.entries[self._split(self.lt, value, "right"):])
        if len(self.le):
            positives.append(self.le.entries[self._split(self.le, value, "left"):])
        if len(self.gt):
            positives.append(self.gt.entries[: self._split(self.gt, value, "left")])
        if len(self.ge):
            positives.append(self.ge.entries[: self._split(self.ge, value, "right")])


class AttributeIndex:
    """All predicate entries registered for one attribute name."""

    __slots__ = (
        "attribute",
        "_eq",
        "_ne_all",
        "_ne_by_value",
        "_numeric",
        "_string",
        "_prefix_by_length",
        "_not_prefix_all",
        "_not_prefix_by_length",
        "_contains",
        "_not_contains_all",
        "_not_contains",
        "_finalized",
    )

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._eq: Dict[Tuple[str, Value], List[int]] = {}
        self._ne_all: List[int] = []
        self._ne_by_value: Dict[Tuple[str, Value], List[int]] = {}
        self._numeric = _OrderedOps(numeric=True)
        self._string = _OrderedOps(numeric=False)
        self._prefix_by_length: Dict[int, Dict[str, List[int]]] = {}
        self._not_prefix_all: List[int] = []
        self._not_prefix_by_length: Dict[int, Dict[str, List[int]]] = {}
        self._contains: List[Tuple[str, int]] = []
        self._not_contains_all: List[int] = []
        self._not_contains: List[Tuple[str, int]] = []
        self._finalized = False

    def add(self, predicate: Predicate, entry: int) -> None:
        """Register a predicate instance under entry id ``entry``."""
        if self._finalized:
            raise MatchingError("cannot add to a finalized index")
        if predicate.attribute != self.attribute:
            raise MatchingError("predicate attribute mismatch")
        operator = predicate.operator
        if operator is Operator.EQ:
            self._eq.setdefault(value_key(predicate.value), []).append(entry)
        elif operator is Operator.IN_SET:
            for member in predicate.value:
                self._eq.setdefault(value_key(member), []).append(entry)
        elif operator is Operator.NE:
            self._ne_all.append(entry)
            self._ne_by_value.setdefault(value_key(predicate.value), []).append(entry)
        elif operator is Operator.NOT_IN_SET:
            self._ne_all.append(entry)
            for member in predicate.value:
                self._ne_by_value.setdefault(value_key(member), []).append(entry)
        elif operator.is_ordered:
            if isinstance(predicate.value, str):
                self._string.for_operator(operator).add(predicate.value, entry)
            else:
                self._numeric.for_operator(operator).add(float(predicate.value), entry)
        elif operator is Operator.PREFIX:
            prefix = predicate.value
            bucket = self._prefix_by_length.setdefault(len(prefix), {})
            bucket.setdefault(prefix, []).append(entry)
        elif operator is Operator.NOT_PREFIX:
            prefix = predicate.value
            self._not_prefix_all.append(entry)
            bucket = self._not_prefix_by_length.setdefault(len(prefix), {})
            bucket.setdefault(prefix, []).append(entry)
        elif operator is Operator.CONTAINS:
            self._contains.append((predicate.value, entry))
        elif operator is Operator.NOT_CONTAINS:
            self._not_contains_all.append(entry)
            self._not_contains.append((predicate.value, entry))
        else:  # pragma: no cover - all operators handled above
            raise MatchingError("unsupported operator %r" % operator)

    def finalize(self) -> None:
        """Convert accumulation structures to their query representations."""
        if self._finalized:
            return
        self._eq = {key: np.array(v, dtype=np.int64) for key, v in self._eq.items()}
        self._ne_by_value = {
            key: np.array(v, dtype=np.int64) for key, v in self._ne_by_value.items()
        }
        self._ne_all = np.array(self._ne_all, dtype=np.int64)
        self._not_prefix_all = np.array(self._not_prefix_all, dtype=np.int64)
        self._not_contains_all = np.array(self._not_contains_all, dtype=np.int64)
        self._prefix_by_length = {
            length: {p: np.array(v, dtype=np.int64) for p, v in bucket.items()}
            for length, bucket in self._prefix_by_length.items()
        }
        self._not_prefix_by_length = {
            length: {p: np.array(v, dtype=np.int64) for p, v in bucket.items()}
            for length, bucket in self._not_prefix_by_length.items()
        }
        self._numeric.finalize()
        self._string.finalize()
        self._finalized = True

    def collect(
        self,
        value: Value,
        positives: List[np.ndarray],
        negatives: List[np.ndarray],
    ) -> None:
        """Append fulfilled-entry arrays for event value ``value``.

        ``positives`` minus ``negatives`` (as multisets) is exactly the set
        of fulfilled entries; every entry appears at most once in the net
        result.
        """
        if not self._finalized:
            raise MatchingError("index must be finalized before matching")
        key = value_key(value)
        hit = self._eq.get(key)
        if hit is not None:
            positives.append(hit)
        if len(self._ne_all):
            positives.append(self._ne_all)
            excluded = self._ne_by_value.get(key)
            if excluded is not None:
                negatives.append(excluded)
        if isinstance(value, bool):
            return  # booleans only support (in)equality
        if isinstance(value, str):
            self._string.collect(value, positives)
            for length, bucket in self._prefix_by_length.items():
                if length <= len(value):
                    hit = bucket.get(value[:length])
                    if hit is not None:
                        positives.append(hit)
            if len(self._not_prefix_all):
                positives.append(self._not_prefix_all)
                for length, bucket in self._not_prefix_by_length.items():
                    if length <= len(value):
                        excluded = bucket.get(value[:length])
                        if excluded is not None:
                            negatives.append(excluded)
            for needle, entry in self._contains:
                if needle in value:
                    positives.append(np.array([entry], dtype=np.int64))
            if len(self._not_contains_all):
                positives.append(self._not_contains_all)
                for needle, entry in self._not_contains:
                    if needle in value:
                        negatives.append(np.array([entry], dtype=np.int64))
        else:
            self._numeric.collect(float(value), positives)


class PredicateIndexSet:
    """The full per-attribute index family used by one counting engine."""

    __slots__ = ("_by_attribute", "_entry_count")

    def __init__(self) -> None:
        self._by_attribute: Dict[str, AttributeIndex] = {}
        self._entry_count = 0

    @property
    def entry_count(self) -> int:
        """Total number of registered predicate entries."""
        return self._entry_count

    def add(self, predicate: Predicate) -> int:
        """Register a predicate instance; returns its new entry id."""
        index = self._by_attribute.get(predicate.attribute)
        if index is None:
            index = AttributeIndex(predicate.attribute)
            self._by_attribute[predicate.attribute] = index
        entry = self._entry_count
        index.add(predicate, entry)
        self._entry_count += 1
        return entry

    def finalize(self) -> None:
        """Freeze all attribute indexes for querying."""
        for index in self._by_attribute.values():
            index.finalize()

    def collect(
        self,
        attribute: str,
        value: Value,
        positives: List[np.ndarray],
        negatives: List[np.ndarray],
    ) -> None:
        """Collect fulfilled entries for one event attribute."""
        index = self._by_attribute.get(attribute)
        if index is not None:
            index.collect(value, positives, negatives)

    @property
    def attribute_names(self) -> List[str]:
        """Names of all indexed attributes."""
        return sorted(self._by_attribute)
