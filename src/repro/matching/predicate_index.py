"""Per-attribute predicate indexes for the counting engine.

Every registered predicate instance becomes an *entry* (an integer id) in
the index of its attribute.  At match time the index answers, for one
event attribute value, which entries are fulfilled — as numpy arrays of
entry ids, so the caller can count fulfilled predicates per subscription
with vectorized ``bincount`` operations.

Negated operators (``!=``, ``not-in``, ``not-prefix``, ``not-contains``)
are almost always fulfilled when the attribute is present, so enumerating
their fulfilled entries directly would be wasteful.  They are reported as
an *all entries* positive array plus a small *excluded* negative array;
the counting engine adds the first and subtracts the second.

Indexes are **incrementally maintained**: :meth:`AttributeIndex.add` and
:meth:`AttributeIndex.remove` update only the operator buckets the
predicate touches, and each bucket re-materializes its numpy query arrays
lazily the next time it is probed.  Subscription churn therefore costs
O(touched buckets), not O(index).  Entry ids are allocated by
:class:`PredicateIndexSet` from a free list so long-lived engines do not
grow their id space under churn.

Indexes answer in two granularities:

* :meth:`AttributeIndex.collect` probes for **one** event value and
  appends fulfilled-entry arrays;
* :meth:`AttributeIndex.collect_batch` probes for a whole
  :class:`~repro.events.AttributeColumn` at once and appends aligned
  ``(row, entry)`` pair arrays.  Range probes run as a single vectorized
  ``searchsorted`` over the column's value array, equality/membership
  probes as one dictionary lookup per *distinct* value, so the per-event
  Python loop disappears from the batch hot path.

>>> from repro.subscriptions.predicates import Operator, Predicate
>>> index_set = PredicateIndexSet()
>>> entry = index_set.add(Predicate("price", Operator.LE, 10))
>>> positives, negatives = [], []
>>> index_set.collect("price", 7, positives, negatives)
>>> [array.tolist() for array in positives]
[[0]]
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.errors import MatchingError
from repro.events import AttributeColumn, EventColumns, Value
from repro.subscriptions.predicates import Operator, Predicate

_EMPTY = np.empty(0, dtype=np.int64)

#: Accumulator type of the batched probes: parallel lists of equal-length
#: ``rows`` / ``entries`` arrays — each pair means "event ``rows[i]``
#: fulfils (or, for negatives, un-fulfils) entry ``entries[i]``".
PairLists = Tuple[List[np.ndarray], List[np.ndarray]]


def _emit_cross(rows: np.ndarray, entries: np.ndarray, out: PairLists) -> None:
    """Emit the cross product: every listed row fulfils every entry."""
    if len(rows) and len(entries):
        out[0].append(np.repeat(rows, len(entries)))
        out[1].append(np.tile(entries, len(rows)))


def _emit_slices(
    rows: np.ndarray,
    entries: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    out: PairLists,
) -> None:
    """Emit ragged slices: row ``rows[i]`` fulfils ``entries[starts[i]:stops[i]]``.

    This is the vectorized equivalent of appending one suffix/prefix
    slice per event in the scalar range probe.
    """
    lengths = stops - starts
    mask = lengths > 0
    if not mask.any():
        return
    rows = rows[mask]
    starts = starts[mask]
    lengths = lengths[mask]
    total = int(lengths.sum())
    out[0].append(np.repeat(rows, lengths))
    # Flat index into ``entries``: a per-row arange re-based at starts.
    ends = np.cumsum(lengths)
    offsets = (
        np.arange(total, dtype=np.int64)
        - np.repeat(ends - lengths, lengths)
        + np.repeat(starts, lengths)
    )
    out[1].append(entries[offsets])

#: Value-key kind tags; keep bool and int apart (Python hashes True == 1).
_KIND_BOOL = "b"
_KIND_NUM = "n"
_KIND_STR = "s"


def value_key(value: Value) -> Tuple[str, Value]:
    """A dict key under which cross-kind equality never collides."""
    if isinstance(value, bool):
        return (_KIND_BOOL, value)
    if isinstance(value, (int, float)):
        return (_KIND_NUM, float(value))
    return (_KIND_STR, value)


class _EntrySet:
    """A mutable set of entry ids with a lazily cached numpy array."""

    __slots__ = ("_entries", "_array")

    def __init__(self) -> None:
        self._entries: Set[int] = set()
        self._array: Optional[np.ndarray] = _EMPTY

    def add(self, entry: int) -> None:
        self._entries.add(entry)
        self._array = None

    def remove(self, entry: int) -> None:
        try:
            self._entries.remove(entry)
        except KeyError:
            raise MatchingError("entry %d is not in this bucket" % entry)
        self._array = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def array(self) -> np.ndarray:
        if self._array is None:
            self._array = np.fromiter(
                self._entries, dtype=np.int64, count=len(self._entries)
            )
        return self._array


class _SortedConstants:
    """Constants of one ordered operator over one value kind, sorted.

    Suffix/prefix slices of the aligned entry array are exactly the
    fulfilled entries for a probe value (see ``collect``).  The sorted
    pair list is maintained incrementally with ``bisect``; the aligned
    numpy arrays are re-materialized lazily after a mutation.
    """

    __slots__ = ("pairs", "numeric", "_constants", "_entries")

    def __init__(self, numeric: bool) -> None:
        self.pairs: List[Tuple[Value, int]] = []
        self.numeric = numeric
        self._constants: Union[np.ndarray, List[Value], None] = _EMPTY
        self._entries: Optional[np.ndarray] = _EMPTY

    def add(self, constant: Value, entry: int) -> None:
        bisect.insort(self.pairs, (constant, entry))
        self._entries = None

    def remove(self, constant: Value, entry: int) -> None:
        pair = (constant, entry)
        position = bisect.bisect_left(self.pairs, pair)
        if position >= len(self.pairs) or self.pairs[position] != pair:
            raise MatchingError("range entry %d is not registered" % entry)
        del self.pairs[position]
        self._entries = None

    def _materialize(self) -> None:
        if self.numeric:
            self._constants = np.array(
                [float(constant) for constant, _entry in self.pairs], dtype=np.float64
            )
        else:
            self._constants = [constant for constant, _entry in self.pairs]
        self._entries = np.array(
            [entry for _constant, entry in self.pairs], dtype=np.int64
        )

    @property
    def constants(self) -> Union[np.ndarray, List[Value]]:
        if self._entries is None:
            self._materialize()
        return self._constants

    @property
    def entries(self) -> np.ndarray:
        if self._entries is None:
            self._materialize()
        return self._entries

    def __len__(self) -> int:
        return len(self.pairs)


class _OrderedOps:
    """The four range operators for one value kind (numeric or string)."""

    __slots__ = ("lt", "le", "gt", "ge", "numeric")

    def __init__(self, numeric: bool) -> None:
        self.lt = _SortedConstants(numeric)
        self.le = _SortedConstants(numeric)
        self.gt = _SortedConstants(numeric)
        self.ge = _SortedConstants(numeric)
        self.numeric = numeric

    def for_operator(self, operator: Operator) -> _SortedConstants:
        if operator is Operator.LT:
            return self.lt
        if operator is Operator.LE:
            return self.le
        if operator is Operator.GT:
            return self.gt
        return self.ge

    def _split(self, bucket: _SortedConstants, value: Value, side: str) -> int:
        if self.numeric:
            return int(np.searchsorted(bucket.constants, value, side=side))
        if side == "left":
            return bisect.bisect_left(bucket.constants, value)
        return bisect.bisect_right(bucket.constants, value)

    def collect(self, value: Value, positives: List[np.ndarray]) -> None:
        """Append fulfilled range entries for probe ``value``.

        attr < c  holds iff c > v: suffix after the last constant <= v.
        attr <= c holds iff c >= v: suffix from the first constant >= v.
        attr > c  holds iff c < v: prefix before the first constant >= v.
        attr >= c holds iff c <= v: prefix through the last constant <= v.
        """
        if len(self.lt):
            positives.append(self.lt.entries[self._split(self.lt, value, "right"):])
        if len(self.le):
            positives.append(self.le.entries[self._split(self.le, value, "left"):])
        if len(self.gt):
            positives.append(self.gt.entries[: self._split(self.gt, value, "left")])
        if len(self.ge):
            positives.append(self.ge.entries[: self._split(self.ge, value, "right")])

    def collect_batch_numeric(
        self, rows: np.ndarray, values: np.ndarray, out: PairLists
    ) -> None:
        """Vectorized range probe: one ``searchsorted`` per bucket for the
        whole value column (see :meth:`collect` for the slice semantics)."""
        if len(self.lt):
            splits = np.searchsorted(self.lt.constants, values, side="right")
            count = len(self.lt)
            _emit_slices(
                rows, self.lt.entries, splits,
                np.full(len(splits), count, dtype=np.int64), out,
            )
        if len(self.le):
            splits = np.searchsorted(self.le.constants, values, side="left")
            count = len(self.le)
            _emit_slices(
                rows, self.le.entries, splits,
                np.full(len(splits), count, dtype=np.int64), out,
            )
        if len(self.gt):
            splits = np.searchsorted(self.gt.constants, values, side="left")
            _emit_slices(
                rows, self.gt.entries,
                np.zeros(len(splits), dtype=np.int64), splits, out,
            )
        if len(self.ge):
            splits = np.searchsorted(self.ge.constants, values, side="right")
            _emit_slices(
                rows, self.ge.entries,
                np.zeros(len(splits), dtype=np.int64), splits, out,
            )

    def collect_cross(self, value: Value, rows: np.ndarray, out: PairLists) -> None:
        """Range probe for one distinct value shared by ``rows``.

        Used for string columns, where rows are grouped by distinct value
        first; the per-value bisect then runs once per distinct value.
        """
        if len(self.lt):
            _emit_cross(
                rows, self.lt.entries[self._split(self.lt, value, "right"):], out
            )
        if len(self.le):
            _emit_cross(
                rows, self.le.entries[self._split(self.le, value, "left"):], out
            )
        if len(self.gt):
            _emit_cross(
                rows, self.gt.entries[: self._split(self.gt, value, "left")], out
            )
        if len(self.ge):
            _emit_cross(
                rows, self.ge.entries[: self._split(self.ge, value, "right")], out
            )

    def __len__(self) -> int:
        return len(self.lt) + len(self.le) + len(self.gt) + len(self.ge)


def _bucket_add(
    buckets: Dict, key, entry: int
) -> None:
    vector = buckets.get(key)
    if vector is None:
        vector = _EntrySet()
        buckets[key] = vector
    vector.add(entry)


def _bucket_remove(buckets: Dict, key, entry: int) -> None:
    vector = buckets.get(key)
    if vector is None:
        raise MatchingError("entry %d is not registered under %r" % (entry, key))
    vector.remove(entry)
    if not len(vector):
        del buckets[key]


class AttributeIndex:
    """All predicate entries registered for one attribute name.

    The index is always queryable; :meth:`add` and :meth:`remove` apply
    deltas to the touched operator buckets only.
    """

    __slots__ = (
        "attribute",
        "_eq",
        "_ne_all",
        "_ne_by_value",
        "_numeric",
        "_string",
        "_prefix_by_length",
        "_not_prefix_all",
        "_not_prefix_by_length",
        "_contains",
        "_not_contains_all",
        "_not_contains",
        "_live",
    )

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._eq: Dict[Tuple[str, Value], _EntrySet] = {}
        self._ne_all = _EntrySet()
        self._ne_by_value: Dict[Tuple[str, Value], _EntrySet] = {}
        self._numeric = _OrderedOps(numeric=True)
        self._string = _OrderedOps(numeric=False)
        self._prefix_by_length: Dict[int, Dict[str, _EntrySet]] = {}
        self._not_prefix_all = _EntrySet()
        self._not_prefix_by_length: Dict[int, Dict[str, _EntrySet]] = {}
        self._contains: Dict[int, str] = {}
        self._not_contains_all = _EntrySet()
        self._not_contains: Dict[int, str] = {}
        self._live = 0

    def __len__(self) -> int:
        """Number of live predicate entries in this attribute index."""
        return self._live

    def add(self, predicate: Predicate, entry: int) -> None:
        """Register a predicate instance under entry id ``entry``."""
        if predicate.attribute != self.attribute:
            raise MatchingError("predicate attribute mismatch")
        operator = predicate.operator
        if operator is Operator.EQ:
            _bucket_add(self._eq, value_key(predicate.value), entry)
        elif operator is Operator.IN_SET:
            for member in predicate.value:
                _bucket_add(self._eq, value_key(member), entry)
        elif operator is Operator.NE:
            self._ne_all.add(entry)
            _bucket_add(self._ne_by_value, value_key(predicate.value), entry)
        elif operator is Operator.NOT_IN_SET:
            self._ne_all.add(entry)
            for member in predicate.value:
                _bucket_add(self._ne_by_value, value_key(member), entry)
        elif operator.is_ordered:
            if isinstance(predicate.value, str):
                self._string.for_operator(operator).add(predicate.value, entry)
            else:
                self._numeric.for_operator(operator).add(float(predicate.value), entry)
        elif operator is Operator.PREFIX:
            prefix = predicate.value
            bucket = self._prefix_by_length.setdefault(len(prefix), {})
            _bucket_add(bucket, prefix, entry)
        elif operator is Operator.NOT_PREFIX:
            prefix = predicate.value
            self._not_prefix_all.add(entry)
            bucket = self._not_prefix_by_length.setdefault(len(prefix), {})
            _bucket_add(bucket, prefix, entry)
        elif operator is Operator.CONTAINS:
            self._contains[entry] = predicate.value
        elif operator is Operator.NOT_CONTAINS:
            self._not_contains_all.add(entry)
            self._not_contains[entry] = predicate.value
        else:  # pragma: no cover - all operators handled above
            raise MatchingError("unsupported operator %r" % operator)
        self._live += 1

    def remove(self, predicate: Predicate, entry: int) -> None:
        """Withdraw the predicate instance registered under ``entry``."""
        if predicate.attribute != self.attribute:
            raise MatchingError("predicate attribute mismatch")
        operator = predicate.operator
        if operator is Operator.EQ:
            _bucket_remove(self._eq, value_key(predicate.value), entry)
        elif operator is Operator.IN_SET:
            for member in predicate.value:
                _bucket_remove(self._eq, value_key(member), entry)
        elif operator is Operator.NE:
            self._ne_all.remove(entry)
            _bucket_remove(self._ne_by_value, value_key(predicate.value), entry)
        elif operator is Operator.NOT_IN_SET:
            self._ne_all.remove(entry)
            for member in predicate.value:
                _bucket_remove(self._ne_by_value, value_key(member), entry)
        elif operator.is_ordered:
            if isinstance(predicate.value, str):
                self._string.for_operator(operator).remove(predicate.value, entry)
            else:
                self._numeric.for_operator(operator).remove(
                    float(predicate.value), entry
                )
        elif operator is Operator.PREFIX:
            prefix = predicate.value
            bucket = self._prefix_by_length.get(len(prefix))
            if bucket is None:
                raise MatchingError("prefix entry %d is not registered" % entry)
            _bucket_remove(bucket, prefix, entry)
            if not bucket:
                del self._prefix_by_length[len(prefix)]
        elif operator is Operator.NOT_PREFIX:
            prefix = predicate.value
            self._not_prefix_all.remove(entry)
            bucket = self._not_prefix_by_length.get(len(prefix))
            if bucket is None:
                raise MatchingError("not-prefix entry %d is not registered" % entry)
            _bucket_remove(bucket, prefix, entry)
            if not bucket:
                del self._not_prefix_by_length[len(prefix)]
        elif operator is Operator.CONTAINS:
            if self._contains.pop(entry, None) is None:
                raise MatchingError("contains entry %d is not registered" % entry)
        elif operator is Operator.NOT_CONTAINS:
            self._not_contains_all.remove(entry)
            if self._not_contains.pop(entry, None) is None:
                raise MatchingError("not-contains entry %d is not registered" % entry)
        else:  # pragma: no cover - all operators handled above
            raise MatchingError("unsupported operator %r" % operator)
        self._live -= 1

    def finalize(self) -> None:
        """Deprecated no-op, kept for API compatibility.

        Indexes are incrementally maintained and always queryable; there
        is no build step to trigger anymore.
        """

    def collect(
        self,
        value: Value,
        positives: List[np.ndarray],
        negatives: List[np.ndarray],
    ) -> None:
        """Append fulfilled-entry arrays for event value ``value``.

        ``positives`` minus ``negatives`` (as multisets) is exactly the set
        of fulfilled entries; every entry appears at most once in the net
        result.
        """
        key = value_key(value)
        hit = self._eq.get(key)
        if hit is not None:
            positives.append(hit.array)
        if len(self._ne_all):
            positives.append(self._ne_all.array)
            excluded = self._ne_by_value.get(key)
            if excluded is not None:
                negatives.append(excluded.array)
        if isinstance(value, bool):
            return  # booleans only support (in)equality
        if isinstance(value, str):
            self._string.collect(value, positives)
            for length, bucket in self._prefix_by_length.items():
                if length <= len(value):
                    hit = bucket.get(value[:length])
                    if hit is not None:
                        positives.append(hit.array)
            if len(self._not_prefix_all):
                positives.append(self._not_prefix_all.array)
                for length, bucket in self._not_prefix_by_length.items():
                    if length <= len(value):
                        excluded = bucket.get(value[:length])
                        if excluded is not None:
                            negatives.append(excluded.array)
            if self._contains:
                hits = [
                    entry
                    for entry, needle in self._contains.items()
                    if needle in value
                ]
                if hits:
                    positives.append(np.array(hits, dtype=np.int64))
            if len(self._not_contains_all):
                positives.append(self._not_contains_all.array)
                misses = [
                    entry
                    for entry, needle in self._not_contains.items()
                    if needle in value
                ]
                if misses:
                    negatives.append(np.array(misses, dtype=np.int64))
        else:
            self._numeric.collect(float(value), positives)

    def collect_batch(
        self, column: AttributeColumn, positives: PairLists, negatives: PairLists
    ) -> None:
        """Probe all buckets once for a whole attribute column.

        Appends aligned ``(row, entry)`` pair arrays; positives minus
        negatives (as per-row multisets) is exactly the per-event result
        of :meth:`collect` for each row of the column.

        ``column.groups()`` (a per-row Python grouping pass, cached on
        the column) is only built when an eq/ne/string bucket actually
        needs distinct-value lookups — purely range-indexed attributes
        stay fully vectorized.
        """
        if self._eq:
            numeric_groups, string_groups, bool_groups = column.groups()
            for value, rows in numeric_groups:
                hit = self._eq.get((_KIND_NUM, value))
                if hit is not None:
                    _emit_cross(rows, hit.array, positives)
            for value, rows in string_groups:
                hit = self._eq.get((_KIND_STR, value))
                if hit is not None:
                    _emit_cross(rows, hit.array, positives)
            for value, rows in bool_groups:
                hit = self._eq.get((_KIND_BOOL, value))
                if hit is not None:
                    _emit_cross(rows, hit.array, positives)
        if len(self._ne_all):
            _emit_cross(column.rows, self._ne_all.array, positives)
            if self._ne_by_value:
                numeric_groups, string_groups, bool_groups = column.groups()
                for kind, groups in (
                    (_KIND_NUM, numeric_groups),
                    (_KIND_STR, string_groups),
                    (_KIND_BOOL, bool_groups),
                ):
                    for value, rows in groups:
                        excluded = self._ne_by_value.get((kind, value))
                        if excluded is not None:
                            _emit_cross(rows, excluded.array, negatives)
        if len(self._numeric) and len(column.numeric_rows):
            self._numeric.collect_batch_numeric(
                column.numeric_rows, column.numeric_values, positives
            )
        if len(column.string_rows) and (
            len(self._string)
            or self._prefix_by_length
            or len(self._not_prefix_all)
            or self._contains
            or len(self._not_contains_all)
        ):
            self._collect_batch_strings(column, positives, negatives)

    def _collect_batch_strings(
        self,
        column: AttributeColumn,
        positives: PairLists,
        negatives: PairLists,
    ) -> None:
        """String-only operators over the distinct string values."""
        string_groups = column.groups()[1]
        if len(self._string):
            for value, rows in string_groups:
                self._string.collect_cross(value, rows, positives)
        for length, bucket in self._prefix_by_length.items():
            for value, rows in string_groups:
                if length <= len(value):
                    hit = bucket.get(value[:length])
                    if hit is not None:
                        _emit_cross(rows, hit.array, positives)
        if len(self._not_prefix_all):
            _emit_cross(column.string_rows, self._not_prefix_all.array, positives)
            for length, bucket in self._not_prefix_by_length.items():
                for value, rows in string_groups:
                    if length <= len(value):
                        excluded = bucket.get(value[:length])
                        if excluded is not None:
                            _emit_cross(rows, excluded.array, negatives)
        if self._contains:
            for value, rows in string_groups:
                hits = [
                    entry
                    for entry, needle in self._contains.items()
                    if needle in value
                ]
                if hits:
                    _emit_cross(rows, np.array(hits, dtype=np.int64), positives)
        if len(self._not_contains_all):
            _emit_cross(column.string_rows, self._not_contains_all.array, positives)
            for value, rows in string_groups:
                misses = [
                    entry
                    for entry, needle in self._not_contains.items()
                    if needle in value
                ]
                if misses:
                    _emit_cross(rows, np.array(misses, dtype=np.int64), negatives)


class PredicateIndexSet:
    """The full per-attribute index family used by one counting engine.

    Entry ids are allocated from a free list: removing a predicate
    returns its id for reuse, so ``entry_capacity`` (the size of the
    caller's entry-aligned arrays) stays bounded by the live high-water
    mark under register/unregister churn.
    """

    __slots__ = ("_by_attribute", "_free_entries", "_entry_capacity", "_live")

    def __init__(self) -> None:
        self._by_attribute: Dict[str, AttributeIndex] = {}
        self._free_entries: List[int] = []
        self._entry_capacity = 0
        self._live = 0

    @property
    def entry_count(self) -> int:
        """Number of live registered predicate entries."""
        return self._live

    @property
    def entry_capacity(self) -> int:
        """Size of the entry id space (live entries + free-list holes)."""
        return self._entry_capacity

    @property
    def free_entry_count(self) -> int:
        """Number of recycled entry ids waiting on the free list."""
        return len(self._free_entries)

    def add(self, predicate: Predicate) -> int:
        """Register a predicate instance; returns its (possibly recycled)
        entry id."""
        index = self._by_attribute.get(predicate.attribute)
        if index is None:
            index = AttributeIndex(predicate.attribute)
            self._by_attribute[predicate.attribute] = index
        if self._free_entries:
            entry = self._free_entries.pop()
        else:
            entry = self._entry_capacity
            self._entry_capacity += 1
        index.add(predicate, entry)
        self._live += 1
        return entry

    def remove(self, predicate: Predicate, entry: int) -> None:
        """Withdraw a predicate instance and recycle its entry id."""
        index = self._by_attribute.get(predicate.attribute)
        if index is None:
            raise MatchingError(
                "no index for attribute %r" % predicate.attribute
            )
        index.remove(predicate, entry)
        if not len(index):
            del self._by_attribute[predicate.attribute]
        self._free_entries.append(entry)
        self._live -= 1

    def finalize(self) -> None:
        """Deprecated no-op, kept for API compatibility (see
        :meth:`AttributeIndex.finalize`)."""

    def collect(
        self,
        attribute: str,
        value: Value,
        positives: List[np.ndarray],
        negatives: List[np.ndarray],
    ) -> None:
        """Collect fulfilled entries for one event attribute."""
        index = self._by_attribute.get(attribute)
        if index is not None:
            index.collect(value, positives, negatives)

    def collect_batch(
        self, columns: EventColumns, positives: PairLists, negatives: PairLists
    ) -> None:
        """Collect fulfilled ``(row, entry)`` pairs for a whole batch.

        Probes each attribute index once per batch (against the batch's
        column for that attribute) instead of once per event; attributes
        without live entries, and entries whose attribute no event
        carries, cost nothing.
        """
        for attribute, column in columns.items():
            index = self._by_attribute.get(attribute)
            if index is not None:
                index.collect_batch(column, positives, negatives)

    @property
    def attribute_names(self) -> List[str]:
        """Names of all attributes with live entries."""
        return sorted(self._by_attribute)
