"""The common interface of filtering engines."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

from repro.errors import MatchingError
from repro.events import Event, EventBatch
from repro.subscriptions.subscription import Subscription


class Matcher:
    """Abstract filtering engine.

    Engines hold a mutable set of subscriptions keyed by subscription id and
    answer point queries: *which registered subscriptions match this event?*

    Subscription ids are chosen by the caller (brokers use globally unique
    ids); re-registering an existing id is an error — use :meth:`replace`,
    which is how pruning swaps a routing entry for its pruned version.
    """

    def register(self, subscription: Subscription) -> None:
        """Add a subscription; its id must not already be registered."""
        raise NotImplementedError

    def unregister(self, subscription_id: int) -> None:
        """Remove a subscription by id; unknown ids are an error."""
        raise NotImplementedError

    def replace(self, subscription: Subscription) -> None:
        """Swap the registered tree of ``subscription.id`` for a new one."""
        self.unregister(subscription.id)
        self.register(subscription)

    def match(self, event: Event) -> List[int]:
        """Ids of all registered subscriptions fulfilled by ``event``."""
        raise NotImplementedError

    def match_batch(
        self, events: Union[Sequence[Event], EventBatch]
    ) -> List[List[int]]:
        """Match a batch of events; one id list per event, in order.

        Accepts a plain sequence or an :class:`~repro.events.EventBatch`
        (whose cached columnar view vectorized engines exploit).  The
        default implementation loops :meth:`match`; engines with a
        vectorized batch path (the counting engine) override it.  Both
        must produce identical match sets per event — the loop-based
        default is the equivalence oracle for the vectorized path.
        """
        return [self.match(event) for event in events]

    def subscriptions(self) -> Dict[int, Subscription]:
        """Mapping of id to registered subscription (live view or copy)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release engine-owned resources (idempotent; default no-op).

        Engines holding no external resources need nothing here; the
        sharded engine overrides it to shut down its worker pool.
        Brokers call this from :meth:`repro.routing.broker.Broker.close`.
        """

    # -- derived conveniences -------------------------------------------------

    def register_all(self, subscriptions: Iterable[Subscription]) -> None:
        """Register many subscriptions."""
        for subscription in subscriptions:
            self.register(subscription)

    def match_subscriptions(self, event: Event) -> List[Subscription]:
        """Like :meth:`match` but resolving ids to subscription objects."""
        table = self.subscriptions()
        return [table[sub_id] for sub_id in self.match(event)]

    @property
    def subscription_count(self) -> int:
        """Number of registered subscriptions."""
        return len(self.subscriptions())

    @property
    def association_count(self) -> int:
        """Total number of predicate/subscription associations.

        This is the memory unit of the paper's Fig. 1(c)/(f): each predicate
        leaf of each registered tree is one association in the routing
        table.
        """
        return sum(sub.leaf_count for sub in self.subscriptions().values())

    def _require_unknown(self, subscription_id: int) -> None:
        if subscription_id in self.subscriptions():
            raise MatchingError(
                "subscription id %d is already registered" % subscription_id
            )

    def _require_known(self, subscription_id: int) -> None:
        if subscription_id not in self.subscriptions():
            raise MatchingError("subscription id %d is not registered" % subscription_id)
