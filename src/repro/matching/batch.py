"""Vectorized batch matching for the counting engine.

The per-event matcher answers one event at a time: collect fulfilled
entries, one 1-D ``bincount`` per event, compare against ``pmin``.  For
event *streams* that leaves most of numpy's throughput on the table —
the candidate test is embarrassingly parallel across events, and so are
the index probes themselves once the batch is **columnar**.

:func:`counting_match_batch` evaluates a whole batch at once:

1. the batch is columnarized (per-attribute value arrays and presence
   rows, built once per :class:`~repro.events.EventBatch` and cached on
   it), and every index probe runs once per batch: range probes as one
   vectorized ``searchsorted`` over the attribute's value column,
   equality probes as one dictionary lookup per distinct value — the
   probes emit aligned ``(row, entry)`` contribution pair arrays;
2. a single ``bincount`` over ``row * slot_count + slot`` turns the
   pairs into the 2-D fulfilled-count matrix ``counts[event, slot]``;
3. the candidate test ``counts >= pmin`` runs as one 2-D comparison;
4. surviving flat-shaped candidates are decided by the counter alone
   (one vectorized kind dispatch for the whole chunk); surviving
   general-tree candidates are grouped **slot-major** and each tree is
   evaluated once against all of its surviving rows simultaneously via
   the shared compiled-tree program's segment reductions
   (:mod:`repro.matching.treeval`).  Only trees beyond the program's
   depth/size bounds fall back to the scalar recursive evaluator.

The ``chunk × entry_capacity`` flags matrix exists solely to feed tree
evaluation; when the table holds no general trees and no negated
entries (flat-only workloads) it is neither allocated nor scattered
into.

:func:`counting_match_batch_rowwise` keeps the previous per-event probe
loop (scalar :meth:`~repro.matching.predicate_index.PredicateIndexSet.collect`
per event, shared 2-D bincount): it is the reference the columnar path
is benchmarked and property-tested against.  Both are equivalent to
looping :meth:`~repro.matching.counting.CountingMatcher.match` — the
per-event oracle.

Batches are processed in bounded chunks so the 2-D scratch matrices
(``chunk × slot_count`` counts and ``chunk × entry_capacity`` flags)
stay cache- and memory-friendly regardless of batch length.

>>> from repro.events import Event, EventBatch
>>> from repro.matching.counting import CountingMatcher
>>> from repro.subscriptions import P, Subscription
>>> engine = CountingMatcher()
>>> engine.register(Subscription(1, P("price") <= 10))
>>> batch = EventBatch([Event({"price": 5}), Event({"price": 50})])
>>> engine.match_batch(batch)
[[1], []]
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Sequence, Union

import numpy as np

from repro.events import Event, EventBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.matching.counting import CountingMatcher

#: What batch entry points accept: a plain event sequence or a (possibly
#: already columnarized) event batch.
Events = Union[Sequence[Event], EventBatch]

#: Soft bound on scratch-matrix cells per chunk (counts + flags rows).
_CHUNK_CELL_BUDGET = 2_000_000
_MAX_CHUNK = 512

#: When True (the default), surviving tree candidates are evaluated
#: slot-major through the shared compiled-tree program; False restores
#: the per-pair recursive evaluator.  Flipped by benchmarks and property
#: tests to compare the two paths — results are identical either way.
_VECTORIZE_TREES = True

#: Dense-evaluation gate: when surviving (row, tree-slot) pairs cover at
#: least this fraction of the full ``compiled trees × chunk rows`` grid,
#: the whole shared program is evaluated at once (arena-global level
#: reductions) instead of per slot — wasted verdicts are bounded by
#: ``1/fraction`` while thousands of small numpy calls collapse into a
#: handful of large ones.
_DENSE_EVAL_MIN_DENSITY = 0.5

#: Slot groups at or below this many surviving rows skip the vectorized
#: evaluator: per-pair recursion is cheaper than numpy call setup there.
_SCALAR_GROUP_MAX_ROWS = 2


def _chunk_size(slot_count: int, entry_capacity: int) -> int:
    """Events per chunk keeping 2-D scratch matrices modestly sized."""
    cells_per_event = max(1, slot_count + entry_capacity)
    return max(1, min(_MAX_CHUNK, _CHUNK_CELL_BUDGET // cells_per_event))


class _BatchRun:
    """Shared scaffolding of one batch-matching pass over a matcher.

    Snapshots the matcher's slot/entry arrays, owns the chunked
    count-candidate-evaluate pipeline, and accounts statistics exactly as
    the per-event path would (one event counted per batch element).
    """

    def __init__(self, matcher: "CountingMatcher") -> None:
        self.matcher = matcher
        self.slot_count = len(matcher._slots)
        self.entry_capacity = matcher._indexes.entry_capacity
        self.entry_slot = matcher._entry_slot[: self.entry_capacity]
        self.pmin = matcher._pmin[: self.slot_count]
        self.kinds = matcher._kinds[: self.slot_count]
        # The flags matrix only feeds tree evaluation; for flat-only
        # tables without negated entries it is pure overhead and skipped.
        self.need_flags = (
            matcher._tree_slot_count > 0 or matcher._negated_entry_count > 0
        )
        self.vectorize_trees = _VECTORIZE_TREES
        # A dense evaluation's working matrix adds ``node_capacity``
        # cells per chunk row; fold it into the chunk-size budget.
        self.tree_node_capacity = (
            matcher._tree_programs.node_capacity if self.vectorize_trees else 0
        )
        self.matches_total = 0
        self.candidates_total = 0
        self.evaluations_total = 0
        self.fulfilled_total = 0

    def resolve_chunk(
        self,
        chunk_rows: int,
        pos_pairs,
        neg_pairs,
    ) -> List[List[int]]:
        """Counts → candidate test → scalar fallback for one chunk.

        ``pos_pairs`` / ``neg_pairs`` are ``(rows_arrays, entry_arrays)``
        pair-list accumulators (aligned, equal-length arrays).
        """
        from repro.matching.counting import _KIND_FALSE, _KIND_TREE

        slot_count = self.slot_count
        flags, counts = self.assemble_chunk(chunk_rows, pos_pairs, neg_pairs)
        self.fulfilled_total += int(counts.sum())

        chunk_matched: List[List[int]] = [[] for _ in range(chunk_rows)]
        if slot_count:
            slot_ids = self.matcher._slot_ids
            cand_rows, cand_slots = np.nonzero(counts >= self.pmin[np.newaxis, :])
            self.candidates_total += len(cand_rows)
            cand_kinds = self.kinds[cand_slots]
            # Flat shapes (TRUE, SINGLE, FLAT_AND, FLAT_OR): reaching
            # pmin decides — one vectorized dispatch for the chunk.
            flat_accept = (cand_kinds != _KIND_FALSE) & (cand_kinds != _KIND_TREE)
            for row, sub_id in zip(
                cand_rows[flat_accept].tolist(),
                slot_ids[cand_slots[flat_accept]].tolist(),
            ):
                chunk_matched[row].append(sub_id)
            tree_mask = cand_kinds == _KIND_TREE
            if tree_mask.any():
                self._resolve_tree_pairs(
                    cand_rows[tree_mask],
                    cand_slots[tree_mask],
                    flags,
                    chunk_matched,
                )
        for matched in chunk_matched:
            matched.sort()
            self.matches_total += len(matched)
        return chunk_matched

    def assemble_chunk(
        self,
        chunk_rows: int,
        pos_pairs,
        neg_pairs,
    ):
        """The chunk's entry-flag and fulfilled-count matrices.

        Scatters the probe's ``(row, entry)`` pairs into the
        ``chunk × entry_capacity`` flags matrix (``None`` when the table
        needs none — no general trees and no negated entries) and
        bincounts them into the ``chunk × slot_count`` matrix the
        candidate test compares against ``pmin``.  Shared by
        :meth:`resolve_chunk` and the tree-eval micro-benchmark, which
        must feed the fallback stage exactly what production does.
        """
        slot_count = self.slot_count
        flags = (
            np.zeros((chunk_rows, self.entry_capacity), dtype=bool)
            if self.need_flags
            else None
        )
        counts = np.zeros((chunk_rows, slot_count), dtype=np.int64)
        if pos_pairs[0]:
            rows = np.concatenate(pos_pairs[0])
            entries = np.concatenate(pos_pairs[1])
            if flags is not None:
                flags[rows, entries] = True
            counts = np.bincount(
                rows * slot_count + self.entry_slot[entries],
                minlength=chunk_rows * slot_count,
            ).reshape(chunk_rows, slot_count)
        if neg_pairs[0]:
            rows = np.concatenate(neg_pairs[0])
            entries = np.concatenate(neg_pairs[1])
            if flags is not None:
                flags[rows, entries] = False
            counts -= np.bincount(
                rows * slot_count + self.entry_slot[entries],
                minlength=chunk_rows * slot_count,
            ).reshape(chunk_rows, slot_count)
        return flags, counts

    def _resolve_tree_pairs(
        self,
        tree_rows: np.ndarray,
        tree_slots: np.ndarray,
        flags: np.ndarray,
        chunk_matched: List[List[int]],
    ) -> None:
        """Evaluate the surviving (event, tree-candidate) pairs.

        The vectorized path regroups the pairs **slot-major** and runs
        each compiled tree once against all of its surviving rows via
        :meth:`~repro.matching.treeval.TreePrograms.evaluate`; slots the
        program refused (depth/size bounds) — or every pair, when
        ``_VECTORIZE_TREES`` is off — recurse through the scalar
        evaluator.  ``tree_evaluations`` counts pairs either way.
        """
        from repro.matching.counting import _evaluate_compiled

        matcher = self.matcher
        slot_ids = matcher._slot_ids
        self.evaluations_total += len(tree_rows)
        if not self.vectorize_trees:
            slots = matcher._slots
            for row, slot in zip(tree_rows.tolist(), tree_slots.tolist()):
                if _evaluate_compiled(slots[slot].program, flags[row]):
                    chunk_matched[row].append(int(slot_ids[slot]))
            return
        programs = matcher._tree_programs
        chunk_rows = flags.shape[0]
        if (
            len(programs)
            and len(tree_rows)
            >= _DENSE_EVAL_MIN_DENSITY * len(programs) * chunk_rows
        ):
            # Dense tier: evaluate the whole shared program at once and
            # pick the surviving pairs' verdicts out of the root rows.
            root_positions, values = programs.evaluate_dense(flags)
            in_range = tree_slots < len(root_positions)
            positions = np.where(
                in_range,
                root_positions[np.minimum(tree_slots, len(root_positions) - 1)],
                -1,
            )
            compiled = positions >= 0
            hit = np.zeros(len(tree_rows), dtype=bool)
            hit[compiled] = values[positions[compiled], tree_rows[compiled]]
            for row, sub_id in zip(
                tree_rows[hit].tolist(), slot_ids[tree_slots[hit]].tolist()
            ):
                chunk_matched[row].append(sub_id)
            if compiled.all():
                return
            tree_rows = tree_rows[~compiled]
            tree_slots = tree_slots[~compiled]
        # Slot-major tier: group surviving rows by slot, one vectorized
        # evaluation per tree; tiny groups and bound-exceeding trees
        # recurse through the scalar oracle instead.
        order = np.argsort(tree_slots, kind="stable")
        sorted_slots = tree_slots[order]
        sorted_rows = tree_rows[order]
        starts = np.nonzero(np.r_[True, np.diff(sorted_slots) != 0])[0]
        stops = np.append(starts[1:], len(sorted_slots))
        for start, stop in zip(starts.tolist(), stops.tolist()):
            slot = int(sorted_slots[start])
            rows_group = sorted_rows[start:stop]
            if len(rows_group) > _SCALAR_GROUP_MAX_ROWS and programs.has(slot):
                verdict = programs.evaluate(slot, rows_group, flags)
                hit_rows = rows_group[verdict].tolist()
            else:
                program = matcher._slots[slot].program
                hit_rows = [
                    row
                    for row in rows_group.tolist()
                    if _evaluate_compiled(program, flags[row])
                ]
            sub_id = int(slot_ids[slot])
            for row in hit_rows:
                chunk_matched[row].append(sub_id)

    def finish(self, event_count: int, started: float) -> None:
        stats = self.matcher.statistics
        stats.events += event_count
        stats.matches += self.matches_total
        stats.candidates += self.candidates_total
        stats.tree_evaluations += self.evaluations_total
        stats.fulfilled_predicates += self.fulfilled_total
        stats.elapsed_seconds += time.perf_counter() - started


def counting_match_batch(
    matcher: "CountingMatcher", events: Events
) -> List[List[int]]:
    """Match every event of ``events``; returns one id list per event.

    The columnar fast path: probes run once per batch over the batch's
    columns (built lazily and cached when ``events`` is an
    :class:`EventBatch`).  Produces exactly the same match sets as
    calling :meth:`~repro.matching.counting.CountingMatcher.match` per
    event, and updates the matcher's statistics identically.
    """
    started = time.perf_counter()
    batch = EventBatch.coerce(events)
    count = len(batch.events)
    run = _BatchRun(matcher)
    columns = batch.columns()
    results: List[List[int]] = []
    chunk_size = _chunk_size(
        run.slot_count, run.entry_capacity + run.tree_node_capacity
    )
    for chunk_start in range(0, count, chunk_size):
        chunk_stop = min(count, chunk_start + chunk_size)
        if chunk_start == 0 and chunk_stop == count:
            chunk_columns = columns
        else:
            chunk_columns = columns.slice_rows(chunk_start, chunk_stop)
        pos_pairs: tuple = ([], [])
        neg_pairs: tuple = ([], [])
        matcher._indexes.collect_batch(chunk_columns, pos_pairs, neg_pairs)
        results.extend(
            run.resolve_chunk(chunk_stop - chunk_start, pos_pairs, neg_pairs)
        )
    run.finish(count, started)
    return results


def counting_match_batch_rowwise(
    matcher: "CountingMatcher", events: Events
) -> List[List[int]]:
    """Match a batch with per-event index probes (reference path).

    Identical results and statistics to :func:`counting_match_batch`;
    the probes loop over events in Python and only the candidate test is
    batch-vectorized.  Kept as the benchmark baseline and equivalence
    reference for the columnar probe.
    """
    started = time.perf_counter()
    event_list = EventBatch.coerce(events).events
    run = _BatchRun(matcher)
    results: List[List[int]] = []
    chunk_size = _chunk_size(
        run.slot_count, run.entry_capacity + run.tree_node_capacity
    )
    for chunk_start in range(0, len(event_list), chunk_size):
        chunk = event_list[chunk_start:chunk_start + chunk_size]
        pos_pairs: tuple = ([], [])
        neg_pairs: tuple = ([], [])
        for row, event in enumerate(chunk):
            positives: List[np.ndarray] = []
            negatives: List[np.ndarray] = []
            for attribute, value in event.items():
                matcher._indexes.collect(attribute, value, positives, negatives)
            for array in positives:
                if len(array):
                    pos_pairs[0].append(np.full(len(array), row, dtype=np.int64))
                    pos_pairs[1].append(array)
            for array in negatives:
                if len(array):
                    neg_pairs[0].append(np.full(len(array), row, dtype=np.int64))
                    neg_pairs[1].append(array)
        results.extend(run.resolve_chunk(len(chunk), pos_pairs, neg_pairs))
    run.finish(len(event_list), started)
    return results
