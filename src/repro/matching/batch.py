"""Vectorized batch matching for the counting engine.

The per-event matcher answers one event at a time: collect fulfilled
entries, one 1-D ``bincount`` per event, compare against ``pmin``.  For
event *streams* that leaves most of numpy's throughput on the table —
the candidate test is embarrassingly parallel across events, and so are
the index probes themselves once the batch is **columnar**.

:func:`counting_match_batch` evaluates a whole batch at once:

1. the batch is columnarized (per-attribute value arrays and presence
   rows, built once per :class:`~repro.events.EventBatch` and cached on
   it), and every index probe runs once per batch: range probes as one
   vectorized ``searchsorted`` over the attribute's value column,
   equality probes as one dictionary lookup per distinct value — the
   probes emit aligned ``(row, entry)`` contribution pair arrays;
2. a single ``bincount`` over ``row * slot_count + slot`` turns the
   pairs into the 2-D fulfilled-count matrix ``counts[event, slot]``;
3. the candidate test ``counts >= pmin`` runs as one 2-D comparison;
4. only the surviving (event, candidate) pairs fall back to scalar work:
   flat shapes are decided by the counter, general trees are evaluated
   against that event's row of the 2-D entry-flag matrix.

:func:`counting_match_batch_rowwise` keeps the previous per-event probe
loop (scalar :meth:`~repro.matching.predicate_index.PredicateIndexSet.collect`
per event, shared 2-D bincount): it is the reference the columnar path
is benchmarked and property-tested against.  Both are equivalent to
looping :meth:`~repro.matching.counting.CountingMatcher.match` — the
per-event oracle.

Batches are processed in bounded chunks so the 2-D scratch matrices
(``chunk × slot_count`` counts and ``chunk × entry_capacity`` flags)
stay cache- and memory-friendly regardless of batch length.

>>> from repro.events import Event, EventBatch
>>> from repro.matching.counting import CountingMatcher
>>> from repro.subscriptions import P, Subscription
>>> engine = CountingMatcher()
>>> engine.register(Subscription(1, P("price") <= 10))
>>> batch = EventBatch([Event({"price": 5}), Event({"price": 50})])
>>> engine.match_batch(batch)
[[1], []]
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Sequence, Union

import numpy as np

from repro.events import Event, EventBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.matching.counting import CountingMatcher

#: What batch entry points accept: a plain event sequence or a (possibly
#: already columnarized) event batch.
Events = Union[Sequence[Event], EventBatch]

#: Soft bound on scratch-matrix cells per chunk (counts + flags rows).
_CHUNK_CELL_BUDGET = 2_000_000
_MAX_CHUNK = 512


def _chunk_size(slot_count: int, entry_capacity: int) -> int:
    """Events per chunk keeping 2-D scratch matrices modestly sized."""
    cells_per_event = max(1, slot_count + entry_capacity)
    return max(1, min(_MAX_CHUNK, _CHUNK_CELL_BUDGET // cells_per_event))


class _BatchRun:
    """Shared scaffolding of one batch-matching pass over a matcher.

    Snapshots the matcher's slot/entry arrays, owns the chunked
    count-candidate-evaluate pipeline, and accounts statistics exactly as
    the per-event path would (one event counted per batch element).
    """

    def __init__(self, matcher: "CountingMatcher") -> None:
        self.matcher = matcher
        self.slot_count = len(matcher._slots)
        self.entry_capacity = matcher._indexes.entry_capacity
        self.entry_slot = matcher._entry_slot[: self.entry_capacity]
        self.pmin = matcher._pmin[: self.slot_count]
        self.matches_total = 0
        self.candidates_total = 0
        self.evaluations_total = 0
        self.fulfilled_total = 0

    def resolve_chunk(
        self,
        chunk_rows: int,
        pos_pairs,
        neg_pairs,
    ) -> List[List[int]]:
        """Counts → candidate test → scalar fallback for one chunk.

        ``pos_pairs`` / ``neg_pairs`` are ``(rows_arrays, entry_arrays)``
        pair-list accumulators (aligned, equal-length arrays).
        """
        from repro.matching.counting import (
            _KIND_FALSE,
            _KIND_TREE,
            _evaluate_compiled,
        )

        slot_count = self.slot_count
        flags = np.zeros((chunk_rows, self.entry_capacity), dtype=bool)
        counts = np.zeros((chunk_rows, slot_count), dtype=np.int64)
        if pos_pairs[0]:
            rows = np.concatenate(pos_pairs[0])
            entries = np.concatenate(pos_pairs[1])
            flags[rows, entries] = True
            counts = np.bincount(
                rows * slot_count + self.entry_slot[entries],
                minlength=chunk_rows * slot_count,
            ).reshape(chunk_rows, slot_count)
        if neg_pairs[0]:
            rows = np.concatenate(neg_pairs[0])
            entries = np.concatenate(neg_pairs[1])
            flags[rows, entries] = False
            counts -= np.bincount(
                rows * slot_count + self.entry_slot[entries],
                minlength=chunk_rows * slot_count,
            ).reshape(chunk_rows, slot_count)

        self.fulfilled_total += int(counts.sum())

        chunk_matched: List[List[int]] = [[] for _ in range(chunk_rows)]
        if slot_count:
            slots = self.matcher._slots
            slot_ids = self.matcher._slot_ids
            cand_rows, cand_slots = np.nonzero(counts >= self.pmin[np.newaxis, :])
            self.candidates_total += len(cand_rows)
            for row, slot in zip(cand_rows.tolist(), cand_slots.tolist()):
                state = slots[slot]
                kind = state.kind
                if kind == _KIND_TREE:
                    self.evaluations_total += 1
                    if _evaluate_compiled(state.program, flags[row]):
                        chunk_matched[row].append(int(slot_ids[slot]))
                elif kind != _KIND_FALSE:
                    chunk_matched[row].append(int(slot_ids[slot]))
        for matched in chunk_matched:
            matched.sort()
            self.matches_total += len(matched)
        return chunk_matched

    def finish(self, event_count: int, started: float) -> None:
        stats = self.matcher.statistics
        stats.events += event_count
        stats.matches += self.matches_total
        stats.candidates += self.candidates_total
        stats.tree_evaluations += self.evaluations_total
        stats.fulfilled_predicates += self.fulfilled_total
        stats.elapsed_seconds += time.perf_counter() - started


def counting_match_batch(
    matcher: "CountingMatcher", events: Events
) -> List[List[int]]:
    """Match every event of ``events``; returns one id list per event.

    The columnar fast path: probes run once per batch over the batch's
    columns (built lazily and cached when ``events`` is an
    :class:`EventBatch`).  Produces exactly the same match sets as
    calling :meth:`~repro.matching.counting.CountingMatcher.match` per
    event, and updates the matcher's statistics identically.
    """
    started = time.perf_counter()
    batch = EventBatch.coerce(events)
    count = len(batch.events)
    run = _BatchRun(matcher)
    columns = batch.columns()
    results: List[List[int]] = []
    chunk_size = _chunk_size(run.slot_count, run.entry_capacity)
    for chunk_start in range(0, count, chunk_size):
        chunk_stop = min(count, chunk_start + chunk_size)
        if chunk_start == 0 and chunk_stop == count:
            chunk_columns = columns
        else:
            chunk_columns = columns.slice_rows(chunk_start, chunk_stop)
        pos_pairs: tuple = ([], [])
        neg_pairs: tuple = ([], [])
        matcher._indexes.collect_batch(chunk_columns, pos_pairs, neg_pairs)
        results.extend(
            run.resolve_chunk(chunk_stop - chunk_start, pos_pairs, neg_pairs)
        )
    run.finish(count, started)
    return results


def counting_match_batch_rowwise(
    matcher: "CountingMatcher", events: Events
) -> List[List[int]]:
    """Match a batch with per-event index probes (reference path).

    Identical results and statistics to :func:`counting_match_batch`;
    the probes loop over events in Python and only the candidate test is
    batch-vectorized.  Kept as the benchmark baseline and equivalence
    reference for the columnar probe.
    """
    started = time.perf_counter()
    event_list = EventBatch.coerce(events).events
    run = _BatchRun(matcher)
    results: List[List[int]] = []
    chunk_size = _chunk_size(run.slot_count, run.entry_capacity)
    for chunk_start in range(0, len(event_list), chunk_size):
        chunk = event_list[chunk_start:chunk_start + chunk_size]
        pos_pairs: tuple = ([], [])
        neg_pairs: tuple = ([], [])
        for row, event in enumerate(chunk):
            positives: List[np.ndarray] = []
            negatives: List[np.ndarray] = []
            for attribute, value in event.items():
                matcher._indexes.collect(attribute, value, positives, negatives)
            for array in positives:
                if len(array):
                    pos_pairs[0].append(np.full(len(array), row, dtype=np.int64))
                    pos_pairs[1].append(array)
            for array in negatives:
                if len(array):
                    neg_pairs[0].append(np.full(len(array), row, dtype=np.int64))
                    neg_pairs[1].append(array)
        results.extend(run.resolve_chunk(len(chunk), pos_pairs, neg_pairs))
    run.finish(len(event_list), started)
    return results
