"""Vectorized batch matching for the counting engine.

The per-event matcher answers one event at a time: collect fulfilled
entries, one 1-D ``bincount`` per event, compare against ``pmin``.  For
event *streams* that leaves most of numpy's throughput on the table —
the candidate test is embarrassingly parallel across events.

:func:`counting_match_batch` evaluates a whole batch at once:

1. fulfilled-entry arrays are collected per event (index probes are
   inherently per-value) but concatenated into **one** flat array with an
   aligned event-row array;
2. a single ``bincount`` over ``row * slot_count + slot`` produces the
   2-D fulfilled-count matrix ``counts[event, slot]`` for the batch;
3. the candidate test ``counts >= pmin`` runs as one 2-D comparison;
4. only the surviving (event, candidate) pairs fall back to scalar work:
   flat shapes are decided by the counter, general trees are evaluated
   against that event's row of the 2-D entry-flag matrix.

Batches are processed in bounded chunks so the 2-D scratch matrices
(``chunk × slot_count`` counts and ``chunk × entry_capacity`` flags)
stay cache- and memory-friendly regardless of batch length.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from repro.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.matching.counting import CountingMatcher

#: Soft bound on scratch-matrix cells per chunk (counts + flags rows).
_CHUNK_CELL_BUDGET = 2_000_000
_MAX_CHUNK = 512


def _chunk_size(slot_count: int, entry_capacity: int) -> int:
    """Events per chunk keeping 2-D scratch matrices modestly sized."""
    cells_per_event = max(1, slot_count + entry_capacity)
    return max(1, min(_MAX_CHUNK, _CHUNK_CELL_BUDGET // cells_per_event))


def counting_match_batch(
    matcher: "CountingMatcher", events: Sequence[Event]
) -> List[List[int]]:
    """Match every event of ``events``; returns one id list per event.

    Produces exactly the same match sets as calling
    :meth:`~repro.matching.counting.CountingMatcher.match` per event, and
    updates the matcher's statistics identically (one event counted per
    batch element).
    """
    from repro.matching.counting import (
        _KIND_FALSE,
        _KIND_TREE,
        _evaluate_compiled,
    )

    started = time.perf_counter()
    events = list(events)
    results: List[List[int]] = []
    slot_count = len(matcher._slots)
    entry_capacity = matcher._indexes.entry_capacity
    entry_slot = matcher._entry_slot[:entry_capacity]
    pmin = matcher._pmin[:slot_count]
    slot_ids = matcher._slot_ids
    slots = matcher._slots
    stats = matcher.statistics

    matches_total = 0
    candidates_total = 0
    evaluations_total = 0
    fulfilled_total = 0

    chunk_size = _chunk_size(slot_count, entry_capacity)
    for chunk_start in range(0, len(events), chunk_size):
        chunk = events[chunk_start:chunk_start + chunk_size]
        chunk_rows = len(chunk)

        # 1. Probe the indexes per event, accumulating flat arrays.
        pos_arrays: List[np.ndarray] = []
        pos_rows: List[int] = []
        neg_arrays: List[np.ndarray] = []
        neg_rows: List[int] = []
        for row, event in enumerate(chunk):
            positives: List[np.ndarray] = []
            negatives: List[np.ndarray] = []
            for attribute, value in event.items():
                matcher._indexes.collect(attribute, value, positives, negatives)
            for array in positives:
                if len(array):
                    pos_arrays.append(array)
                    pos_rows.append(row)
            for array in negatives:
                if len(array):
                    neg_arrays.append(array)
                    neg_rows.append(row)

        # 2. One 2-D fulfilled matrix for the whole chunk.
        flags = np.zeros((chunk_rows, entry_capacity), dtype=bool)
        counts = np.zeros((chunk_rows, slot_count), dtype=np.int64)
        if pos_arrays:
            pos_entries = np.concatenate(pos_arrays)
            rows = np.repeat(
                np.array(pos_rows, dtype=np.int64),
                np.array([len(a) for a in pos_arrays], dtype=np.int64),
            )
            flags[rows, pos_entries] = True
            counts = np.bincount(
                rows * slot_count + entry_slot[pos_entries],
                minlength=chunk_rows * slot_count,
            ).reshape(chunk_rows, slot_count)
        if neg_arrays:
            neg_entries = np.concatenate(neg_arrays)
            rows = np.repeat(
                np.array(neg_rows, dtype=np.int64),
                np.array([len(a) for a in neg_arrays], dtype=np.int64),
            )
            flags[rows, neg_entries] = False
            counts -= np.bincount(
                rows * slot_count + entry_slot[neg_entries],
                minlength=chunk_rows * slot_count,
            ).reshape(chunk_rows, slot_count)

        fulfilled_total += int(counts.sum())

        # 3. Candidate test, vectorized across the chunk.
        chunk_matched: List[List[int]] = [[] for _ in range(chunk_rows)]
        if slot_count:
            cand_rows, cand_slots = np.nonzero(counts >= pmin[np.newaxis, :])
            candidates_total += len(cand_rows)
            # 4. Scalar fallback only for surviving candidates.
            for row, slot in zip(cand_rows.tolist(), cand_slots.tolist()):
                state = slots[slot]
                kind = state.kind
                if kind == _KIND_TREE:
                    evaluations_total += 1
                    if _evaluate_compiled(state.program, flags[row]):
                        chunk_matched[row].append(int(slot_ids[slot]))
                elif kind != _KIND_FALSE:
                    chunk_matched[row].append(int(slot_ids[slot]))
        for matched in chunk_matched:
            matched.sort()
            matches_total += len(matched)
        results.extend(chunk_matched)

    stats.events += len(events)
    stats.matches += matches_total
    stats.candidates += candidates_total
    stats.tree_evaluations += evaluations_total
    stats.fulfilled_predicates += fulfilled_total
    stats.elapsed_seconds += time.perf_counter() - started
    return results
