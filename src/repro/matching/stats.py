"""Counters describing the work a filtering engine performed.

The counting engine's efficiency claim (paper Sect. 3.3) is that most
subscriptions are never *evaluated*: the fulfilled-predicate count stays
below ``pmin``.  These statistics expose exactly that: how many candidate
subscriptions crossed their threshold, and how many needed a full Boolean
tree evaluation.
"""

from __future__ import annotations


class MatchStatistics:
    """Aggregated matching counters.

    Attributes
    ----------
    events:
        Number of events processed.
    matches:
        Total number of (event, subscription) matches.
    candidates:
        Subscriptions whose fulfilled-predicate count reached ``pmin``.
    tree_evaluations:
        Candidates that required a full Boolean tree evaluation (flat
        conjunctions/disjunctions are decided by the counter alone).
    fulfilled_predicates:
        Total number of fulfilled predicate instances across all events.
    elapsed_seconds:
        Wall-clock time spent inside ``match`` calls.
    """

    __slots__ = (
        "events",
        "matches",
        "candidates",
        "tree_evaluations",
        "fulfilled_predicates",
        "elapsed_seconds",
    )

    def __init__(self) -> None:
        self.events = 0
        self.matches = 0
        self.candidates = 0
        self.tree_evaluations = 0
        self.fulfilled_predicates = 0
        self.elapsed_seconds = 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.events = 0
        self.matches = 0
        self.candidates = 0
        self.tree_evaluations = 0
        self.fulfilled_predicates = 0
        self.elapsed_seconds = 0.0

    def merge(self, other: "MatchStatistics") -> None:
        """Accumulate ``other`` into this instance."""
        self.events += other.events
        self.matches += other.matches
        self.candidates += other.candidates
        self.tree_evaluations += other.tree_evaluations
        self.fulfilled_predicates += other.fulfilled_predicates
        self.elapsed_seconds += other.elapsed_seconds

    @property
    def mean_time_per_event(self) -> float:
        """Average seconds per processed event (0.0 before any event)."""
        if not self.events:
            return 0.0
        return self.elapsed_seconds / self.events

    @property
    def match_rate(self) -> float:
        """Average number of matching subscriptions per event."""
        if not self.events:
            return 0.0
        return self.matches / self.events

    def as_dict(self) -> dict:
        """Plain-dict snapshot (for reports and benchmark extra_info)."""
        return {
            "events": self.events,
            "matches": self.matches,
            "candidates": self.candidates,
            "tree_evaluations": self.tree_evaluations,
            "fulfilled_predicates": self.fulfilled_predicates,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def __repr__(self) -> str:
        return (
            "MatchStatistics(events=%d, matches=%d, candidates=%d, "
            "tree_evaluations=%d, fulfilled_predicates=%d, elapsed=%.6fs)"
            % (
                self.events,
                self.matches,
                self.candidates,
                self.tree_evaluations,
                self.fulfilled_predicates,
                self.elapsed_seconds,
            )
        )
