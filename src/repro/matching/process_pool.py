"""Persistent per-shard matcher workers in separate processes.

The thread executor of :class:`~repro.matching.sharded.ShardedMatcher`
only overlaps where numpy releases the GIL; probe-bound workloads stay
serialized.  This module hosts each shard's
:class:`~repro.matching.counting.CountingMatcher` in its own **worker
process**, so shards run on real cores regardless of what the per-shard
work is made of.

Protocol (one duplex pipe per shard; the parent is the only client):

* every request is ``(command, ops, payload)``.  ``ops`` is the shard's
  drained **subscription log** — compact dict operations
  (:func:`repro.subscriptions.serialize.op_to_dict`) the worker applies
  *before* serving the command, which is what keeps the worker's table
  replica exactly in sync with the parent's authority table without
  ever re-pickling whole tables.  The same replay path rebuilds a
  worker from scratch after a restart (the parent seeds the log with
  one ``register`` op per live subscription) — i.e. the log *is* the
  broker restart/migration machinery;
* ``match`` carries a :class:`~repro.matching.shm.PackedColumns` batch
  header; the worker attaches the shared segment, matches over
  zero-copy views, and answers ``(per-event id lists, counter deltas)``
  — the four path-independent :class:`~repro.matching.stats.
  MatchStatistics` counters, measured around this one call, so the
  parent's aggregate merges bit-identically to an unsharded engine;
* ``introspect`` answers table/entry counts, ``fulfilled`` a
  diagnostics query, ``sync`` just drains ops, ``stop`` shuts the
  worker down.

Replies are ``("ok", result)`` or ``("error", description)``; worker
death is detected by liveness polling in :meth:`ShardWorkerPool.recv`.
Workers are daemonic — an abandoned pool dies with the parent — and
:meth:`ShardWorkerPool.close` is the graceful, idempotent teardown.
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing.connection import Connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import MatchingError
from repro.events import Event, EventBatch
from repro.matching.counting import CountingMatcher
from repro.matching.shm import PackedColumns, unpack_columns
from repro.subscriptions.serialize import op_from_dict

#: Environment override for the worker start method (``fork``/``spawn``/
#: ``forkserver``); unset uses the platform default.  CI exercises
#: ``spawn`` explicitly — the method every platform supports.
START_METHOD_ENV = "REPRO_SHARD_START_METHOD"

#: Seconds between liveness checks while waiting for a worker reply.
_POLL_INTERVAL = 0.05

#: The four path-independent counters, in
#: :class:`~repro.matching.stats.MatchStatistics` order.
CounterDeltas = Tuple[int, int, int, int]


def _counter_tuple(matcher: CountingMatcher) -> CounterDeltas:
    stats = matcher.statistics
    return (
        stats.matches,
        stats.candidates,
        stats.tree_evaluations,
        stats.fulfilled_predicates,
    )


def apply_op(matcher: CountingMatcher, data: Dict[str, Any]) -> None:
    """Apply one subscription-log operation to a matcher replica."""
    action, payload = op_from_dict(data)
    if action == "register":
        matcher.register(payload)
    elif action == "replace":
        matcher.replace(payload)
    elif action == "unregister":
        matcher.unregister(payload)
    else:
        matcher.rebuild()


def serve_match(
    matcher: CountingMatcher, packed: PackedColumns
) -> Tuple[List[List[int]], CounterDeltas]:
    """Match a packed batch; returns per-event id lists and deltas.

    All shared-segment views are dropped before the segment is closed
    (a still-exported view would make ``close()`` raise
    ``BufferError``), so the worker never pins the creator's segment.
    """
    columns, segment = unpack_columns(packed)
    try:
        return _match_columns(matcher, columns)
    finally:
        columns = None  # noqa: F841 - drops the view refs before close
        if segment is not None:
            segment.close()


def _match_columns(
    matcher: CountingMatcher, columns
) -> Tuple[List[List[int]], CounterDeltas]:
    before = _counter_tuple(matcher)
    if matcher.subscription_count:
        matched = matcher.match_batch(EventBatch.from_columns(columns))
    else:
        matched = [[] for _ in range(columns.row_count)]
    after = _counter_tuple(matcher)
    return matched, tuple(a - b for a, b in zip(after, before))


def serve_introspect(matcher: CountingMatcher) -> Tuple[int, int, int, int]:
    """``(subscriptions, entries, tree slots, negated entries)``."""
    return (
        matcher.subscription_count,
        matcher.entry_count,
        matcher.tree_slot_count,
        matcher.negated_entry_count,
    )


def shard_worker_main(
    connection: Connection, compact_free_fraction: Optional[float]
) -> None:
    """One shard worker's request loop (the worker process target).

    Also runnable in a thread over an in-process pipe — that is how the
    unit tests cover this loop without forking.
    """
    matcher = CountingMatcher(compact_free_fraction)
    while True:
        try:
            command, ops, payload = connection.recv()
        except (EOFError, OSError):
            break
        if command == "stop":
            connection.send(("ok", None))
            break
        try:
            for op in ops:
                apply_op(matcher, op)
            result: Any
            if command == "match":
                result = serve_match(matcher, payload)
            elif command == "introspect":
                result = serve_introspect(matcher)
            elif command == "fulfilled":
                result = matcher.fulfilled_counts(Event(payload))
            elif command == "sync":
                result = None
            else:
                raise MatchingError("unknown shard command %r" % (command,))
            connection.send(("ok", result))
        except BaseException as exc:  # the loop must survive bad requests
            connection.send(("error", "%s: %s" % (type(exc).__name__, exc)))
    connection.close()


class ShardWorkerPool:
    """K persistent shard workers behind per-shard duplex pipes.

    ``start_method`` picks the :mod:`multiprocessing` start method
    (``None`` → the :data:`START_METHOD_ENV` variable, else the
    platform default).  Requests are explicitly split into
    :meth:`send` / :meth:`recv` so the parent can fan a batch out to
    every shard before collecting any reply — that overlap *is* the
    parallelism.
    """

    def __init__(
        self,
        shard_count: int,
        compact_free_fraction: Optional[float] = 0.5,
        start_method: Optional[str] = None,
        fault_injector: Any = None,
    ) -> None:
        method = start_method or os.environ.get(START_METHOD_ENV) or None
        context = multiprocessing.get_context(method)
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._connections: List[Connection] = []
        self._closed = False
        #: Optional chaos hook (``before_send(pool, shard, command)``),
        #: e.g. :class:`repro.faults.WorkerFaultInjector`; consulted on
        #: every dispatch so injected crashes ride the real request path.
        self.fault_injector = fault_injector
        for index in range(shard_count):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=shard_worker_main,
                args=(child_end, compact_free_fraction),
                name="repro-shard-%d" % index,
                daemon=True,
            )
            process.start()
            child_end.close()
            self._processes.append(process)
            self._connections.append(parent_end)

    def __len__(self) -> int:
        return len(self._processes)

    @property
    def alive(self) -> bool:
        """Whether every worker process is still running."""
        return not self._closed and all(
            process.is_alive() for process in self._processes
        )

    def send(
        self,
        shard: int,
        command: str,
        ops: Sequence[Dict[str, Any]] = (),
        payload: Any = None,
    ) -> None:
        """Dispatch a request to one shard worker (non-blocking)."""
        if self._closed:
            raise MatchingError("shard worker pool is closed")
        if self.fault_injector is not None:
            self.fault_injector.before_send(self, shard, command)
        try:
            self._connections[shard].send((command, list(ops), payload))
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise MatchingError(
                "shard worker %d is unreachable: %s" % (shard, exc)
            )

    def recv(self, shard: int) -> Any:
        """Collect one shard's reply; raises if the worker failed/died."""
        process = self._processes[shard]
        connection = self._connections[shard]
        while not connection.poll(_POLL_INTERVAL):
            if not process.is_alive():
                raise MatchingError(
                    "shard worker %d terminated unexpectedly (exitcode %r)"
                    % (shard, process.exitcode)
                )
        try:
            status, result = connection.recv()
        except (EOFError, OSError) as exc:
            raise MatchingError(
                "shard worker %d hung up mid-reply: %s" % (shard, exc)
            )
        if status == "error":
            raise MatchingError("shard worker %d failed: %s" % (shard, result))
        return result

    def kill_worker(self, shard: int) -> None:
        """Terminate one shard's worker process, as a crash would.

        The pipe stays open on the parent side; the next :meth:`recv`
        for the shard reports the death via its liveness poll.  Used by
        fault injection; harmless on an already-dead worker.
        """
        process = self._processes[shard]
        process.terminate()
        process.join(5.0)

    def request(
        self,
        shard: int,
        command: str,
        ops: Sequence[Dict[str, Any]] = (),
        payload: Any = None,
    ) -> Any:
        """One round trip to one shard."""
        self.send(shard, command, ops, payload)
        return self.recv(shard)

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker (graceful, then terminate); idempotent."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("stop", (), None))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for process, connection in zip(self._processes, self._connections):
            try:
                if connection.poll(timeout):
                    connection.recv()
            except (EOFError, OSError):
                pass
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - hung worker path
                process.terminate()
                process.join(timeout)
            connection.close()

    def __repr__(self) -> str:
        return "ShardWorkerPool(%d workers%s)" % (
            len(self._processes),
            ", closed" if self._closed else "",
        )
