"""The counting-based filtering engine.

Modelled on the non-canonical Boolean filtering algorithm of Bittner &
Hinze (CoopIS 2005; the paper's ref [2]):

1. every predicate leaf of every registered subscription is an *entry* in a
   per-attribute operator index (:mod:`repro.matching.predicate_index`);
2. for each event, the indexes report all fulfilled entries; a vectorized
   ``bincount`` turns them into a fulfilled-predicate count per
   subscription;
3. a subscription is a *candidate* only when its count reaches ``pmin`` —
   the minimal number of fulfilled predicates that can possibly fulfil it
   (paper Sect. 3.3);
4. candidates that are flat conjunctions, flat disjunctions, single
   predicates, or constants are decided by the counter alone; only general
   trees are actually evaluated, against the per-entry truth flags.

Pruning a subscription lowers its tree size and (usually) its ``pmin``;
this engine is exactly where the paper's throughput dimension becomes
measurable.

Mutations (register/unregister/replace) mark the engine dirty; indexes are
rebuilt lazily before the next match.  The experiment harness applies
thousands of prunings between measurement points, so batched rebuilds are
the right amortization.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MatchingError
from repro.events import Event
from repro.matching.interfaces import Matcher
from repro.matching.predicate_index import PredicateIndexSet
from repro.matching.stats import MatchStatistics
from repro.subscriptions.metrics import PMIN_UNSATISFIABLE
from repro.subscriptions.nodes import (
    AndNode,
    ConstNode,
    Node,
    OrNode,
    PredicateLeaf,
)
from repro.subscriptions.subscription import Subscription

_KIND_TRUE = 0
_KIND_FALSE = 1
_KIND_SINGLE = 2
_KIND_FLAT_AND = 3
_KIND_FLAT_OR = 4
_KIND_TREE = 5

# Compiled evaluator opcodes (nested tuples).
_OP_LEAF = 0
_OP_AND = 1
_OP_OR = 2


def _compile_tree(node: Node, leaf_entries: List[int], cursor: List[int]) -> Tuple:
    """Compile a normalized tree into nested tuples over entry positions.

    ``leaf_entries`` holds the entry id of each predicate leaf in preorder;
    ``cursor`` is a one-element list used as a mutable preorder position.
    """
    if isinstance(node, PredicateLeaf):
        entry = leaf_entries[cursor[0]]
        cursor[0] += 1
        return (_OP_LEAF, entry)
    if isinstance(node, AndNode):
        return (_OP_AND, tuple(
            _compile_tree(child, leaf_entries, cursor) for child in node.children
        ))
    if isinstance(node, OrNode):
        return (_OP_OR, tuple(
            _compile_tree(child, leaf_entries, cursor) for child in node.children
        ))
    raise MatchingError(
        "cannot compile node of type %s (tree must be normalized)"
        % type(node).__name__
    )


def _evaluate_compiled(program: Tuple, flags: np.ndarray) -> bool:
    opcode, operand = program
    if opcode == _OP_LEAF:
        return bool(flags[operand])
    if opcode == _OP_AND:
        for child in operand:
            if not _evaluate_compiled(child, flags):
                return False
        return True
    for child in operand:
        if _evaluate_compiled(child, flags):
            return True
    return False


class _SlotState:
    """Per-subscription compiled state inside the engine."""

    __slots__ = ("subscription", "kind", "program")

    def __init__(self, subscription: Subscription, kind: int, program: Optional[Tuple]):
        self.subscription = subscription
        self.kind = kind
        self.program = program


class CountingMatcher(Matcher):
    """Counting-based filtering engine (see module docstring).

    >>> from repro.subscriptions import P, And, Subscription
    >>> from repro.events import Event
    >>> engine = CountingMatcher()
    >>> engine.register(Subscription(7, And(P("a") == 1, P("b") <= 2.0)))
    >>> engine.match(Event({"a": 1, "b": 1.5}))
    [7]
    >>> engine.match(Event({"a": 1, "b": 9.9}))
    []
    """

    def __init__(self) -> None:
        self._subscriptions: Dict[int, Subscription] = {}
        self._dirty = True
        self.statistics = MatchStatistics()
        # Rebuilt structures:
        self._indexes = PredicateIndexSet()
        self._slots: List[_SlotState] = []
        self._slot_ids: np.ndarray = np.empty(0, dtype=np.int64)
        self._entry_slot: np.ndarray = np.empty(0, dtype=np.int64)
        self._pmin: np.ndarray = np.empty(0, dtype=np.int64)
        self._always_true_ids: List[int] = []

    # -- registration ---------------------------------------------------------

    def register(self, subscription: Subscription) -> None:
        self._require_unknown(subscription.id)
        self._subscriptions[subscription.id] = subscription
        self._dirty = True

    def unregister(self, subscription_id: int) -> None:
        self._require_known(subscription_id)
        del self._subscriptions[subscription_id]
        self._dirty = True

    def replace(self, subscription: Subscription) -> None:
        self._require_known(subscription.id)
        self._subscriptions[subscription.id] = subscription
        self._dirty = True

    def subscriptions(self) -> Dict[int, Subscription]:
        return self._subscriptions

    # -- index construction ---------------------------------------------------

    def rebuild(self) -> None:
        """Rebuild all index structures from the current subscription set."""
        self._indexes = PredicateIndexSet()
        self._slots = []
        self._always_true_ids = []
        entry_slot: List[int] = []
        pmins: List[int] = []
        ids = sorted(self._subscriptions)
        for slot, sub_id in enumerate(ids):
            subscription = self._subscriptions[sub_id]
            tree = subscription.tree
            leaf_entries: List[int] = []
            for _path, node in tree.iter_nodes():
                if isinstance(node, PredicateLeaf):
                    entry = self._indexes.add(node.predicate)
                    leaf_entries.append(entry)
                    entry_slot.append(slot)
            kind, program = self._classify(tree, leaf_entries)
            if kind == _KIND_TRUE:
                self._always_true_ids.append(sub_id)
            self._slots.append(_SlotState(subscription, kind, program))
            pmins.append(min(subscription.pmin, PMIN_UNSATISFIABLE))
        self._indexes.finalize()
        self._slot_ids = np.array(ids, dtype=np.int64)
        self._entry_slot = np.array(entry_slot, dtype=np.int64)
        self._pmin = np.array(pmins, dtype=np.int64)
        self._dirty = False

    @staticmethod
    def _classify(tree: Node, leaf_entries: List[int]) -> Tuple[int, Optional[Tuple]]:
        if isinstance(tree, ConstNode):
            return (_KIND_TRUE, None) if tree.value else (_KIND_FALSE, None)
        if isinstance(tree, PredicateLeaf):
            return _KIND_SINGLE, None
        if isinstance(tree, AndNode) and all(
            isinstance(child, PredicateLeaf) for child in tree.children
        ):
            return _KIND_FLAT_AND, None
        if isinstance(tree, OrNode) and all(
            isinstance(child, PredicateLeaf) for child in tree.children
        ):
            return _KIND_FLAT_OR, None
        return _KIND_TREE, _compile_tree(tree, leaf_entries, [0])

    # -- matching ---------------------------------------------------------------

    def match(self, event: Event) -> List[int]:
        started = time.perf_counter()
        if self._dirty:
            self.rebuild()
        positives: List[np.ndarray] = []
        negatives: List[np.ndarray] = []
        for attribute, value in event.items():
            self._indexes.collect(attribute, value, positives, negatives)

        slot_count = len(self._slots)
        entry_count = self._indexes.entry_count
        flags = np.zeros(entry_count, dtype=bool)
        counts = np.zeros(slot_count, dtype=np.int64)
        if positives:
            hit_entries = np.concatenate(positives)
            flags[hit_entries] = True
            counts = np.bincount(
                self._entry_slot[hit_entries], minlength=slot_count
            ).astype(np.int64)
        if negatives:
            miss_entries = np.concatenate(negatives)
            flags[miss_entries] = False
            counts -= np.bincount(
                self._entry_slot[miss_entries], minlength=slot_count
            )

        fulfilled_total = int(counts.sum()) if slot_count else 0
        matched: List[int] = []
        candidates = np.nonzero(counts >= self._pmin)[0] if slot_count else []
        candidate_count = 0
        evaluations = 0
        for slot in candidates:
            state = self._slots[slot]
            candidate_count += 1
            kind = state.kind
            if kind == _KIND_TREE:
                evaluations += 1
                if _evaluate_compiled(state.program, flags):
                    matched.append(int(self._slot_ids[slot]))
            elif kind != _KIND_FALSE:
                # TRUE, SINGLE, FLAT_AND, FLAT_OR: reaching pmin decides.
                matched.append(int(self._slot_ids[slot]))

        stats = self.statistics
        stats.events += 1
        stats.matches += len(matched)
        stats.candidates += candidate_count
        stats.tree_evaluations += evaluations
        stats.fulfilled_predicates += fulfilled_total
        stats.elapsed_seconds += time.perf_counter() - started
        return matched

    # -- introspection ----------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Number of predicate entries in the (possibly stale) index."""
        if self._dirty:
            self.rebuild()
        return self._indexes.entry_count

    def fulfilled_counts(self, event: Event) -> Dict[int, int]:
        """Fulfilled-predicate count per subscription id (diagnostics)."""
        if self._dirty:
            self.rebuild()
        positives: List[np.ndarray] = []
        negatives: List[np.ndarray] = []
        for attribute, value in event.items():
            self._indexes.collect(attribute, value, positives, negatives)
        counts = np.zeros(len(self._slots), dtype=np.int64)
        if positives:
            counts = np.bincount(
                self._entry_slot[np.concatenate(positives)],
                minlength=len(self._slots),
            ).astype(np.int64)
        if negatives:
            counts -= np.bincount(
                self._entry_slot[np.concatenate(negatives)],
                minlength=len(self._slots),
            )
        return {
            int(self._slot_ids[slot]): int(counts[slot])
            for slot in range(len(self._slots))
        }
