"""The counting-based filtering engine.

Modelled on the non-canonical Boolean filtering algorithm of Bittner &
Hinze (CoopIS 2005; the paper's ref [2]):

1. every predicate leaf of every registered subscription is an *entry* in a
   per-attribute operator index (:mod:`repro.matching.predicate_index`);
2. for each event, the indexes report all fulfilled entries; a vectorized
   ``bincount`` turns them into a fulfilled-predicate count per
   subscription;
3. a subscription is a *candidate* only when its count reaches ``pmin`` —
   the minimal number of fulfilled predicates that can possibly fulfil it
   (paper Sect. 3.3);
4. candidates that are flat conjunctions, flat disjunctions, single
   predicates, or constants are decided by the counter alone; only general
   trees are actually evaluated, against the per-entry truth flags.

Pruning a subscription lowers its tree size and (usually) its ``pmin``;
this engine is exactly where the paper's throughput dimension becomes
measurable.

Mutations (register/unregister/replace) are applied **incrementally**:
each one updates only the index buckets and slot arrays the subscription
touches, so churn costs O(subscription size), not O(table).  Slot and
entry ids come from free lists and are recycled; :meth:`rebuild` survives
as compaction that re-packs both id spaces in subscription-id order, and
runs automatically when unregistration leaves the free lists holding
more than ``compact_free_fraction`` of the live population (long churny
lifetimes would otherwise fragment the slot/entry arrays).  Batches of
events go through :meth:`CountingMatcher.match_batch`
(:mod:`repro.matching.batch`), which probes the indexes once per batch
over the batch's columnar view and evaluates the candidate test for the
whole batch with one 2-D bincount instead of per-event 1-D passes.
General trees are additionally compiled into a shared flat program
(:mod:`repro.matching.treeval`, maintained under the same incremental
churn) so the batch path can evaluate each surviving tree against all
of its candidate events at once; the recursive ``_evaluate_compiled``
survives as the per-event path and the vectorized path's oracle.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import MatchingError
from repro.events import Event, EventBatch
from repro.matching.interfaces import Matcher
from repro.matching.predicate_index import PredicateIndexSet
from repro.matching.stats import MatchStatistics
from repro.matching.treeval import OP_AND, OP_LEAF, OP_OR, TreePrograms
from repro.subscriptions.metrics import PMIN_UNSATISFIABLE
from repro.subscriptions.nodes import (
    AndNode,
    ConstNode,
    Node,
    OrNode,
    PredicateLeaf,
)
from repro.subscriptions.predicates import Predicate
from repro.subscriptions.subscription import Subscription

_KIND_TRUE = 0
_KIND_FALSE = 1
_KIND_SINGLE = 2
_KIND_FLAT_AND = 3
_KIND_FLAT_OR = 4
_KIND_TREE = 5

# Compiled evaluator opcodes (nested tuples), shared with the columnar
# evaluator in :mod:`repro.matching.treeval`.
_OP_LEAF = OP_LEAF
_OP_AND = OP_AND
_OP_OR = OP_OR

#: pmin sentinel of a free slot — no fulfilled-count can ever reach it.
_PMIN_FREE = PMIN_UNSATISFIABLE + 1

#: Compaction floor: below this many free ids, fragmentation is noise and
#: auto-compaction never triggers (keeps small tables O(delta) under churn).
_COMPACT_MIN_FREE = 64


def _compile_tree(node: Node, leaf_entries: List[int], cursor: List[int]) -> Tuple:
    """Compile a normalized tree into nested tuples over entry positions.

    ``leaf_entries`` holds the entry id of each predicate leaf in preorder;
    ``cursor`` is a one-element list used as a mutable preorder position.
    """
    if isinstance(node, PredicateLeaf):
        entry = leaf_entries[cursor[0]]
        cursor[0] += 1
        return (_OP_LEAF, entry)
    if isinstance(node, AndNode):
        return (_OP_AND, tuple(
            _compile_tree(child, leaf_entries, cursor) for child in node.children
        ))
    if isinstance(node, OrNode):
        return (_OP_OR, tuple(
            _compile_tree(child, leaf_entries, cursor) for child in node.children
        ))
    raise MatchingError(
        "cannot compile node of type %s (tree must be normalized)"
        % type(node).__name__
    )


def _evaluate_compiled(program: Tuple, flags: np.ndarray) -> bool:
    opcode, operand = program
    if opcode == _OP_LEAF:
        return bool(flags[operand])
    if opcode == _OP_AND:
        for child in operand:
            if not _evaluate_compiled(child, flags):
                return False
        return True
    for child in operand:
        if _evaluate_compiled(child, flags):
            return True
    return False


class _SlotState:
    """Per-subscription compiled state inside the engine."""

    __slots__ = ("subscription", "kind", "program", "entries", "predicates")

    def __init__(
        self,
        subscription: Subscription,
        kind: int,
        program: Optional[Tuple],
        entries: List[int],
        predicates: List[Predicate],
    ) -> None:
        self.subscription = subscription
        self.kind = kind
        self.program = program
        self.entries = entries
        self.predicates = predicates


def _grown(array: np.ndarray, needed: int, fill: int) -> np.ndarray:
    """``array`` extended to at least ``needed`` elements (2x doubling)."""
    capacity = len(array)
    if needed <= capacity:
        return array
    new_capacity = max(16, capacity * 2, needed)
    grown = np.full(new_capacity, fill, dtype=array.dtype)
    grown[:capacity] = array
    return grown


class CountingMatcher(Matcher):
    """Counting-based filtering engine (see module docstring).

    >>> from repro.subscriptions import P, And, Subscription
    >>> from repro.events import Event
    >>> engine = CountingMatcher()
    >>> engine.register(Subscription(7, And(P("a") == 1, P("b") <= 2.0)))
    >>> engine.match(Event({"a": 1, "b": 1.5}))
    [7]
    >>> engine.match(Event({"a": 1, "b": 9.9}))
    []
    """

    def __init__(self, compact_free_fraction: Optional[float] = 0.5) -> None:
        #: Auto-compaction threshold: :meth:`unregister` calls
        #: :meth:`rebuild` when either free list exceeds this fraction of
        #: its live population (``None`` disables auto-compaction).
        self.compact_free_fraction = compact_free_fraction
        self._subscriptions: Dict[int, Subscription] = {}
        self.statistics = MatchStatistics()
        self._indexes = PredicateIndexSet()
        #: Slot states; ``None`` marks a free slot awaiting reuse.
        self._slots: List[Optional[_SlotState]] = []
        self._free_slots: List[int] = []
        self._slot_of: Dict[int, int] = {}
        # Entry/slot-aligned arrays, capacity-doubled; logical lengths are
        # ``len(self._slots)`` and ``self._indexes.entry_capacity``.
        self._slot_ids: np.ndarray = np.empty(0, dtype=np.int64)
        self._pmin: np.ndarray = np.empty(0, dtype=np.int64)
        self._kinds: np.ndarray = np.empty(0, dtype=np.int8)
        self._entry_slot: np.ndarray = np.empty(0, dtype=np.int64)
        #: Shared flat compiled-tree program of every _KIND_TREE slot
        #: (see :mod:`repro.matching.treeval`), maintained incrementally.
        self._tree_programs = TreePrograms()
        self._tree_slot_count = 0
        self._negated_entry_count = 0

    # -- registration ---------------------------------------------------------

    def register(self, subscription: Subscription) -> None:
        self._require_unknown(subscription.id)
        self._insert(subscription)

    def unregister(self, subscription_id: int) -> None:
        self._require_known(subscription_id)
        self._withdraw(subscription_id)
        self._maybe_compact()

    def replace(self, subscription: Subscription) -> None:
        self._require_known(subscription.id)
        # The freed slot is reused immediately (LIFO free list), so a
        # replace is an in-place index delta, not a table rebuild.
        self._withdraw(subscription.id)
        self._insert(subscription)

    def subscriptions(self) -> Dict[int, Subscription]:
        return self._subscriptions

    # -- incremental maintenance ----------------------------------------------

    def _insert(self, subscription: Subscription) -> None:
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            slot = len(self._slots)
            self._slots.append(None)
            self._slot_ids = _grown(self._slot_ids, slot + 1, fill=-1)
            self._pmin = _grown(self._pmin, slot + 1, fill=_PMIN_FREE)
            self._kinds = _grown(self._kinds, slot + 1, fill=_KIND_FALSE)
        tree = subscription.tree
        leaf_entries: List[int] = []
        leaf_predicates: List[Predicate] = []
        for _path, node in tree.iter_nodes():
            if isinstance(node, PredicateLeaf):
                entry = self._indexes.add(node.predicate)
                self._entry_slot = _grown(self._entry_slot, entry + 1, fill=-1)
                self._entry_slot[entry] = slot
                leaf_entries.append(entry)
                leaf_predicates.append(node.predicate)
        kind, program = self._classify(tree, leaf_entries)
        self._slots[slot] = _SlotState(
            subscription, kind, program, leaf_entries, leaf_predicates
        )
        self._slot_ids[slot] = subscription.id
        self._pmin[slot] = min(subscription.pmin, PMIN_UNSATISFIABLE)
        self._kinds[slot] = kind
        if kind == _KIND_TREE:
            self._tree_slot_count += 1
            # Oversized trees are refused and keep the scalar evaluator.
            self._tree_programs.compile(slot, program)
        self._negated_entry_count += sum(
            1 for predicate in leaf_predicates if predicate.operator.is_negated
        )
        self._slot_of[subscription.id] = slot
        self._subscriptions[subscription.id] = subscription

    def _withdraw(self, subscription_id: int) -> None:
        slot = self._slot_of.pop(subscription_id)
        state = self._slots[slot]
        for predicate, entry in zip(state.predicates, state.entries):
            self._indexes.remove(predicate, entry)
        if state.kind == _KIND_TREE:
            self._tree_slot_count -= 1
            self._tree_programs.discard(slot)
        self._negated_entry_count -= sum(
            1 for predicate in state.predicates if predicate.operator.is_negated
        )
        self._slots[slot] = None
        self._slot_ids[slot] = -1
        self._pmin[slot] = _PMIN_FREE
        self._kinds[slot] = _KIND_FALSE
        self._free_slots.append(slot)
        del self._subscriptions[subscription_id]

    # -- compaction -----------------------------------------------------------

    def _maybe_compact(self) -> None:
        """Compact when a free list dominates its live population.

        Called after every unregistration (never inside :meth:`replace`,
        whose freed ids are reused immediately): once free slots or free
        entries exceed ``compact_free_fraction`` of the live count — and
        the absolute waste clears a floor so small tables never thrash —
        the table is rebuilt into dense id-ordered layouts.
        """
        fraction = self.compact_free_fraction
        if fraction is None:
            return
        free_slots = len(self._free_slots)
        free_entries = self._indexes.free_entry_count
        if free_slots < _COMPACT_MIN_FREE and free_entries < _COMPACT_MIN_FREE:
            return
        if (
            free_slots > len(self._subscriptions) * fraction
            or free_entries > self._indexes.entry_count * fraction
        ):
            self.rebuild()

    def rebuild(self) -> None:
        """Re-pack slot and entry id spaces in subscription-id order.

        Matching never requires this — indexes are maintained
        incrementally — but long churny lifetimes can fragment the free
        lists; compaction restores dense, id-ordered layouts.  Triggered
        automatically by :meth:`unregister` via the
        ``compact_free_fraction`` heuristic, or callable directly during
        idle periods.
        """
        subscriptions = [
            self._subscriptions[sub_id] for sub_id in sorted(self._subscriptions)
        ]
        self._subscriptions = {}
        self._indexes = PredicateIndexSet()
        self._slots = []
        self._free_slots = []
        self._slot_of = {}
        self._slot_ids = np.empty(0, dtype=np.int64)
        self._pmin = np.empty(0, dtype=np.int64)
        self._kinds = np.empty(0, dtype=np.int8)
        self._entry_slot = np.empty(0, dtype=np.int64)
        self._tree_programs = TreePrograms()
        self._tree_slot_count = 0
        self._negated_entry_count = 0
        for subscription in subscriptions:
            self._insert(subscription)

    @staticmethod
    def _classify(tree: Node, leaf_entries: List[int]) -> Tuple[int, Optional[Tuple]]:
        if isinstance(tree, ConstNode):
            return (_KIND_TRUE, None) if tree.value else (_KIND_FALSE, None)
        if isinstance(tree, PredicateLeaf):
            return _KIND_SINGLE, None
        if isinstance(tree, AndNode) and all(
            isinstance(child, PredicateLeaf) for child in tree.children
        ):
            return _KIND_FLAT_AND, None
        if isinstance(tree, OrNode) and all(
            isinstance(child, PredicateLeaf) for child in tree.children
        ):
            return _KIND_FLAT_OR, None
        return _KIND_TREE, _compile_tree(tree, leaf_entries, [0])

    # -- matching ---------------------------------------------------------------

    def match(self, event: Event) -> List[int]:
        started = time.perf_counter()
        positives: List[np.ndarray] = []
        negatives: List[np.ndarray] = []
        for attribute, value in event.items():
            self._indexes.collect(attribute, value, positives, negatives)

        slot_count = len(self._slots)
        entry_capacity = self._indexes.entry_capacity
        flags = np.zeros(entry_capacity, dtype=bool)
        counts = np.zeros(slot_count, dtype=np.int64)
        entry_slot = self._entry_slot[:entry_capacity]
        if positives:
            hit_entries = np.concatenate(positives)
            flags[hit_entries] = True
            counts = np.bincount(
                entry_slot[hit_entries], minlength=slot_count
            ).astype(np.int64)
        if negatives:
            miss_entries = np.concatenate(negatives)
            flags[miss_entries] = False
            counts -= np.bincount(
                entry_slot[miss_entries], minlength=slot_count
            )

        fulfilled_total = int(counts.sum()) if slot_count else 0
        matched: List[int] = []
        pmin = self._pmin[:slot_count]
        candidates = np.nonzero(counts >= pmin)[0] if slot_count else []
        candidate_count = 0
        evaluations = 0
        for slot in candidates:
            state = self._slots[slot]
            candidate_count += 1
            kind = state.kind
            if kind == _KIND_TREE:
                evaluations += 1
                if _evaluate_compiled(state.program, flags):
                    matched.append(int(self._slot_ids[slot]))
            elif kind != _KIND_FALSE:
                # TRUE, SINGLE, FLAT_AND, FLAT_OR: reaching pmin decides.
                matched.append(int(self._slot_ids[slot]))
        matched.sort()

        stats = self.statistics
        stats.events += 1
        stats.matches += len(matched)
        stats.candidates += candidate_count
        stats.tree_evaluations += evaluations
        stats.fulfilled_predicates += fulfilled_total
        stats.elapsed_seconds += time.perf_counter() - started
        return matched

    def match_batch(
        self, events: Union[Sequence[Event], EventBatch]
    ) -> List[List[int]]:
        """Vectorized batch matching (see :mod:`repro.matching.batch`).

        Index probes run once per batch over the batch's columnar view;
        passing an :class:`~repro.events.EventBatch` lets consecutive
        matchers (e.g. brokers along a path) share one columnarization.
        """
        from repro.matching.batch import counting_match_batch

        return counting_match_batch(self, events)

    # -- introspection ----------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Number of live predicate entries in the index."""
        return self._indexes.entry_count

    @property
    def tree_slot_count(self) -> int:
        """Number of live subscriptions holding a general (non-flat) tree."""
        return self._tree_slot_count

    @property
    def negated_entry_count(self) -> int:
        """Number of live negated-operator predicate entries."""
        return self._negated_entry_count

    def fulfilled_counts(self, event: Event) -> Dict[int, int]:
        """Fulfilled-predicate count per subscription id (diagnostics)."""
        positives: List[np.ndarray] = []
        negatives: List[np.ndarray] = []
        for attribute, value in event.items():
            self._indexes.collect(attribute, value, positives, negatives)
        slot_count = len(self._slots)
        entry_slot = self._entry_slot[: self._indexes.entry_capacity]
        counts = np.zeros(slot_count, dtype=np.int64)
        if positives:
            counts = np.bincount(
                entry_slot[np.concatenate(positives)],
                minlength=slot_count,
            ).astype(np.int64)
        if negatives:
            counts -= np.bincount(
                entry_slot[np.concatenate(negatives)],
                minlength=slot_count,
            )
        return {
            sub_id: int(counts[slot]) for sub_id, slot in self._slot_of.items()
        }
