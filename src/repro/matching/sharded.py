"""Sharded parallel matching: slot-shard a broker table behind ``match_batch``.

A single :class:`~repro.matching.counting.CountingMatcher` runs one
serial numpy pipeline per table, however many cores the host has.  The
table is trivially *partitionable*, though: the candidate test, the
index probes, and tree evaluation are all per-slot computations, so
splitting the subscription set into K disjoint shards — each a fully
independent counting engine with its own
:class:`~repro.matching.predicate_index.PredicateIndexSet` and compiled
tree program — changes nothing about any individual verdict.  Matching
a batch then fans out to the shards and merges the per-event id lists.

Three executors fan a batch out:

* ``"serial"`` — an in-caller loop, fully deterministic scheduling;
* ``"threads"`` — an owned ``ThreadPoolExecutor``; overlap is limited
  to where numpy releases the GIL;
* ``"processes"`` — each shard's engine lives in a persistent **worker
  process** (:mod:`repro.matching.process_pool`), so shards run on real
  cores.  The batch ships once per ``match_batch`` through a shared
  -memory segment (:mod:`repro.matching.shm`); workers rebuild
  zero-copy views.  The parent keeps each shard's authority table (for
  synchronous duplicate/unknown-id errors and introspection) and syncs
  the worker replicas through a **subscription log**: every register/
  unregister/replace appends one compact op
  (:func:`repro.subscriptions.serialize.op_to_dict`) to the shard's
  pending log, drained with the next request.  A fresh or restarted
  pool is seeded by replaying the full table into the log — the broker
  restart/migration machinery.  A worker failure tears the pool down
  and the *same* ``match_batch`` call retries on a fresh pool; a crash
  loop (``crash_loop_threshold`` failures inside a trailing
  ``crash_loop_window``) trips a circuit breaker that degrades the
  matcher to the in-process ``"threads"`` executor with bit-identical
  results (:meth:`ShardedMatcher.health_report` tells the story;
  ``crash_loop_threshold=None`` restores raise-on-failure).

Design invariants:

* **Stable shard routing.**  ``shard_of(subscription_id)`` is a pure
  function of the id (a splitmix64-style integer mix, mod K), so
  register/unregister/replace all land on the same shard without any
  routing table, churn stays O(subscription), and sequential *or*
  clustered id allocations spread evenly across shards.
* **Bit-identical results.**  Every shard returns its per-event id
  lists sorted; the merge concatenates in shard order and sorts, which
  is exactly the unsharded engine's sorted output.  The aggregated
  :class:`~repro.matching.stats.MatchStatistics` counters (matches,
  candidates, tree evaluations, fulfilled predicates) are sums over the
  slot partition — identical, counter for counter, to the unsharded
  engine on the same table, whichever executor ran the shards
  (property-tested in ``tests/test_sharded.py``).
* **Deterministic merging.**  Worker results are collected in shard
  index order regardless of completion order, so a threaded or
  process-pooled run is indistinguishable from a serial one.
* **Coarse external locking.**  One lock serializes the public mutating
  and matching entry points, so concurrent callers interleave at call
  granularity (each call still fans out internally).  Shard-internal
  state is only ever touched by the one worker assigned to that shard.

>>> from repro.subscriptions import P, Subscription
>>> from repro.events import Event
>>> engine = ShardedMatcher(shards=4, executor="serial")
>>> engine.register(Subscription(7, P("a") == 1))
>>> engine.register(Subscription(8, P("a") >= 1))
>>> engine.match(Event({"a": 1}))
[7, 8]
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.errors import MatchingError
from repro.events import Event, EventBatch
from repro.matching.counting import CountingMatcher
from repro.matching.interfaces import Matcher
from repro.matching.process_pool import ShardWorkerPool
from repro.matching.shm import pack_columns, release_columns
from repro.matching.stats import MatchStatistics
from repro.subscriptions.serialize import op_to_dict
from repro.subscriptions.subscription import Subscription

_T = TypeVar("_T")

_MASK64 = (1 << 64) - 1

#: Executor selection: ``"serial"`` (in-caller loop, fully deterministic
#: scheduling), ``"threads"`` (an owned ``ThreadPoolExecutor``, one
#: worker per shard), ``"processes"`` (persistent shard worker
#: processes fed shared-memory batches), or any
#: ``concurrent.futures.Executor`` instance (treated like threads).
ExecutorSpec = Union[str, Executor]


class PoolHealth(NamedTuple):
    """Snapshot of a :class:`ShardedMatcher`'s self-healing state.

    ``executor`` is the mode currently serving matches (``"processes"``
    until the crash-loop breaker trips, ``"threads"`` after a
    degradation); ``crashes`` counts every worker-pool failure observed,
    ``recent_crashes`` only those within the trailing
    ``crash_loop_window`` seconds, and ``rebuilds`` how many times a
    fresh pool was built beyond the first.  ``degraded_reason`` records
    why the breaker tripped (``None`` while healthy); ``last_crash`` is
    a ``time.monotonic()`` stamp.
    """

    executor: str
    degraded: bool
    crashes: int
    rebuilds: int
    recent_crashes: int
    crash_loop_threshold: Optional[int]
    crash_loop_window: float
    degraded_reason: Optional[str]
    last_crash: Optional[float]


def shard_of(subscription_id: int, shard_count: int) -> int:
    """Stable shard index of ``subscription_id`` among ``shard_count``.

    A splitmix64-style finalizer decorrelates the id bits before the
    modulo, so the sequential ids handed out by
    :meth:`repro.routing.network.BrokerNetwork.allocate_subscription_id`
    (and any other clustered allocation) spread evenly across shards.
    Pure and process-independent: the same id maps to the same shard
    forever, which is what keeps churn O(subscription).

    >>> shard_of(7, 4) == shard_of(7, 4)
    True
    >>> sorted({shard_of(i, 2) for i in range(16)})
    [0, 1]
    """
    z = (subscription_id + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return z % shard_count


class ShardedMatcher(Matcher):
    """K independent counting-engine shards behind one ``Matcher`` face.

    ``shards`` fixes the partition width for the matcher's lifetime;
    ``executor`` picks how a batch fans out (see :data:`ExecutorSpec`).
    ``compact_free_fraction`` is forwarded to every shard's
    :class:`CountingMatcher`.  ``start_method`` (processes only)
    overrides the :mod:`multiprocessing` start method; ``None`` defers
    to the ``REPRO_SHARD_START_METHOD`` environment variable, then the
    platform default.

    The matcher is a drop-in replacement for a single
    :class:`CountingMatcher` — same results, same statistics — that a
    :class:`~repro.routing.broker.Broker` (and, through it,
    :class:`~repro.routing.network.BrokerNetwork` and
    :class:`~repro.service.PubSubService`) enables with ``shards=K``.
    """

    def __init__(
        self,
        shards: int = 4,
        *,
        executor: ExecutorSpec = "threads",
        compact_free_fraction: Optional[float] = 0.5,
        start_method: Optional[str] = None,
        crash_loop_threshold: Optional[int] = 3,
        crash_loop_window: float = 30.0,
    ) -> None:
        if shards < 1:
            raise MatchingError("shard count must be >= 1, got %d" % shards)
        if crash_loop_threshold is not None and crash_loop_threshold < 1:
            raise MatchingError(
                "crash_loop_threshold must be >= 1 or None, got %d"
                % crash_loop_threshold
            )
        if crash_loop_window <= 0:
            raise MatchingError(
                "crash_loop_window must be > 0, got %r" % crash_loop_window
            )
        self._shard_count = shards
        self._compact_free_fraction = compact_free_fraction
        self._start_method = start_method
        self.statistics = MatchStatistics()
        self._lock = threading.Lock()
        # Self-healing state ("processes" mode): worker-pool failures
        # tear the pool down and retry on fresh workers; the crash-loop
        # circuit breaker counts failures in a trailing window and, at
        # the threshold, degrades to the in-process thread executor
        # (``None`` disables both — failures raise, as diagnostics
        # sometimes want).
        self._crash_loop_threshold = crash_loop_threshold
        self._crash_loop_window = crash_loop_window
        self._fault_injector: Any = None
        self._crash_times: Deque[float] = deque()
        self._crashes = 0
        self._pools_built = 0
        self._degraded = False
        self._degraded_reason: Optional[str] = None
        self._last_crash: Optional[float] = None
        self._executor: Optional[Executor] = None
        self._owns_executor = False
        self._threaded = False
        self._processes = False
        self._pool: Optional[ShardWorkerPool] = None
        if isinstance(executor, Executor):
            self._executor = executor
            self._threaded = True
        elif executor == "serial":
            pass
        elif executor == "threads":
            self._threaded = True
        elif executor == "processes":
            self._processes = True
        else:
            raise MatchingError(
                "executor must be 'serial', 'threads', 'processes', or an "
                "Executor, got %r" % (executor,)
            )
        # In-process shard engines (empty in "processes" mode, where the
        # engines live in the workers and the parent keeps only tables).
        self._matchers: Tuple[CountingMatcher, ...] = (
            ()
            if self._processes
            else tuple(CountingMatcher(compact_free_fraction) for _ in range(shards))
        )
        # "processes" mode: per-shard authority tables plus the pending
        # subscription log drained to each worker with its next request.
        self._tables: List[Dict[int, Subscription]] = [{} for _ in range(shards)]
        self._pending: List[List[Dict[str, object]]] = [[] for _ in range(shards)]

    # -- shard routing --------------------------------------------------------

    @property
    def shard_count(self) -> int:
        """Number of slot shards the table is partitioned into."""
        return self._shard_count

    @property
    def shards(self) -> Tuple[CountingMatcher, ...]:
        """The per-shard engines, in shard-index order (read-only uses).

        Empty in ``"processes"`` mode — the engines live in the worker
        processes; use the introspection properties instead.
        """
        return self._matchers

    def shard_of(self, subscription_id: int) -> int:
        """The shard owning ``subscription_id`` (stable; see module doc).

        Overridable hook: tests force worst-case skew (every id on one
        shard) by overriding this in a subclass — results must not
        change, only the load balance.
        """
        return shard_of(subscription_id, self._shard_count)

    def _shard_index(self, subscription_id: int) -> int:
        shard = self.shard_of(subscription_id)
        if not 0 <= shard < self._shard_count:
            raise MatchingError(
                "shard_of(%d) returned %d, outside [0, %d)"
                % (subscription_id, shard, self._shard_count)
            )
        return shard

    def _owner(self, subscription_id: int) -> CountingMatcher:
        return self._matchers[self._shard_index(subscription_id)]

    # -- registration ---------------------------------------------------------

    def register(self, subscription: Subscription) -> None:
        with self._lock:
            if not self._processes:
                self._owner(subscription.id).register(subscription)
                return
            shard = self._shard_index(subscription.id)
            table = self._tables[shard]
            if subscription.id in table:
                raise MatchingError(
                    "subscription id %d is already registered" % subscription.id
                )
            table[subscription.id] = subscription
            self._log(shard, "register", subscription)

    def unregister(self, subscription_id: int) -> None:
        with self._lock:
            if not self._processes:
                self._owner(subscription_id).unregister(subscription_id)
                return
            shard = self._shard_index(subscription_id)
            table = self._tables[shard]
            if subscription_id not in table:
                raise MatchingError(
                    "subscription id %d is not registered" % subscription_id
                )
            del table[subscription_id]
            self._log(shard, "unregister", subscription_id)

    def replace(self, subscription: Subscription) -> None:
        # Same id, same shard (routing is a pure function of the id), so
        # a replace is an in-place delta on one shard.
        with self._lock:
            if not self._processes:
                self._owner(subscription.id).replace(subscription)
                return
            shard = self._shard_index(subscription.id)
            table = self._tables[shard]
            if subscription.id not in table:
                raise MatchingError(
                    "subscription id %d is not registered" % subscription.id
                )
            table[subscription.id] = subscription
            self._log(shard, "replace", subscription)

    def subscriptions(self) -> Dict[int, Subscription]:
        with self._lock:
            merged: Dict[int, Subscription] = {}
            if self._processes:
                for table in self._tables:
                    merged.update(table)
            else:
                for matcher in self._matchers:
                    merged.update(matcher.subscriptions())
            return merged

    def rebuild(self) -> None:
        """Compact every shard (see :meth:`CountingMatcher.rebuild`)."""
        with self._lock:
            if self._processes:
                # Only live replicas need the op: a pool started later
                # replays the table from scratch, which is compact.
                if self._pool is not None:
                    for shard in range(self._shard_count):
                        if self._tables[shard] or self._pending[shard]:
                            self._pending[shard].append(op_to_dict("rebuild"))
                return
            for matcher in self._matchers:
                matcher.rebuild()

    def _log(self, shard: int, action: str, payload: object = None) -> None:
        """Append one op to a shard's pending subscription log.

        Only live worker replicas need deltas; while no pool is running
        the authority tables alone describe the state, and pool startup
        seeds the logs wholesale in :meth:`_ensure_pool`.
        """
        if self._pool is not None:
            self._pending[shard].append(op_to_dict(action, payload))

    # -- matching -------------------------------------------------------------

    def match(self, event: Event) -> List[int]:
        if self._processes:
            return self._match_batch_remote(EventBatch([event]))[0]
        with self._lock:
            # Timed inside the lock: a caller's queue wait is not
            # matching work, and must not inflate ``elapsed_seconds``
            # (brokers report it as filtering time).
            started = time.perf_counter()
            before = self._counter_totals()
            per_shard = self._map(lambda matcher: matcher.match(event))
            merged = sorted(
                sub_id for matched in per_shard for sub_id in matched
            )
            self._account(1, before, started)
        return merged

    def match_batch(
        self, events: Union[Sequence[Event], EventBatch]
    ) -> List[List[int]]:
        """Fan the batch out to the shards and merge per-event id lists.

        The batch is columnarized once, in the calling thread, before
        dispatch — the shards share one read-only columnar view, exactly
        as consecutive brokers on a path do.  In ``"processes"`` mode
        the columns additionally cross into the workers through one
        shared-memory segment (see :mod:`repro.matching.shm`).
        """
        batch = EventBatch.coerce(events)
        if self._processes:
            return self._match_batch_remote(batch)
        batch.columns()
        count = len(batch.events)
        with self._lock:
            started = time.perf_counter()
            before = self._counter_totals()
            per_shard = self._map(
                lambda matcher: matcher.match_batch(batch)
                if matcher.subscription_count
                else None
            )
            results = [
                sorted(
                    sub_id
                    for matched in per_shard
                    if matched is not None
                    for sub_id in matched[row]
                )
                for row in range(count)
            ]
            self._account(count, before, started)
        return results

    def _map(
        self, fn: Callable[[CountingMatcher], _T]
    ) -> List[_T]:
        """``fn`` over every shard; results in shard-index order."""
        matchers = self._matchers
        if not self._threaded or len(matchers) == 1:
            return [fn(matcher) for matcher in matchers]
        executor = self._ensure_executor()
        futures = [executor.submit(fn, matcher) for matcher in matchers]
        return [future.result() for future in futures]

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=len(self._matchers),
                thread_name_prefix="repro-shard",
            )
            self._owns_executor = True
        return self._executor

    # -- process-shard path ---------------------------------------------------

    def _ensure_pool(self) -> ShardWorkerPool:
        """The live worker pool, starting (and seeding) one if needed.

        A fresh pool starts from empty worker replicas, so each shard's
        pending log is seeded with the full authority table as
        ``register`` ops, in id order — the same replay that migrates a
        table into a restarted broker shard.
        """
        if self._pool is None:
            self._pool = ShardWorkerPool(
                self._shard_count,
                self._compact_free_fraction,
                self._start_method,
                fault_injector=self._fault_injector,
            )
            self._pools_built += 1
            for shard, table in enumerate(self._tables):
                self._pending[shard] = [
                    op_to_dict("register", subscription)
                    for _, subscription in sorted(table.items())
                ]
        return self._pool

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        # Stale deltas die with the pool; a future pool replays tables.
        self._pending = [[] for _ in range(self._shard_count)]

    def _sync_targets(self) -> List[int]:
        """Shards that must see this request (non-empty table or log)."""
        return [
            shard
            for shard in range(self._shard_count)
            if self._tables[shard] or self._pending[shard]
        ]

    def set_fault_injector(self, injector: Any) -> None:
        """Install (or clear, with ``None``) a chaos hook.

        ``injector`` duck-types :class:`repro.faults.WorkerFaultInjector`
        — ``before_pack()`` runs ahead of each batch's shared-memory
        packing, ``before_send(pool, shard, command)`` ahead of each
        worker dispatch.  Applies to the live pool immediately.
        """
        with self._lock:
            self._fault_injector = injector
            if self._pool is not None:
                self._pool.fault_injector = injector

    def _note_crash(self) -> int:
        """Record one worker-pool failure; returns the in-window count.

        Caller holds the lock.
        """
        now = time.monotonic()
        self._crashes += 1
        self._last_crash = now
        self._crash_times.append(now)
        cutoff = now - self._crash_loop_window
        while self._crash_times and self._crash_times[0] < cutoff:
            self._crash_times.popleft()
        return len(self._crash_times)

    def _degrade_to_threads(self, reason: str) -> None:
        """Trip the breaker: rebuild in-process shard engines and leave
        ``"processes"`` mode for good (this matcher's lifetime).

        Caller holds the lock.  The engines are rebuilt from the
        authority tables in sorted id order — the same replay order that
        seeds worker replicas — so results stay bit-identical to what
        the pool produced.
        """
        matchers = tuple(
            CountingMatcher(self._compact_free_fraction)
            for _ in range(self._shard_count)
        )
        for shard, table in enumerate(self._tables):
            for _, subscription in sorted(table.items()):
                matchers[shard].register(subscription)
        self._matchers = matchers
        self._processes = False
        self._threaded = True
        self._degraded = True
        self._degraded_reason = reason
        self._pending = [[] for _ in range(self._shard_count)]

    def _dispatch_match(
        self, columns: object, count: int
    ) -> Tuple[List[List[int]], Tuple[int, int, int, int]]:
        """One pool round trip (caller holds the lock); may raise
        :class:`~repro.errors.MatchingError` on any worker failure."""
        pool = self._ensure_pool()
        merged: List[List[int]] = [[] for _ in range(count)]
        deltas = (0, 0, 0, 0)
        if self._fault_injector is not None:
            self._fault_injector.before_pack()
        packed = pack_columns(columns)
        try:
            targets = self._sync_targets()
            for shard in targets:
                ops = self._pending[shard]
                self._pending[shard] = []
                pool.send(shard, "match", ops, packed)
            for shard in targets:
                matched, shard_deltas = pool.recv(shard)
                deltas = tuple(
                    total + delta
                    for total, delta in zip(deltas, shard_deltas)
                )
                for row, ids in enumerate(matched):
                    if ids:
                        merged[row].extend(ids)
        finally:
            release_columns(packed)
        return merged, deltas

    def _match_batch_remote(self, batch: EventBatch) -> List[List[int]]:
        count = len(batch.events)
        columns = batch.columns()
        with self._lock:
            started = time.perf_counter()
            merged: List[List[int]] = []
            deltas = (0, 0, 0, 0)
            while self._processes:
                try:
                    merged, deltas = self._dispatch_match(columns, count)
                    break
                except MatchingError as error:
                    # A failed worker invalidates the replicas: drop the
                    # pool.  With the breaker enabled the *same call*
                    # retries on a fresh pool (tables replayed), and a
                    # crash loop — threshold failures inside the window
                    # — degrades to the in-process thread executor
                    # below, with bit-identical results.
                    self._teardown_pool()
                    recent = self._note_crash()
                    if self._crash_loop_threshold is None:
                        raise
                    if recent >= self._crash_loop_threshold:
                        self._degrade_to_threads(
                            "crash loop: %d worker-pool failures within "
                            "%.6gs window (last: %s)"
                            % (recent, self._crash_loop_window, error)
                        )
            if self._processes:
                results = [sorted(ids) for ids in merged]
                stats = self.statistics
                stats.events += count
                stats.matches += deltas[0]
                stats.candidates += deltas[1]
                stats.tree_evaluations += deltas[2]
                stats.fulfilled_predicates += deltas[3]
                stats.elapsed_seconds += time.perf_counter() - started
                return results
            # Degraded (this call or a concurrent one): the in-process
            # shard engines serve the batch.
            before = self._counter_totals()
            per_shard = self._map(
                lambda matcher: matcher.match_batch(batch)
                if matcher.subscription_count
                else None
            )
            results = [
                sorted(
                    sub_id
                    for matched in per_shard
                    if matched is not None
                    for sub_id in matched[row]
                )
                for row in range(count)
            ]
            self._account(count, before, started)
            return results

    def _remote_counts(self) -> Tuple[int, int, int, int]:
        """Summed worker introspection (subs, entries, trees, negated).

        Caller must hold the lock.  Drains pending ops on the way, so
        the answer reflects every mutation made so far.
        """
        pool = self._ensure_pool()
        totals = [0, 0, 0, 0]
        targets = self._sync_targets()
        try:
            for shard in targets:
                ops = self._pending[shard]
                self._pending[shard] = []
                pool.send(shard, "introspect", ops)
            for shard in targets:
                counts = pool.recv(shard)
                totals = [total + count for total, count in zip(totals, counts)]
        except MatchingError:
            self._teardown_pool()
            self._note_crash()
            raise
        return totals[0], totals[1], totals[2], totals[3]

    # -- statistics -----------------------------------------------------------

    def _counter_totals(self) -> Tuple[int, int, int, int]:
        """Sum of the shards' path-independent counters.

        ``events`` and ``elapsed_seconds`` are deliberately excluded:
        every shard counts the whole batch as its own events and its own
        wall clock, while the *table* processed each event once — the
        aggregate tracks those itself in :meth:`_account`.  (The
        process pool reports the same four counters as per-request
        deltas instead.)
        """
        matches = candidates = evaluations = fulfilled = 0
        for matcher in self._matchers:
            stats = matcher.statistics
            matches += stats.matches
            candidates += stats.candidates
            evaluations += stats.tree_evaluations
            fulfilled += stats.fulfilled_predicates
        return matches, candidates, evaluations, fulfilled

    def _account(
        self,
        event_count: int,
        before: Tuple[int, int, int, int],
        started: float,
    ) -> None:
        after = self._counter_totals()
        stats = self.statistics
        stats.events += event_count
        stats.matches += after[0] - before[0]
        stats.candidates += after[1] - before[1]
        stats.tree_evaluations += after[2] - before[2]
        stats.fulfilled_predicates += after[3] - before[3]
        stats.elapsed_seconds += time.perf_counter() - started

    # -- introspection --------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Live predicate entries across all shards."""
        with self._lock:
            if self._processes:
                return self._remote_counts()[1]
            return sum(matcher.entry_count for matcher in self._matchers)

    @property
    def tree_slot_count(self) -> int:
        """Live general-tree subscriptions across all shards."""
        with self._lock:
            if self._processes:
                return self._remote_counts()[2]
            return sum(matcher.tree_slot_count for matcher in self._matchers)

    @property
    def negated_entry_count(self) -> int:
        """Live negated-operator entries across all shards."""
        with self._lock:
            if self._processes:
                return self._remote_counts()[3]
            return sum(
                matcher.negated_entry_count for matcher in self._matchers
            )

    def health_report(self) -> PoolHealth:
        """The matcher's self-healing state (see :class:`PoolHealth`)."""
        with self._lock:
            now = time.monotonic()
            cutoff = now - self._crash_loop_window
            recent = sum(1 for stamp in self._crash_times if stamp >= cutoff)
            if self._processes:
                executor = "processes"
            elif self._threaded:
                executor = "threads"
            else:
                executor = "serial"
            return PoolHealth(
                executor=executor,
                degraded=self._degraded,
                crashes=self._crashes,
                rebuilds=max(0, self._pools_built - 1),
                recent_crashes=recent,
                crash_loop_threshold=self._crash_loop_threshold,
                crash_loop_window=self._crash_loop_window,
                degraded_reason=self._degraded_reason,
                last_crash=self._last_crash,
            )

    @property
    def shard_populations(self) -> List[int]:
        """Registered subscriptions per shard (balance diagnostics)."""
        with self._lock:
            if self._processes:
                return [len(table) for table in self._tables]
            return [matcher.subscription_count for matcher in self._matchers]

    def fulfilled_counts(self, event: Event) -> Dict[int, int]:
        """Fulfilled-predicate count per subscription id (diagnostics)."""
        with self._lock:
            merged: Dict[int, int] = {}
            if self._processes:
                pool = self._ensure_pool()
                targets = self._sync_targets()
                try:
                    for shard in targets:
                        ops = self._pending[shard]
                        self._pending[shard] = []
                        pool.send(shard, "fulfilled", ops, event.to_dict())
                    for shard in targets:
                        merged.update(pool.recv(shard))
                except MatchingError:
                    self._teardown_pool()
                    self._note_crash()
                    raise
                return merged
            for matcher in self._matchers:
                merged.update(matcher.fulfilled_counts(event))
            return merged

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut down the owned thread pool / worker pool (idempotent).

        Only the executor the matcher created itself is shut down;
        injected executors belong to the caller.  The matcher stays
        usable afterwards — the next batch lazily builds a fresh pool
        (in ``"processes"`` mode by replaying the authority tables into
        new workers).
        """
        with self._lock:
            if self._owns_executor and self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
                self._owns_executor = False
            self._teardown_pool()

    def __enter__(self) -> "ShardedMatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        if self._processes:
            mode = "processes"
        elif self._threaded:
            mode = "threaded (degraded)" if self._degraded else "threaded"
        else:
            mode = "serial"
        return "ShardedMatcher(%d shards, %d subscriptions, %s)" % (
            self._shard_count,
            self.subscription_count,
            mode,
        )
