"""The runtime feedback loop: observe traffic, re-prune, un-prune.

:class:`AdaptiveController` closes the loop the offline experiments leave
open.  Hooked into :meth:`PubSubService._dispatch` (opt-in via
``PubSubService(..., adaptive=AdaptiveConfig(...))``), every delivered
batch feeds :class:`~repro.adaptive.statistics.OnlineEventStatistics`;
every ``cycle_events`` delivered events the controller runs one cycle:

1. snapshot :class:`~repro.core.adaptive.SystemConditions` from the
   :class:`~repro.adaptive.probe.SystemConditionsProbe`;
2. if no resource is stressed, optionally *un-prune* (restore exact
   forwarding tables) once every pressure has dropped below
   ``release_fraction`` of its threshold;
3. otherwise let :class:`~repro.core.adaptive.AdaptivePruner` pick the
   dimension and prune one batch, then apply the pruned trees to
   **inner-broker forwarding tables only** under the service's
   flush-before-churn discipline.

Home brokers keep the exact trees (``Broker.prune_entry`` refuses
local-client entries; the controller never even proposes them), so
subscriber-visible delivery is bit-identical with the controller on or
off — pruning only widens what inner brokers *forward*.

Table churn (subscribe/unsubscribe/replace) invalidates an engine plan;
the controller detects it via ``BrokerNetwork.table_version``, restores
any pruning applied under the old table, and re-plans from the live
statistics on the next stressed cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.adaptive.probe import SystemConditionsProbe
from repro.adaptive.statistics import OnlineEventStatistics
from repro.core.adaptive import AdaptivePruner, SystemConditions
from repro.core.engine import PruningRecord
from repro.core.ops import is_prunable
from repro.errors import PruningError
from repro.events import Event
from repro.selectivity.estimator import SelectivityEstimator
from repro.subscriptions.metrics import memory_bytes
from repro.subscriptions.nodes import Node
from repro.subscriptions.normalize import is_normalized

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.service import PubSubService


@dataclass
class AdaptiveConfig:
    """Tuning knobs of the adaptive pruning loop.

    Attributes
    ----------
    cycle_events:
        Run one controller cycle every this many dispatched events.
    batch_size:
        Prunings attempted per stressed cycle.
    memory_budget_bytes:
        Routing-table budget for memory pressure; ``None`` disables the
        memory signal.
    memory_threshold / bandwidth_threshold / filter_threshold:
        Pressure levels above which the matching dimension is stressed
        (forwarded to :class:`~repro.core.adaptive.AdaptivePruner`).
    release_fraction:
        Un-prune once *every* pressure sits below
        ``release_fraction × threshold`` — hysteresis against prune/
        restore flapping.
    stop_degradation:
        Per-subscription accumulated Δ≈sel bound passed to each batch;
        ``None`` removes the bound.
    sample_rate / top_k / histogram_bins / recent_events / seed:
        Forwarded to :class:`OnlineEventStatistics`.
    min_observations:
        Sampled events required before the first pruning plan — pruning
        on an unwarmed estimator optimizes noise.
    default_probability:
        Estimator fallback for attributes the stream has not shown.
    clock:
        Monotonic-seconds source for the probe's rate windows.
    """

    cycle_events: int = 256
    batch_size: int = 8
    memory_budget_bytes: Optional[int] = None
    memory_threshold: float = 0.9
    bandwidth_threshold: float = 0.8
    filter_threshold: float = 0.8
    release_fraction: float = 0.5
    stop_degradation: Optional[float] = 0.25
    sample_rate: float = 1.0
    top_k: int = 32
    histogram_bins: int = 64
    recent_events: int = 256
    min_observations: int = 32
    default_probability: float = 0.5
    seed: int = 2006
    clock: Callable[[], float] = field(default=time.monotonic)

    def __post_init__(self) -> None:
        if self.cycle_events <= 0:
            raise PruningError("cycle_events must be positive")
        if self.batch_size <= 0:
            raise PruningError("batch_size must be positive")
        if not 0.0 < self.release_fraction < 1.0:
            raise PruningError("release_fraction must be within (0, 1)")
        if self.min_observations < 1:
            raise PruningError("min_observations must be positive")


class AdaptiveController:
    """Periodic re-prune/un-prune cycle over one :class:`PubSubService`.

    Constructed by the service itself when ``adaptive=`` is passed; all
    mutation runs under the service's publish lock, so cycles serialize
    with dispatch, ingress flushes, and table churn.  The controller
    never touches local-client (home broker) entries — delivery stays
    exactly what the un-pruned tables would produce.
    """

    def __init__(self, service: "PubSubService", config: AdaptiveConfig) -> None:
        self._service = service
        self.config = config
        self.statistics = OnlineEventStatistics(
            top_k=config.top_k,
            histogram_bins=config.histogram_bins,
            sample_rate=config.sample_rate,
            recent_capacity=config.recent_events,
            default_probability=config.default_probability,
            seed=config.seed,
        )
        self.probe = SystemConditionsProbe(
            service.network,
            memory_budget_bytes=config.memory_budget_bytes,
            clock=config.clock,
        )
        self._pruner: Optional[AdaptivePruner] = None
        self._pruner_version: Optional[int] = None
        #: subscription id → pruned tree currently applied to forwarding
        #: tables (and its exact counterpart, for realized-Δsel reports).
        self._applied: Dict[int, Node] = {}
        self._originals: Dict[int, Node] = {}
        self._applied_ops: Dict[int, int] = {}
        self._estimated: Dict[int, float] = {}
        self._history: List[Tuple[str, int]] = []
        self._last_conditions: Optional[SystemConditions] = None
        self._events_since_cycle = 0
        self._in_cycle = False
        self._cycles = 0
        self._prunings_applied = 0
        self._prunings_reverted = 0
        self._restores = 0
        self._bytes_reclaimed_total = 0

    # -- dispatch-path hook ---------------------------------------------------

    def _after_dispatch(self, events: List[Event]) -> None:
        """Fold one dispatched batch in; run a cycle when one is due.

        Called by ``PubSubService._dispatch`` under the publish lock.  A
        cycle's own flush re-enters dispatch, so ``_in_cycle`` guards
        against recursive cycles (the nested batch still feeds the
        statistics).
        """
        self.statistics.observe_batch(events)
        self._events_since_cycle += len(events)
        if self._events_since_cycle >= self.config.cycle_events and not self._in_cycle:
            self.run_cycle()

    # -- the cycle ------------------------------------------------------------

    def run_cycle(
        self, conditions: Optional[SystemConditions] = None
    ) -> List[PruningRecord]:
        """Run one observe → decide → act cycle; returns applied prunings.

        ``conditions`` overrides the probe snapshot — tests and operators
        use this to drive the policy deterministically.  Returns the
        empty list when nothing was pruned (calm system, cold statistics,
        exhausted engine, or a re-entrant call).
        """
        with self._service._publish_lock:
            if self._in_cycle:
                return []
            self._in_cycle = True
            try:
                self._events_since_cycle = 0
                self._cycles += 1
                if conditions is None:
                    conditions = self.probe.snapshot()
                self._last_conditions = conditions
                if not self._stressed(conditions):
                    if self._applied and self._becalmed(conditions):
                        self._restore_applied()
                    return []
                if self.statistics.observed < self.config.min_observations:
                    return []
                pruner = self._ensure_pruner()
                if pruner is None:
                    return []
                records = pruner.optimize(
                    conditions, self.config.batch_size, self.config.stop_degradation
                )
                if records:
                    self._apply_records(pruner, records)
                return records
            finally:
                self._in_cycle = False

    def _stressed(self, conditions: SystemConditions) -> bool:
        config = self.config
        return (
            conditions.memory_pressure >= config.memory_threshold
            or conditions.bandwidth_utilization >= config.bandwidth_threshold
            or conditions.filter_saturation >= config.filter_threshold
        )

    def _becalmed(self, conditions: SystemConditions) -> bool:
        config = self.config
        release = config.release_fraction
        return (
            conditions.memory_pressure < release * config.memory_threshold
            and conditions.bandwidth_utilization < release * config.bandwidth_threshold
            and conditions.filter_saturation < release * config.filter_threshold
        )

    def _ensure_pruner(self) -> Optional[AdaptivePruner]:
        """The engine for the *current* table, rebuilt after churn.

        A rebuild restores whatever the stale plan had applied (surviving
        subscriptions get exact forwarding back) and re-plans from the
        live statistics snapshot.  ``None`` when no registered
        subscription is prunable.
        """
        network = self._service.network
        version = network.table_version
        if self._pruner is not None and version == self._pruner_version:
            return self._pruner
        if self._applied:
            self._restore_applied()
        candidates = [
            subscription
            for _sub_id, subscription in sorted(
                network.registered_subscriptions().items()
            )
            if is_normalized(subscription.tree) and is_prunable(subscription.tree)
        ]
        self._pruner_version = version
        if not candidates:
            self._pruner = None
            return None
        config = self.config
        self._pruner = AdaptivePruner(
            candidates,
            self.statistics.estimator(),
            memory_threshold=config.memory_threshold,
            bandwidth_threshold=config.bandwidth_threshold,
            filter_threshold=config.filter_threshold,
        )
        return self._pruner

    # -- acting on the substrate ----------------------------------------------

    def _apply_records(
        self, pruner: AdaptivePruner, records: List[PruningRecord]
    ) -> None:
        """Apply a batch's pruned trees to inner-broker forwarding tables."""
        network = self._service.network
        changed: Dict[int, Node] = {}
        for record in records:
            if record.subscription_id in changed:
                continue
            state = pruner.engine.state(record.subscription_id)
            changed[record.subscription_id] = state.current
            if record.subscription_id not in self._originals:
                self._originals[record.subscription_id] = state.original
        per_broker: Dict[str, Dict[int, Node]] = {}
        for broker_id, broker in network.brokers.items():
            trees: Dict[int, Node] = {}
            for sub_id, tree in changed.items():
                entry = broker.entries.get(sub_id)
                if entry is not None and not entry.interface.is_client:
                    trees[sub_id] = tree
            if trees:
                per_broker[broker_id] = trees
        # Flush-before-churn: events already submitted are routed by the
        # tables that were current at submission time.
        self._service.flush()
        before = network.table_size_bytes
        network.apply_pruned_tables(per_broker)
        self._bytes_reclaimed_total += max(0, before - network.table_size_bytes)
        dimension, count = pruner.dimension_history[-1]
        self._history.append((dimension.value, count))
        self._prunings_applied += len(records)
        for record in records:
            self._applied_ops[record.subscription_id] = (
                self._applied_ops.get(record.subscription_id, 0) + 1
            )
            self._estimated[record.subscription_id] = record.vector.sel
        self._applied.update(changed)

    def _restore_applied(self) -> None:
        """Un-prune: give every touched forwarding entry its exact tree back."""
        network = self._service.network
        self._service.flush()
        for broker in network.brokers.values():
            for sub_id in self._applied:
                entry = broker.entries.get(sub_id)
                if entry is not None and not entry.interface.is_client:
                    broker.restore_entry(sub_id)
        self._prunings_reverted += sum(self._applied_ops.values())
        self._restores += 1
        self._applied.clear()
        self._originals.clear()
        self._applied_ops.clear()
        self._estimated.clear()
        # The engine's accumulated state described tables we just reset;
        # a later stressed cycle re-plans from fresh statistics.
        self._pruner = None

    # -- observability --------------------------------------------------------

    def _live_bytes_reclaimed(self) -> int:
        network = self._service.network
        reclaimed = 0
        for broker in network.brokers.values():
            for entry in broker.non_local_entries():
                if entry.is_pruned:
                    reclaimed += memory_bytes(entry.original.tree) - memory_bytes(
                        entry.current.tree
                    )
        return reclaimed

    def _realized_deltas(self) -> Dict[int, float]:
        """Measured Δselectivity of each applied pruning on recent traffic."""
        events = self.statistics.recent_events()
        if not events:
            return {}
        deltas: Dict[int, float] = {}
        for sub_id, pruned_tree in self._applied.items():
            original = self._originals[sub_id]
            deltas[sub_id] = SelectivityEstimator.measure(
                pruned_tree, events
            ) - SelectivityEstimator.measure(original, events)
        return deltas

    def report(self) -> Dict[str, object]:
        """Controller telemetry: what it saw, decided, and reclaimed.

        ``dimension_history`` lists ``(dimension value, prunings)`` per
        applied batch; ``estimated_delta_sel`` is the engine's accumulated
        Δ≈sel per pruned subscription, ``realized_delta_sel`` the same
        delta *measured* on the retained tail of sampled events.
        """
        with self._service._publish_lock:
            conditions = self._last_conditions
            return {
                "cycles": self._cycles,
                "dimension_history": list(self._history),
                "prunings_applied": self._prunings_applied,
                "prunings_reverted": self._prunings_reverted,
                "restores": self._restores,
                "subscriptions_pruned": len(self._applied),
                "bytes_reclaimed": self._live_bytes_reclaimed(),
                "bytes_reclaimed_total": self._bytes_reclaimed_total,
                "estimated_delta_sel": dict(self._estimated),
                "realized_delta_sel": self._realized_deltas(),
                "events_seen": self.statistics.seen,
                "events_sampled": self.statistics.observed,
                "last_conditions": (
                    conditions._asdict() if conditions is not None else None
                ),
            }
