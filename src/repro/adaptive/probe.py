"""Deriving :class:`SystemConditions` from live substrate counters.

The dimension policy consumes three pressures — memory, bandwidth, and
filter CPU.  The substrate exposes only cumulative counters, so the probe
keeps the previous snapshot and reads *rates* off the deltas:

* **memory pressure** is instantaneous: the network's routing-table byte
  estimate against the configured budget;
* **bandwidth utilization** is the busiest directed link's modelled busy
  seconds (messages × overhead + bytes / bandwidth, per
  :meth:`~repro.routing.metrics.NetworkReport.link_busy_seconds`) accrued
  since the last snapshot, divided by the wall-clock window;
* **filter saturation** is the network-wide measured filtering seconds
  accrued over the same window, divided by the window — an aggregate-CPU
  share that can exceed 1.0 on multi-broker networks.

The clock is injectable so tests can drive deterministic windows.
Counter resets (``reset_statistics``) make deltas negative; the probe
clamps them to zero instead of reporting phantom load.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.core.adaptive import SystemConditions
from repro.errors import PruningError
from repro.routing.network import BrokerNetwork


class SystemConditionsProbe:
    """Assembles :class:`SystemConditions` snapshots from a live network.

    Parameters
    ----------
    network:
        The substrate to observe.
    memory_budget_bytes:
        The routing-table budget; ``None`` disables memory pressure
        (``memory_pressure`` reads 0, matching ``SystemConditions``'s
        no-budget convention).
    clock:
        Monotonic-seconds source; injectable for deterministic tests.
    """

    def __init__(
        self,
        network: BrokerNetwork,
        memory_budget_bytes: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise PruningError("memory_budget_bytes must be positive")
        self._network = network
        self.memory_budget_bytes = memory_budget_bytes
        self._clock = clock
        self._last_time: Optional[float] = None
        self._last_filter_seconds = 0.0
        self._last_link_busy: Dict[Tuple[str, str], float] = {}

    def snapshot(self) -> SystemConditions:
        """Read current conditions and advance the delta window.

        The first snapshot has no window to rate over, so both rate
        signals report 0.0 — callers warm the probe with an initial
        snapshot before trusting its utilization figures.
        """
        now = self._clock()
        report = self._network.report()
        busy: Dict[Tuple[str, str], float] = {
            link: report.link_busy_seconds(link) for link in report.per_link_bytes
        }
        filter_seconds = report.filter_seconds
        utilization = 0.0
        saturation = 0.0
        if self._last_time is not None and now > self._last_time:
            window = now - self._last_time
            busiest = max(
                (
                    busy[link] - self._last_link_busy.get(link, 0.0)
                    for link in busy
                ),
                default=0.0,
            )
            utilization = max(0.0, busiest) / window
            saturation = max(0.0, filter_seconds - self._last_filter_seconds) / window
        self._last_time = now
        self._last_link_busy = busy
        self._last_filter_seconds = filter_seconds
        return SystemConditions(
            memory_used_bytes=self._network.table_size_bytes,
            memory_budget_bytes=self.memory_budget_bytes or 0,
            bandwidth_utilization=utilization,
            filter_saturation=saturation,
        )
