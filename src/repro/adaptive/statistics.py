"""Bounded-memory online event statistics for the adaptive loop.

The offline estimator builds :class:`~repro.selectivity.statistics.EventStatistics`
from a stored event sample.  A broker cannot afford that: the dispatch
path sees an unbounded stream and must keep per-attribute state in O(1)
memory.  :class:`OnlineEventStatistics` accumulates two classic sketches
per attribute:

* a **space-saving top-K counter** (:class:`TopKCounter`) for discrete
  frequencies — the K heaviest values keep (over-)estimated counts whose
  total always equals the number of observations, so categorical
  probabilities come out of the sketch directly;
* a **streaming histogram** (:class:`StreamingHistogram`, in the style of
  Ben-Haim & Tom-Toub) for numeric ranges — at most ``bins`` centroids,
  merging the closest adjacent pair on overflow, read back as CDF samples
  for :class:`~repro.selectivity.statistics.ContinuousStatistics`.

``snapshot()`` freezes the sketches into a drop-in
:class:`~repro.selectivity.statistics.EventStatistics`, so the shared
:class:`~repro.selectivity.estimator.SelectivityEstimator` and the whole
pruning stack run unchanged on live traffic.
"""

from __future__ import annotations

import bisect
import random
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import SelectivityError
from repro.events import Event, Value
from repro.selectivity.estimator import SelectivityEstimator
from repro.selectivity.statistics import (
    AttributeStatistics,
    CategoricalStatistics,
    ContinuousStatistics,
    EventStatistics,
)

#: Tag spelling shared with ``EmpiricalStatistics._key``: booleans, numerics
#: and strings live in disjoint namespaces even when Python would hash them
#: equal (``True == 1``).
_Key = Tuple[str, Value]


def _key(value: Value) -> _Key:
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", float(value))
    return ("s", value)


class TopKCounter:
    """Space-saving frequency sketch over at most ``capacity`` values.

    When a new value arrives at capacity, the lightest tracked value is
    evicted and the newcomer inherits its count plus one — the standard
    space-saving over-estimate.  By construction the counts always sum to
    the number of observations, so normalising them yields a probability
    model with full coverage.  ``exact`` reports whether any eviction ever
    happened; until then the sketch is a perfect frequency table.

    >>> counter = TopKCounter(2)
    >>> for value in ("a", "a", "b", "c"):
    ...     counter.observe(("s", value))
    >>> counter.exact
    False
    >>> sorted(counter.counts.items())
    [(('s', 'a'), 2), (('s', 'c'), 2)]
    """

    __slots__ = ("capacity", "counts", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SelectivityError("top-K capacity must be positive")
        self.capacity = capacity
        self.counts: Dict[_Key, int] = {}
        self.evictions = 0

    def observe(self, key: _Key) -> None:
        """Count one occurrence of ``key``."""
        counts = self.counts
        current = counts.get(key)
        if current is not None:
            counts[key] = current + 1
            return
        if len(counts) < self.capacity:
            counts[key] = 1
            return
        victim = min(counts, key=counts.__getitem__)
        floor = counts.pop(victim)
        counts[key] = floor + 1
        self.evictions += 1

    @property
    def exact(self) -> bool:
        """``True`` while no value has ever been evicted."""
        return self.evictions == 0


class StreamingHistogram:
    """Mergeable histogram with at most ``capacity`` centroids.

    Inserting an unseen value adds a unit-weight centroid; on overflow the
    two closest adjacent centroids merge into their weighted mean.  While
    no merge has occurred the histogram is an exact frequency table of the
    stream.  ``cdf()`` reads the centroids back as ascending
    ``(support, cumulative)`` samples ready for
    :class:`~repro.selectivity.statistics.ContinuousStatistics`.

    >>> histogram = StreamingHistogram(capacity=4)
    >>> for value in (1.0, 2.0, 2.0, 5.0):
    ...     histogram.observe(value)
    >>> histogram.cdf()
    ([1.0, 2.0, 5.0], [0.25, 0.75, 1.0])
    """

    __slots__ = ("capacity", "merges", "_values", "_counts")

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise SelectivityError("histogram capacity must be at least 2")
        self.capacity = capacity
        self.merges = 0
        self._values: List[float] = []
        self._counts: List[float] = []

    def __len__(self) -> int:
        return len(self._values)

    def observe(self, value: float) -> None:
        """Fold one numeric observation into the histogram."""
        values = self._values
        index = bisect.bisect_left(values, value)
        if index < len(values) and values[index] == value:
            self._counts[index] += 1.0
            return
        values.insert(index, value)
        self._counts.insert(index, 1.0)
        if len(values) > self.capacity:
            self._merge_closest()

    def _merge_closest(self) -> None:
        values, counts = self._values, self._counts
        best = 0
        best_gap = values[1] - values[0]
        for i in range(1, len(values) - 1):
            gap = values[i + 1] - values[i]
            if gap < best_gap:
                best_gap = gap
                best = i
        total = counts[best] + counts[best + 1]
        merged = (values[best] * counts[best] + values[best + 1] * counts[best + 1]) / total
        values[best : best + 2] = [merged]
        counts[best : best + 2] = [total]
        self.merges += 1

    def cdf(self) -> Tuple[List[float], List[float]]:
        """``(support, cumulative)`` with ``cdf[i] = P(X <= support[i])``.

        Each centroid's mass is attributed at (or below) its mean — exact
        when no merge has happened, a ±half-bin approximation otherwise.
        """
        total = sum(self._counts)
        support: List[float] = []
        cumulative: List[float] = []
        running = 0.0
        for value, count in zip(self._values, self._counts):
            running += count
            support.append(value)
            cumulative.append(running / total)
        return support, cumulative


class _AttributeAccumulator:
    """Sketch state of one attribute: presence, top-K, numeric histogram."""

    __slots__ = ("present", "numeric", "counter", "histogram")

    def __init__(self, top_k: int, histogram_bins: int) -> None:
        self.present = 0
        self.numeric = 0
        self.counter = TopKCounter(top_k)
        self.histogram = StreamingHistogram(histogram_bins)

    def observe(self, value: Value) -> None:
        self.present += 1
        self.counter.observe(_key(value))
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.numeric += 1
            self.histogram.observe(float(value))

    def model(self, observed: int) -> Optional[AttributeStatistics]:
        """Freeze this accumulator into an :class:`AttributeStatistics`.

        Low-cardinality attributes (no eviction yet) become exact
        categorical models.  High-cardinality numeric attributes fall back
        to the streaming histogram's CDF; high-cardinality strings keep
        the (over-estimating but fully covering) top-K frequencies.
        """
        if not self.present:
            return None
        presence = self.present / observed
        numeric_share = self.numeric / self.present
        if not self.counter.exact and numeric_share >= 0.5 and len(self.histogram) >= 2:
            support, cumulative = self.histogram.cdf()
            return ContinuousStatistics(
                support, cumulative, presence=presence * numeric_share
            )
        probabilities: Dict[Value, float] = {}
        for (_, value), count in self.counter.counts.items():
            probabilities[value] = probabilities.get(value, 0.0) + float(count)
        return CategoricalStatistics(probabilities, presence=presence)


class OnlineEventStatistics:
    """Thread-safe bounded-memory statistics over a live event stream.

    Parameters
    ----------
    top_k, histogram_bins:
        Per-attribute sketch sizes (values tracked exactly / CDF
        centroids kept).
    sample_rate:
        Fraction of offered events folded into the sketches.  Sampling is
        pseudo-random but seeded, so a replayed stream yields identical
        statistics.
    recent_capacity:
        How many sampled events to retain verbatim for realized-
        selectivity measurements (a bounded deque, not a growing log).
    default_probability:
        Fallback for predicates on attributes the stream has not shown.

    >>> online = OnlineEventStatistics(top_k=4)
    >>> _ = online.observe_batch([Event({"category": "fiction"})] * 3)
    >>> online.snapshot().attribute("category").prob_eq("fiction")
    1.0
    """

    def __init__(
        self,
        top_k: int = 32,
        histogram_bins: int = 64,
        sample_rate: float = 1.0,
        recent_capacity: int = 256,
        default_probability: float = 0.5,
        seed: int = 2006,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise SelectivityError("sample_rate must be within (0, 1]")
        if recent_capacity < 1:
            raise SelectivityError("recent_capacity must be positive")
        self._top_k = top_k
        self._histogram_bins = histogram_bins
        self._sample_rate = sample_rate
        self._default_probability = default_probability
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._attributes: Dict[str, _AttributeAccumulator] = {}
        self._recent: Deque[Event] = deque(maxlen=recent_capacity)
        self._seen = 0
        self._observed = 0

    @property
    def seen(self) -> int:
        """Events offered to the accumulator (sampled or not)."""
        with self._lock:
            return self._seen

    @property
    def observed(self) -> int:
        """Events actually folded into the sketches."""
        with self._lock:
            return self._observed

    def observe(self, event: Event) -> bool:
        """Offer one event; returns whether it was sampled in."""
        with self._lock:
            return self._observe_locked(event)

    def observe_batch(self, events: Sequence[Event]) -> int:
        """Offer a batch under one lock acquisition; returns sampled count."""
        sampled = 0
        with self._lock:
            for event in events:
                if self._observe_locked(event):
                    sampled += 1
        return sampled

    def _observe_locked(self, event: Event) -> bool:
        self._seen += 1
        if self._sample_rate < 1.0 and self._rng.random() >= self._sample_rate:
            return False
        self._observed += 1
        self._recent.append(event)
        for attribute, value in event.items():
            accumulator = self._attributes.get(attribute)
            if accumulator is None:
                accumulator = _AttributeAccumulator(
                    self._top_k, self._histogram_bins
                )
                self._attributes[attribute] = accumulator
            accumulator.observe(value)
        return True

    def recent_events(self) -> List[Event]:
        """The retained tail of sampled events (newest last)."""
        with self._lock:
            return list(self._recent)

    def snapshot(self) -> EventStatistics:
        """Freeze the sketches into an :class:`EventStatistics`.

        With no observations yet, the snapshot knows no attributes and
        every predicate estimate falls back to ``default_probability``.
        """
        with self._lock:
            models: Dict[str, AttributeStatistics] = {}
            for attribute, accumulator in self._attributes.items():
                model = accumulator.model(self._observed)
                if model is not None:
                    models[attribute] = model
            return EventStatistics(
                models, default_probability=self._default_probability
            )

    def estimator(self) -> SelectivityEstimator:
        """A fresh :class:`SelectivityEstimator` over :meth:`snapshot`."""
        return SelectivityEstimator(self.snapshot())
