"""Adaptive dimension pruning driven by live statistics.

This package closes the feedback loop the paper sketches in its
introduction — "if the number of subscriptions increases strongly, we use
memory-based pruning; bandwidth limitations suggest to apply
network-based pruning" — at *runtime*, against the production service
layer, instead of in offline experiment mode:

* :mod:`repro.adaptive.statistics` — :class:`OnlineEventStatistics`, a
  thread-safe, bounded-memory accumulator fed from the dispatch path
  (top-K categorical frequency sketches + streaming numeric histograms)
  whose snapshots are drop-in
  :class:`~repro.selectivity.statistics.EventStatistics`;
* :mod:`repro.adaptive.probe` — :class:`SystemConditionsProbe`, which
  assembles the :class:`~repro.core.adaptive.SystemConditions` the
  dimension policy consumes from real substrate signals (routing-table
  bytes vs budget, busiest-link utilization, filter saturation);
* :mod:`repro.adaptive.controller` — :class:`AdaptiveController`, the
  periodic re-prune cycle on :class:`~repro.service.PubSubService`
  (opt-in via ``adaptive=AdaptiveConfig(...)``): snapshot conditions →
  select dimension → prune a batch → apply to inner-broker forwarding
  tables only, plus the un-prune path and an observability report.

See ``docs/ARCHITECTURE.md`` ("Adaptive pruning") for the dataflow
diagram and the forwarding-only invariant that keeps the whole loop
observationally invisible to subscribers.
"""

from repro.adaptive.controller import AdaptiveConfig, AdaptiveController
from repro.adaptive.probe import SystemConditionsProbe
from repro.adaptive.statistics import (
    OnlineEventStatistics,
    StreamingHistogram,
    TopKCounter,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveController",
    "OnlineEventStatistics",
    "StreamingHistogram",
    "SystemConditionsProbe",
    "TopKCounter",
]
