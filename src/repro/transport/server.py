"""The asyncio TCP server: wire sessions over a :class:`PubSubService`.

:class:`PubSubServer` puts a socket in front of the service layer.  One
TCP connection speaks the frame protocol of :mod:`repro.transport.
protocol`; its ``hello`` opens (or resumes) one service
:class:`~repro.service.session.Session` with a bounded delivery queue —
the PR-7 backpressure queues literally *are* the per-connection send
buffers.  Dataflow per connection::

    flush (any thread) ──▶ BoundedDeliveryQueue (policy, dead letters)
        ──▶ pump thread ──▶ AsyncDeliverySink ──▶ drain task (loop)
        ──▶ unacked buffer + frame write ──▶ socket

* **Dispatch** stages matched notifications in the session's bounded
  queue; its ``block``/``drop_oldest``/``disconnect`` policy is the
  slow-consumer policy of the connection.
* A per-connection **pump thread** consumes the queue and hands each
  notification to an :class:`~repro.service.sinks.AsyncDeliverySink`,
  which bridges it onto the event loop.  The pump throttles itself on
  the sink's ``pending`` lag (a small bridge window), so socket
  backpressure propagates: a slow socket stalls the drain task, the
  window fills, the pump stops consuming, the bounded queue fills, and
  the queue's policy decides who pays.
* The loop-side **drain task** appends each notification to the
  connection's *unacked* retransmit buffer, then writes its ``event``
  frame.  Clients acknowledge the highest ``delivery_seq`` they have
  seen; acknowledged entries are trimmed.

**Resume**: an ungraceful disconnect (EOF, reset, abort) *detaches* the
connection but keeps the session — and with it the queue's undelivered
tail, the unacked buffer, and the gapless ``delivery_seq`` counter —
registered under its token (:meth:`repro.service.PubSubService.
resume`).  A client that reconnects presents the token plus its last
seen ``delivery_seq``; the server trims what the client already has,
replays the rest of the unacked buffer in order, and restarts the pump
on the still-queued tail.  Delivered + dead-lettered therefore remains
exactly what was dispatched, across any number of reconnects
(``tests/test_transport_e2e.py``).

Service calls that can flush (publish, subscribe/unsubscribe/replace,
connect) run in worker threads (``asyncio.to_thread``), never on the
event loop: a flush may block in a full ``block``-policy queue, and the
loop must stay free to run the drain tasks that empty those queues.

All blocking service work is paid per *message*; framing, auth, and
bookkeeping stay on the loop.  See ``docs/ARCHITECTURE.md``
("Transport") for the full picture.
"""

from __future__ import annotations

import asyncio
import secrets
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.errors import ProtocolError, ReproError, TransportError
from repro.service.backpressure import POLICIES
from repro.service.service import PubSubService
from repro.service.session import Session, SubscriptionHandle
from repro.service.sinks import AsyncDeliverySink, CountingSink, Notification
from repro.subscriptions.serialize import node_from_dict
from repro.transport.protocol import (
    GOODBYE_ACK_OVERDUE,
    GOODBYE_AUTH,
    GOODBYE_BAD_VERSION,
    GOODBYE_CLIENT_GOODBYE,
    GOODBYE_IDLE_TIMEOUT,
    GOODBYE_PROTOCOL_ERROR,
    GOODBYE_SERVER_SHUTDOWN,
    GOODBYE_SLOW_CONSUMER,
    GOODBYE_UNKNOWN_TOKEN,
    PROTOCOL_VERSION,
    Envelope,
    FrameDecoder,
    encode_frame,
    event_envelope,
    event_from_wire,
)
from repro.transport.streams import (
    StreamWrapper,
    TransportReader,
    TransportWriter,
)

#: How many notifications the pump may stage in the loop bridge ahead
#: of the socket writes; the dominant send buffer is the session's
#: bounded queue, this only smooths the thread→loop hand-off.
DEFAULT_BRIDGE_WINDOW = 64

#: Default capacity of the per-connection bounded delivery queue.
DEFAULT_QUEUE_CAPACITY = 256

_PUMP_POLL_SECONDS = 0.05
_PUMP_THROTTLE_SECONDS = 0.001


class _SessionState:
    """Server-side state of one logical session (survives reconnects)."""

    __slots__ = ("token", "session", "handles", "unacked", "connection")

    def __init__(self, token: str, session: Session) -> None:
        self.token = token
        self.session = session
        #: subscription id → live handle; handles survive reconnects
        #: because the session does.
        self.handles: Dict[int, SubscriptionHandle] = {}
        #: Sent (or popped-from-queue) but not yet acknowledged, in
        #: ``delivery_seq`` order.  Only touched from the event loop.
        self.unacked: Deque[Notification] = deque()
        self.connection: Optional[_Connection] = None


class _Connection:
    """One TCP connection: framing, dispatch, and the delivery pump."""

    def __init__(
        self,
        server: "PubSubServer",
        reader: TransportReader,
        writer: TransportWriter,
    ) -> None:
        self._server = server
        self._reader = reader
        self._writer = writer
        self._state: Optional[_SessionState] = None
        self._sink: Optional[AsyncDeliverySink] = None
        self._pump_thread: Optional[threading.Thread] = None
        self._pump_stop = threading.Event()
        self._detach_task: Optional["asyncio.Task[None]"] = None
        self._heartbeat_task: Optional["asyncio.Task[None]"] = None
        self._retired = False
        self._finished = False
        self._last_inbound = 0.0

    # -- outbound ------------------------------------------------------------

    def _write(self, envelope: Envelope) -> None:
        """Queue one frame on the transport (never raises on dead sockets)."""
        try:
            self._writer.write(encode_frame(envelope))
        except (ConnectionError, OSError, RuntimeError):
            pass

    async def _send(self, envelope: Envelope) -> None:
        self._write(envelope)
        try:
            await self._writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            pass

    async def _send_error(
        self, code: str, message: str, request_id: Optional[int] = None
    ) -> None:
        envelope: Envelope = {"type": "error", "code": code, "message": message}
        if request_id is not None:
            envelope["id"] = request_id
        await self._send(envelope)

    # -- delivery path (loop side) -------------------------------------------

    async def _deliver(self, notification: Notification) -> None:
        """Drain-task handler: record as unacked, then write the frame."""
        state = self._state
        assert state is not None
        state.unacked.append(notification)
        if self._detach_task is None:
            self._write(event_envelope(notification))
            try:
                await self._writer.drain()
            except (ConnectionError, OSError, RuntimeError):
                pass  # connection died mid-write; unacked keeps the frame
        if len(state.unacked) > self._server.max_unacked:
            # The client stopped acknowledging: detach (resumable) so
            # the retransmit buffer stops growing.  goodbye is best
            # effort — the client may be gone already.
            if self._detach_task is None:
                self._write({"type": "goodbye", "reason": GOODBYE_ACK_OVERDUE})
                self.begin_detach()

    def _pump(self) -> None:
        """Thread: move queue → sink, throttled by the bridge window."""
        state = self._state
        sink = self._sink
        assert state is not None and sink is not None
        queue = state.session.queue
        assert queue is not None
        while not self._pump_stop.is_set():
            if sink.pending >= self._server.bridge_window:
                time.sleep(_PUMP_THROTTLE_SECONDS)
                continue
            notification = queue.get(timeout=_PUMP_POLL_SECONDS)
            if notification is not None:
                sink.deliver(notification)
                continue
            if queue.disconnected and queue.depth == 0:
                # The disconnect policy fired and the staged tail has
                # been delivered: drop the consumer, as the policy
                # models.
                loop = self._server.loop
                if loop is not None:
                    loop.call_soon_threadsafe(self._begin_slow_consumer_close)
                return
            if queue.closed and queue.depth == 0:
                return

    def _begin_slow_consumer_close(self) -> None:
        if not self._retired and self._detach_task is None:
            asyncio.ensure_future(self._retire(GOODBYE_SLOW_CONSUMER))

    # -- attach / detach / retire --------------------------------------------

    def _attach(self, state: _SessionState) -> None:
        """Bind this connection to ``state`` and start the delivery path."""
        state.connection = self
        self._state = state
        self._sink = AsyncDeliverySink(self._deliver)
        self._sink.start()
        self._pump_stop.clear()
        self._pump_thread = threading.Thread(
            target=self._pump,
            name="transport-pump-%s" % state.session.client,
            daemon=True,
        )
        self._pump_thread.start()
        if (
            self._server.heartbeat_interval is not None
            or self._server.idle_timeout is not None
        ):
            self._heartbeat_task = asyncio.ensure_future(self._heartbeat())

    async def _heartbeat(self) -> None:
        """Ping idle peers; reap dead ones (detach — the session stays
        resumable, so a client that was merely partitioned comes back
        by token).  Any inbound frame counts as liveness, so a busy
        publisher is never pinged and a responsive client costs one
        pong per quiet interval."""
        server = self._server
        interval = server.heartbeat_interval
        idle_timeout = server.idle_timeout
        candidates = [t for t in (interval, idle_timeout) if t is not None]
        tick = max(min(candidates) / 4.0, 0.005) if candidates else 1.0
        loop = asyncio.get_running_loop()
        while not self._finished:
            await asyncio.sleep(tick)
            idle = loop.time() - self._last_inbound
            if idle_timeout is not None and idle >= idle_timeout:
                # Dead-peer reaping: nothing inbound for the whole
                # timeout (pings included, if enabled).  goodbye is
                # best effort — the peer is presumed gone.
                await self._send(
                    {"type": "goodbye", "reason": GOODBYE_IDLE_TIMEOUT}
                )
                self.begin_detach()
                return
            if interval is not None and idle >= interval:
                server._ping_serial += 1
                await self._send({"type": "ping", "id": server._ping_serial})

    def begin_detach(self) -> "asyncio.Task[None]":
        """Start (or join) the idempotent detach; returns its task."""
        if self._detach_task is None:
            self._detach_task = asyncio.ensure_future(self._do_detach())
        return self._detach_task

    async def _do_detach(self) -> None:
        """Stop the delivery path, recovering every in-flight
        notification into the unacked buffer; the session stays open
        and resumable."""
        self._finished = True
        if self._heartbeat_task is not None:
            if self._heartbeat_task is not asyncio.current_task():
                self._heartbeat_task.cancel()
            self._heartbeat_task = None
        self._pump_stop.set()
        if self._pump_thread is not None:
            await asyncio.to_thread(self._pump_thread.join)
            self._pump_thread = None
        if self._sink is not None:
            # Drains the bridge backlog through _deliver: with the
            # detach task set, entries go to unacked without writes.
            await self._sink.aclose()
            self._sink = None
        state = self._state
        if state is not None and state.connection is self:
            state.connection = None
        try:
            self._writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass

    async def detach(self) -> None:
        await self.begin_detach()

    async def _retire(self, reason: str) -> None:
        """Close the logical session for good (no resume)."""
        if self._retired:
            return
        self._retired = True
        await self._send({"type": "goodbye", "reason": reason})
        await self.begin_detach()
        state = self._state
        if state is not None:
            self._server._drop_state(state)
            await asyncio.to_thread(state.session.close)

    # -- inbound -------------------------------------------------------------

    async def run(self) -> None:
        decoder = FrameDecoder()
        self._last_inbound = asyncio.get_running_loop().time()
        try:
            while not self._finished:
                data = await self._reader.read(65536)
                if not data:
                    break
                self._last_inbound = asyncio.get_running_loop().time()
                try:
                    messages = decoder.feed(data)
                except ProtocolError as error:
                    # Framing-layer corruption: the stream cannot be
                    # trusted again.  Answer structurally, then drop
                    # the connection (session stays resumable).
                    await self._send_error(error.code, str(error))
                    await self._send(
                        {"type": "goodbye", "reason": GOODBYE_PROTOCOL_ERROR}
                    )
                    break
                for message in messages:
                    if isinstance(message, ProtocolError):
                        # Malformed payload in an intact frame: reject
                        # just the message, keep the connection.
                        await self._send_error(message.code, str(message))
                        continue
                    await self._handle(message)
                    if self._finished:
                        break
        except (ConnectionError, OSError):
            pass
        finally:
            await self.begin_detach()

    async def _handle(self, message: Envelope) -> None:
        kind = message["type"]
        if kind == "hello":
            await self._handle_hello(message)
            return
        if kind == "ping":
            await self._send({"type": "pong", "id": message["id"]})
            return
        if kind == "goodbye":
            await self._retire(GOODBYE_CLIENT_GOODBYE)
            return
        if self._state is None:
            await self._send_error(
                "no-session",
                "send hello before %r" % kind,
                message.get("id"),
            )
            return
        if kind == "ack":
            self._handle_ack(message["delivery_seq"])
            return
        if kind == "publish":
            await self._handle_publish(message)
            return
        if kind == "subscribe":
            await self._handle_subscribe(message)
            return
        if kind == "unsubscribe":
            await self._handle_unsubscribe(message)
            return
        if kind == "replace":
            await self._handle_replace(message)
            return
        if kind == "pong":
            return
        await self._send_error(
            "unexpected-envelope",
            "%r is not a client-to-server envelope" % kind,
            message.get("id"),
        )

    async def _handle_hello(self, message: Envelope) -> None:
        if self._state is not None:
            await self._send_error(
                "already-attached", "this connection already has a session"
            )
            return
        if message["version"] != PROTOCOL_VERSION:
            await self._send_error(
                "bad-version",
                "server speaks protocol %d, client sent %r"
                % (PROTOCOL_VERSION, message["version"]),
            )
            await self._send({"type": "goodbye", "reason": GOODBYE_BAD_VERSION})
            self._finished = True
            return
        client = message["client"]
        if not self._server._authenticate(client, message.get("auth")):
            await self._send_error(
                "auth", "invalid auth token for client %r" % client
            )
            await self._send({"type": "goodbye", "reason": GOODBYE_AUTH})
            self._finished = True
            return
        token = message.get("token")
        if token is not None:
            await self._handle_resume(token, message)
            return
        broker_id = message.get("broker", self._server.broker_id)
        capacity = message.get("queue_capacity", self._server.queue_capacity)
        policy = message.get("policy", self._server.policy)
        if policy not in POLICIES:
            await self._send_error(
                "bad-policy",
                "unknown backpressure policy %r (choose from %s)"
                % (policy, ", ".join(POLICIES)),
            )
            return
        new_token = secrets.token_hex(16)
        try:
            session = await asyncio.to_thread(
                self._server.service.connect,
                broker_id,
                client,
                CountingSink(),
                queue_capacity=capacity,
                policy=policy,
                token=new_token,
            )
        except ReproError as error:
            await self._send_error(_service_code(error), str(error))
            return
        state = _SessionState(new_token, session)
        self._server._add_state(state)
        await self._send(
            {
                "type": "welcome",
                "token": new_token,
                "broker": broker_id,
                "client": client,
                "resumed": False,
                "replayed": 0,
            }
        )
        self._attach(state)

    async def _handle_resume(self, token: str, message: Envelope) -> None:
        state = self._server._state_for(token)
        if state is None or state.session.closed:
            await self._send_error(
                "unknown-token",
                "no resumable session for the presented token",
            )
            await self._send(
                {"type": "goodbye", "reason": GOODBYE_UNKNOWN_TOKEN}
            )
            self._finished = True
            return
        if state.session.client != message["client"]:
            await self._send_error(
                "auth", "token does not belong to client %r" % message["client"]
            )
            await self._send({"type": "goodbye", "reason": GOODBYE_AUTH})
            self._finished = True
            return
        superseded = state.connection
        if superseded is not None and superseded is not self:
            # The previous socket may be dead without the server having
            # noticed yet (an aborted client); detach it fully so its
            # bridge backlog lands in unacked before we replay.
            await superseded.begin_detach()
        last_seen = message.get("last_seen", -1)
        while state.unacked and state.unacked[0].delivery_seq <= last_seen:
            state.unacked.popleft()
        replay = list(state.unacked)
        await self._send(
            {
                "type": "welcome",
                "token": token,
                "broker": state.session.broker_id,
                "client": state.session.client,
                "resumed": True,
                "replayed": len(replay),
            }
        )
        for notification in replay:
            await self._send(event_envelope(notification))
        self._attach(state)

    def _handle_ack(self, delivery_seq: int) -> None:
        state = self._state
        assert state is not None
        while state.unacked and state.unacked[0].delivery_seq <= delivery_seq:
            state.unacked.popleft()

    async def _handle_publish(self, message: Envelope) -> None:
        state = self._state
        assert state is not None
        try:
            event = event_from_wire(message["event"])
        except ProtocolError as error:
            await self._send_error(error.code, str(error), message["id"])
            return
        try:
            flushed = await asyncio.to_thread(state.session.publish, event)
        except ReproError as error:
            await self._send_error(_service_code(error), str(error), message["id"])
            return
        self._server._note_publish(flushed)
        await self._send(
            {"type": "published", "id": message["id"], "flushed": flushed}
        )

    async def _handle_subscribe(self, message: Envelope) -> None:
        state = self._state
        assert state is not None
        try:
            tree = node_from_dict(message["tree"])
            handle = await asyncio.to_thread(state.session.subscribe, tree)
        except ReproError as error:
            await self._send_error(_service_code(error), str(error), message["id"])
            return
        state.handles[handle.id] = handle
        await self._send(
            {"type": "subscribed", "id": message["id"], "subscription": handle.id}
        )

    async def _handle_unsubscribe(self, message: Envelope) -> None:
        state = self._state
        assert state is not None
        handle = state.handles.pop(message["subscription"], None)
        if handle is None:
            await self._send_error(
                "unknown-subscription",
                "no subscription %d on this session" % message["subscription"],
                message["id"],
            )
            return
        try:
            await asyncio.to_thread(handle.unsubscribe)
        except ReproError as error:
            await self._send_error(_service_code(error), str(error), message["id"])
            return
        await self._send(
            {
                "type": "unsubscribed",
                "id": message["id"],
                "subscription": message["subscription"],
            }
        )

    async def _handle_replace(self, message: Envelope) -> None:
        state = self._state
        assert state is not None
        handle = state.handles.get(message["subscription"])
        if handle is None:
            await self._send_error(
                "unknown-subscription",
                "no subscription %d on this session" % message["subscription"],
                message["id"],
            )
            return
        try:
            tree = node_from_dict(message["tree"])
            await asyncio.to_thread(handle.replace, tree)
        except ReproError as error:
            await self._send_error(_service_code(error), str(error), message["id"])
            return
        await self._send(
            {
                "type": "replaced",
                "id": message["id"],
                "subscription": message["subscription"],
            }
        )


def _service_code(error: ReproError) -> str:
    """The wire error code for a service-layer exception."""
    if isinstance(error, TransportError):
        return error.code
    return "service"


class PubSubServer:
    """Serve a :class:`~repro.service.service.PubSubService` over TCP.

    The server *borrows* the service: it opens one session per
    connection (closing them as connections retire) but never closes
    the service itself, so in-process sessions, direct substrate use,
    and the socket frontier coexist on one engine.

    ``auth_tokens`` maps client names to required ``hello.auth``
    values; ``None`` disables authentication.  ``queue_capacity`` /
    ``policy`` are the per-connection send-buffer defaults (a client's
    ``hello`` may override them); ``max_unacked`` bounds the retransmit
    buffer of a client that stops acknowledging (the connection is
    detached — resumable — when it overflows).

    ``heartbeat_interval`` pings connections quiet for that many
    seconds; ``idle_timeout`` reaps connections with *no* inbound
    traffic (pongs included) for that many seconds — a resumable
    detach with goodbye reason ``"idle-timeout"``, so a partitioned
    client rejoins by token.  Both default to ``None`` (off).
    ``stream_wrapper`` interposes every accepted connection's byte
    streams (see :mod:`repro.transport.streams`; used by
    :func:`repro.faults.faulty_stream` for chaos testing).

    ``flush_linger`` is the
    idle-tail deadline: a wire publish that leaves the ingress batch
    partially filled arms a timer that flushes it once no further
    publish arrives within that many seconds (remote publishers have no
    ``service.flush()``), so bursts batch but tails never strand.

    Use as an async context manager, or ``await start()`` /
    ``await close()`` explicitly::

        service = PubSubService(topology=line_topology(1))
        async with PubSubServer(service, "b0", port=0) as server:
            client = PubSubClient("127.0.0.1", server.port, "alice")
            ...

    ``port=0`` binds an ephemeral port, exposed as :attr:`port` after
    :meth:`start`.
    """

    def __init__(
        self,
        service: PubSubService,
        broker_id: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_tokens: Optional[Mapping[str, str]] = None,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        policy: str = "block",
        bridge_window: int = DEFAULT_BRIDGE_WINDOW,
        max_unacked: Optional[int] = None,
        flush_linger: float = 0.01,
        heartbeat_interval: Optional[float] = None,
        idle_timeout: Optional[float] = None,
        stream_wrapper: Optional[StreamWrapper] = None,
    ) -> None:
        if broker_id not in service.network.brokers:
            raise TransportError(
                "unknown broker %r" % broker_id, code="unknown-broker"
            )
        self.service = service
        self.broker_id = broker_id
        self.host = host
        self.queue_capacity = queue_capacity
        self.policy = policy
        self.bridge_window = bridge_window
        self.max_unacked = (
            max_unacked
            if max_unacked is not None
            else max(4 * queue_capacity, 4 * bridge_window)
        )
        self.flush_linger = flush_linger
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise TransportError("heartbeat_interval must be > 0")
        if idle_timeout is not None and idle_timeout <= 0:
            raise TransportError("idle_timeout must be > 0")
        self.heartbeat_interval = heartbeat_interval
        self.idle_timeout = idle_timeout
        self.stream_wrapper = stream_wrapper
        self._ping_serial = 0
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._requested_port = port
        self._auth_tokens = dict(auth_tokens) if auth_tokens is not None else None
        self._server: Optional[asyncio.AbstractServer] = None
        self._states: Dict[str, _SessionState] = {}
        self._connections: List[_Connection] = []
        self._connection_tasks: "set[asyncio.Task[None]]" = set()
        self._flush_timer: Optional[asyncio.TimerHandle] = None
        self._flush_tasks: "set[asyncio.Task[None]]" = set()
        self._port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise TransportError("server is already running")
        self.loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port
        )
        sockets = self._server.sockets
        self._port = int(sockets[0].getsockname()[1]) if sockets else None

    @property
    def port(self) -> int:
        """The bound TCP port (ephemeral ports resolved by start())."""
        if self._port is None:
            raise TransportError("server has not started")
        return self._port

    async def close(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain attached connections, close sessions.

        The graceful path: pending ingress events are flushed into the
        per-connection queues, each attached connection gets up to
        ``drain_timeout`` seconds to write its tail to the socket, then
        every session is retired with a ``goodbye`` (reason
        ``"server-shutdown"``).  Detached (resumable) sessions are
        closed too — after this, nothing can resume.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        if self._flush_tasks:
            await asyncio.wait(set(self._flush_tasks), timeout=2.0)
        await asyncio.to_thread(self.service.flush)
        deadline = time.monotonic() + drain_timeout
        for connection in list(self._connections):
            state = connection._state
            if state is None or connection._finished:
                continue
            queue = state.session.queue
            while time.monotonic() < deadline:
                sink = connection._sink
                if (queue is None or queue.depth == 0) and (
                    sink is None or sink.pending == 0
                ):
                    break
                await asyncio.sleep(0.005)
            await connection._retire(GOODBYE_SERVER_SHUTDOWN)
        for connection in list(self._connections):
            await connection.begin_detach()
        self._connections.clear()
        for state in list(self._states.values()):
            self._drop_state(state)
            await asyncio.to_thread(state.session.close)
        # Let the per-connection handler tasks run to completion, so
        # nothing is left to be cancelled noisily at loop shutdown.
        tasks = {
            task
            for task in self._connection_tasks
            if task is not asyncio.current_task()
        }
        if tasks:
            await asyncio.wait(tasks, timeout=2.0)

    async def __aenter__(self) -> "PubSubServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- connection plumbing -------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        t_reader: TransportReader = reader
        t_writer: TransportWriter = writer
        if self.stream_wrapper is not None:
            t_reader, t_writer = self.stream_wrapper(t_reader, t_writer)
        connection = _Connection(self, t_reader, t_writer)
        self._connections.append(connection)
        try:
            await connection.run()
        finally:
            if connection in self._connections:
                self._connections.remove(connection)
            if task is not None:
                self._connection_tasks.discard(task)

    def _note_publish(self, flushed: bool) -> None:
        """Arm (or disarm) the linger flush after a wire publish.

        A remote publisher has no ``service.flush()``: without this, a
        partial ingress batch — the tail of a publish burst smaller
        than ``max_batch`` — would sit buffered until some *other*
        activity flushed it.  Each publish that leaves events buffered
        re-arms a ``flush_linger``-second timer; a publish that flushed
        (or a newer publish) disarms/resets it, so the timer only fires
        once the wire goes quiet and batching still amortizes bursts.
        """
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        if flushed or self.loop is None:
            return
        self._flush_timer = self.loop.call_later(
            self.flush_linger, self._fire_linger_flush
        )

    def _fire_linger_flush(self) -> None:
        self._flush_timer = None
        task = asyncio.ensure_future(self._flush_idle_tail())
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    async def _flush_idle_tail(self) -> None:
        try:
            await asyncio.to_thread(self.service.flush)
        except ReproError:
            # Flush failures surface to publishers on their next round
            # trip (and to sinks via the service's error containment);
            # the idle timer itself has no one to report to.
            pass

    def _authenticate(self, client: str, auth: Optional[str]) -> bool:
        if self._auth_tokens is None:
            return True
        expected = self._auth_tokens.get(client)
        return expected is not None and auth == expected

    def _add_state(self, state: _SessionState) -> None:
        self._states[state.token] = state

    def _state_for(self, token: str) -> Optional[_SessionState]:
        return self._states.get(token)

    def _drop_state(self, state: _SessionState) -> None:
        self._states.pop(state.token, None)

    # -- introspection -------------------------------------------------------

    @property
    def session_count(self) -> int:
        """Open transport sessions (attached or detached-resumable)."""
        return len(self._states)

    @property
    def resumable_tokens(self) -> Tuple[str, ...]:
        """Tokens of sessions currently detached but resumable."""
        return tuple(
            token
            for token, state in self._states.items()
            if state.connection is None
        )

    def __repr__(self) -> str:
        where = (
            "%s:%s" % (self.host, self._port)
            if self._port is not None
            else "unbound"
        )
        return "PubSubServer(%s, broker=%r, sessions=%d)" % (
            where,
            self.broker_id,
            len(self._states),
        )
