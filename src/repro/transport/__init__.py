"""The network transport edge: a wire protocol over the service layer.

``repro.transport`` puts a socket in front of
:class:`~repro.service.service.PubSubService`: a stdlib-only asyncio
TCP server (:class:`~repro.transport.server.PubSubServer`) and client
(:class:`~repro.transport.client.PubSubClient`) speaking length-prefixed
JSON frames (:mod:`repro.transport.protocol`).  The PR-7 bounded
delivery queues become per-connection send buffers, disconnected
clients resume their session by token with no loss or duplication, and
the remote API mirrors the in-process session surface.  Both sides can
heartbeat (``ping``/``pong``) — the server reaps dead peers into
resumable detached sessions, the client aborts unresponsive
connections and, with ``auto_reconnect``, heals them under capped
jittered backoff; every ``goodbye`` carries a reason from the
``GOODBYE_*`` taxonomy that :func:`~repro.transport.protocol.
resumable_disconnect` classifies.  See ``docs/ARCHITECTURE.md``
("Transport" and "Fault tolerance").
"""

from repro.transport.client import PubSubClient, RemoteSubscriptionHandle
from repro.transport.protocol import (
    ENVELOPE_SCHEMA,
    ENVELOPE_TYPES,
    GOODBYE_ACK_OVERDUE,
    GOODBYE_AUTH,
    GOODBYE_BAD_VERSION,
    GOODBYE_CLIENT_CLOSE,
    GOODBYE_CLIENT_GOODBYE,
    GOODBYE_IDLE_TIMEOUT,
    GOODBYE_PROTOCOL_ERROR,
    GOODBYE_SERVER_SHUTDOWN,
    GOODBYE_SLOW_CONSUMER,
    GOODBYE_UNKNOWN_TOKEN,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    RESUMABLE_GOODBYE_REASONS,
    Envelope,
    FrameDecoder,
    encode_frame,
    event_envelope,
    event_from_wire,
    event_to_wire,
    notification_from_envelope,
    resumable_disconnect,
    validate_envelope,
)
from repro.transport.server import PubSubServer
from repro.transport.streams import (
    StreamWrapper,
    TransportReader,
    TransportWriter,
)

__all__ = [
    "encode_frame",
    "Envelope",
    "ENVELOPE_SCHEMA",
    "ENVELOPE_TYPES",
    "event_envelope",
    "event_from_wire",
    "event_to_wire",
    "FrameDecoder",
    "GOODBYE_ACK_OVERDUE",
    "GOODBYE_AUTH",
    "GOODBYE_BAD_VERSION",
    "GOODBYE_CLIENT_CLOSE",
    "GOODBYE_CLIENT_GOODBYE",
    "GOODBYE_IDLE_TIMEOUT",
    "GOODBYE_PROTOCOL_ERROR",
    "GOODBYE_SERVER_SHUTDOWN",
    "GOODBYE_SLOW_CONSUMER",
    "GOODBYE_UNKNOWN_TOKEN",
    "MAX_FRAME_BYTES",
    "notification_from_envelope",
    "PROTOCOL_VERSION",
    "PubSubClient",
    "PubSubServer",
    "RemoteSubscriptionHandle",
    "resumable_disconnect",
    "RESUMABLE_GOODBYE_REASONS",
    "StreamWrapper",
    "TransportReader",
    "TransportWriter",
    "validate_envelope",
]
