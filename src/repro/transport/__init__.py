"""The network transport edge: a wire protocol over the service layer.

``repro.transport`` puts a socket in front of
:class:`~repro.service.service.PubSubService`: a stdlib-only asyncio
TCP server (:class:`~repro.transport.server.PubSubServer`) and client
(:class:`~repro.transport.client.PubSubClient`) speaking length-prefixed
JSON frames (:mod:`repro.transport.protocol`).  The PR-7 bounded
delivery queues become per-connection send buffers, disconnected
clients resume their session by token with no loss or duplication, and
the remote API mirrors the in-process session surface.  See
``docs/ARCHITECTURE.md`` ("Transport").
"""

from repro.transport.client import PubSubClient, RemoteSubscriptionHandle
from repro.transport.protocol import (
    ENVELOPE_SCHEMA,
    ENVELOPE_TYPES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Envelope,
    FrameDecoder,
    encode_frame,
    event_envelope,
    event_from_wire,
    event_to_wire,
    notification_from_envelope,
    validate_envelope,
)
from repro.transport.server import PubSubServer

__all__ = [
    "encode_frame",
    "Envelope",
    "ENVELOPE_SCHEMA",
    "ENVELOPE_TYPES",
    "event_envelope",
    "event_from_wire",
    "event_to_wire",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "notification_from_envelope",
    "PROTOCOL_VERSION",
    "PubSubClient",
    "PubSubServer",
    "RemoteSubscriptionHandle",
    "validate_envelope",
]
