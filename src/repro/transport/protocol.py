"""The wire protocol: length-prefixed JSON frames and typed envelopes.

Every message on a transport connection is one **frame**: a 4-byte
big-endian length prefix followed by that many bytes of UTF-8 JSON.
The JSON object is an **envelope** — a dict with a ``"type"`` field
naming one of :data:`ENVELOPE_TYPES` and the per-type fields listed in
the schema table below.  Subscription filter trees ride the existing
dict codec (:func:`repro.subscriptions.serialize.node_to_dict` /
:func:`~repro.subscriptions.serialize.node_from_dict`), and events are
their plain attribute-value dicts (all four value kinds — ``str``,
``int``, ``float``, ``bool`` — are JSON-native, so the round trip is
exact).

Request/response pairs carry a client-chosen correlation ``id``:

====================  =====================================================
``hello``             client → server: open or resume a session
``welcome``           server → client: session token, broker, resume stats
``subscribe(d)``      register a filter tree; response carries the
                      server-assigned subscription id
``unsubscribe(d)``    withdraw one subscription
``replace(d)``        swap a subscription's tree, keeping its id
``publish(ed)``       submit one event through the service ingress
``event``             server → client: one matched delivery (sequence,
                      subscription id, gapless per-session delivery_seq)
``ack``               client → server: highest ``delivery_seq`` seen, lets
                      the server trim its retransmit buffer
``error``             structured failure; carries the request ``id`` when
                      it answers one
``ping``/``pong``     liveness probe (either direction)
``goodbye``           orderly close (either direction)
====================  =====================================================

Decoding is **resynchronizing where possible**: a frame whose payload
is not valid JSON (or not a valid envelope) is consumed and surfaced as
an in-band :class:`~repro.errors.ProtocolError` — the framing layer is
intact, so the peer can answer with an ``error`` envelope and keep the
connection.  Only framing-layer violations (an oversized length prefix)
raise, because after one of those the byte stream cannot be trusted
again.  Both directions are property-tested in
``tests/test_transport_protocol.py`` (split/partial/concatenated reads,
every envelope type, malformed-frame rejection).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, List, Mapping, Tuple, Union

from repro.errors import ProtocolError
from repro.events import Event
from repro.service.sinks import Notification

#: Version the ``hello`` envelope announces; the server refuses others.
PROTOCOL_VERSION = 1

#: Hard upper bound on one frame's JSON payload, in bytes.  A length
#: prefix above this is treated as stream corruption, not a large
#: message: the connection cannot resynchronize and must close.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct("!I")

#: One decoded wire message: a JSON object with a ``"type"`` field.
Envelope = Dict[str, Any]

_Check = Tuple[str, Callable[[object], bool]]


def _is_str(value: object) -> bool:
    return isinstance(value, str)


def _is_int(value: object) -> bool:
    # bool is a subclass of int; an envelope field declared int must
    # not accept true/false.
    return isinstance(value, int) and not isinstance(value, bool)


def _is_bool(value: object) -> bool:
    return isinstance(value, bool)


def _is_dict(value: object) -> bool:
    return isinstance(value, dict)


_STR: _Check = ("string", _is_str)
_INT: _Check = ("integer", _is_int)
_BOOL: _Check = ("boolean", _is_bool)
_DICT: _Check = ("object", _is_dict)

#: ``type`` → (required fields, optional fields); each field maps to a
#: (human-readable kind, checker) pair.  Unknown extra fields are
#: tolerated (ignored) for forward compatibility.
ENVELOPE_SCHEMA: Dict[str, Tuple[Dict[str, _Check], Dict[str, _Check]]] = {
    "hello": (
        {"client": _STR, "version": _INT},
        {
            "auth": _STR,
            "broker": _STR,
            "token": _STR,
            "last_seen": _INT,
            "queue_capacity": _INT,
            "policy": _STR,
        },
    ),
    "welcome": (
        {
            "token": _STR,
            "broker": _STR,
            "client": _STR,
            "resumed": _BOOL,
            "replayed": _INT,
        },
        {},
    ),
    "subscribe": ({"id": _INT, "tree": _DICT}, {}),
    "subscribed": ({"id": _INT, "subscription": _INT}, {}),
    "unsubscribe": ({"id": _INT, "subscription": _INT}, {}),
    "unsubscribed": ({"id": _INT, "subscription": _INT}, {}),
    "replace": ({"id": _INT, "subscription": _INT, "tree": _DICT}, {}),
    "replaced": ({"id": _INT, "subscription": _INT}, {}),
    "publish": ({"id": _INT, "event": _DICT}, {}),
    "published": ({"id": _INT, "flushed": _BOOL}, {}),
    "event": (
        {
            "event": _DICT,
            "sequence": _INT,
            "subscription": _INT,
            "delivery_seq": _INT,
        },
        {},
    ),
    "ack": ({"delivery_seq": _INT}, {}),
    "error": ({"code": _STR, "message": _STR}, {"id": _INT}),
    "ping": ({"id": _INT}, {}),
    "pong": ({"id": _INT}, {}),
    "goodbye": ({}, {"reason": _STR}),
}

#: All envelope types the protocol speaks, in schema order.
ENVELOPE_TYPES: Tuple[str, ...] = tuple(ENVELOPE_SCHEMA)

# ---------------------------------------------------------------------------
# goodbye reasons
# ---------------------------------------------------------------------------
#
# Every ``goodbye`` a peer sends carries one of these reasons, and the
# reason is *load-bearing*: a reconnecting client must know whether its
# session token is still resumable (rejoin with ``hello.token``) or the
# session is gone for good (reconnect means resubscribing from scratch).
# The constants below are the complete taxonomy; the split into
# resumable vs terminal is what :func:`resumable_disconnect` answers.

#: Server detached a client whose retransmit buffer overflowed
#: (``max_unacked``); the session is parked, resumable by token.
GOODBYE_ACK_OVERDUE = "ack-overdue"
#: Server reaped a dead/idle peer (no inbound traffic within
#: ``idle_timeout``); the session is parked, resumable by token.
GOODBYE_IDLE_TIMEOUT = "idle-timeout"
#: Framing-layer corruption forced the connection closed; the byte
#: stream was the casualty, not the session — resumable by token.
GOODBYE_PROTOCOL_ERROR = "protocol-error"
#: Handshake refused: protocol version mismatch.  Terminal.
GOODBYE_BAD_VERSION = "bad-version"
#: Handshake refused: authentication failure.  Terminal.
GOODBYE_AUTH = "auth"
#: Resume refused: the token names no live session.  Terminal.
GOODBYE_UNKNOWN_TOKEN = "unknown-token"
#: The client said goodbye; the server retired the session.  Terminal.
GOODBYE_CLIENT_GOODBYE = "client-goodbye"
#: Reason a client sends with its own orderly goodbye.
GOODBYE_CLIENT_CLOSE = "client-close"
#: The ``disconnect`` backpressure policy dropped the consumer.
#: Terminal.
GOODBYE_SLOW_CONSUMER = "slow-consumer"
#: The server is shutting down; nothing can resume after.  Terminal.
GOODBYE_SERVER_SHUTDOWN = "server-shutdown"

#: Server-sent goodbye reasons after which the session token remains
#: valid: reconnect with ``hello.token`` and the unacked tail replays.
RESUMABLE_GOODBYE_REASONS = frozenset(
    {GOODBYE_ACK_OVERDUE, GOODBYE_IDLE_TIMEOUT, GOODBYE_PROTOCOL_ERROR}
)


def resumable_disconnect(reason: Optional[str]) -> bool:
    """Whether a disconnect that surfaced ``reason`` can resume by token.

    ``reason`` is the ``goodbye.reason`` received before the drop, or
    ``None`` when the connection died without one — a network fault,
    which is always worth a resume attempt (the server parks ungraceful
    disconnects).  A structured terminal reason (auth, unknown token,
    shutdown, ...) means backoff-reconnect should stop retrying the
    token: the session is gone, and coming back means a fresh ``hello``
    and resubscription.

    >>> resumable_disconnect(None)
    True
    >>> resumable_disconnect(GOODBYE_ACK_OVERDUE)
    True
    >>> resumable_disconnect(GOODBYE_SERVER_SHUTDOWN)
    False
    """
    return reason is None or reason in RESUMABLE_GOODBYE_REASONS


def validate_envelope(data: object) -> Envelope:
    """Check ``data`` against :data:`ENVELOPE_SCHEMA` and return it.

    Raises a *recoverable* :class:`~repro.errors.ProtocolError` (code
    ``"bad-envelope"``) when ``data`` is not an object, names no known
    type, misses a required field, or carries a field of the wrong
    JSON kind.
    """
    if not isinstance(data, dict):
        raise ProtocolError(
            "envelope must be a JSON object, got %s" % type(data).__name__,
            code="bad-envelope",
        )
    kind = data.get("type")
    if not isinstance(kind, str) or kind not in ENVELOPE_SCHEMA:
        raise ProtocolError(
            "unknown envelope type %r" % (kind,), code="bad-envelope"
        )
    required, optional = ENVELOPE_SCHEMA[kind]
    for field, (expected, check) in required.items():
        if field not in data:
            raise ProtocolError(
                "%s envelope requires field %r" % (kind, field),
                code="bad-envelope",
            )
        if not check(data[field]):
            raise ProtocolError(
                "%s field %r must be a JSON %s" % (kind, field, expected),
                code="bad-envelope",
            )
    for field, (expected, check) in optional.items():
        if field in data and not check(data[field]):
            raise ProtocolError(
                "%s field %r must be a JSON %s" % (kind, field, expected),
                code="bad-envelope",
            )
    return data


def encode_frame(envelope: Envelope) -> bytes:
    """One wire frame: length prefix + compact JSON of ``envelope``.

    The envelope is validated first, so a malformed message fails at
    the sender (a :class:`~repro.errors.ProtocolError`) instead of on
    the peer.
    """
    validate_envelope(envelope)
    payload = json.dumps(
        envelope, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame payload of %d bytes exceeds the %d-byte limit"
            % (len(payload), MAX_FRAME_BYTES),
            code="frame-too-large",
            recoverable=False,
        )
    return _LENGTH.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder tolerant of arbitrary read boundaries.

    Feed it whatever the socket produced — half a frame, three frames
    and a prefix, one byte at a time — and it returns every message
    completed so far, in order.  Malformed *payloads* come back in-band
    as recoverable :class:`~repro.errors.ProtocolError` items (the
    frame is consumed, the stream stays synchronized); an oversized
    length prefix raises an unrecoverable one.

    >>> decoder = FrameDecoder()
    >>> frame = encode_frame({"type": "ping", "id": 7})
    >>> decoder.feed(frame[:3])
    []
    >>> [m["id"] for m in decoder.feed(frame[3:] + frame)]
    [7, 7]
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes received but not yet part of a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Union[Envelope, ProtocolError]]:
        """Buffer ``data`` and return every message it completed."""
        self._buffer.extend(data)
        messages: List[Union[Envelope, ProtocolError]] = []
        while len(self._buffer) >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise ProtocolError(
                    "frame length prefix of %d bytes exceeds the %d-byte "
                    "limit; stream cannot resynchronize"
                    % (length, self.max_frame_bytes),
                    code="frame-too-large",
                    recoverable=False,
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[_LENGTH.size : end])
            del self._buffer[:end]
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                messages.append(
                    ProtocolError(
                        "frame payload is not valid JSON: %s" % error,
                        code="bad-json",
                    )
                )
                continue
            try:
                messages.append(validate_envelope(decoded))
            except ProtocolError as error:
                messages.append(error)
        return messages


# ---------------------------------------------------------------------------
# event / notification codecs
# ---------------------------------------------------------------------------


def event_to_wire(event: Event) -> Dict[str, Any]:
    """The JSON-safe attribute-value dict of ``event``."""
    return event.to_dict()


def event_from_wire(data: object) -> Event:
    """Rebuild an :class:`~repro.events.Event` from its wire dict.

    Raises a recoverable :class:`~repro.errors.ProtocolError` (code
    ``"bad-event"``) for non-object payloads and for attribute names or
    value types the event model refuses.
    """
    if not isinstance(data, Mapping):
        raise ProtocolError(
            "event payload must be a JSON object, got %s"
            % type(data).__name__,
            code="bad-event",
        )
    try:
        return Event(data)
    except TypeError as error:
        raise ProtocolError(str(error), code="bad-event")


def event_envelope(notification: Notification) -> Envelope:
    """The ``event`` envelope announcing one delivery to a client."""
    return {
        "type": "event",
        "event": event_to_wire(notification.event),
        "sequence": notification.sequence,
        "subscription": notification.subscription_id,
        "delivery_seq": notification.delivery_seq,
    }


def notification_from_envelope(
    envelope: Envelope, client: str, broker_id: str
) -> Notification:
    """Rebuild the :class:`~repro.service.sinks.Notification` an
    ``event`` envelope carries.

    ``client``/``broker_id`` come from the connection's session (the
    wire omits them — a connection only ever receives its own
    deliveries), so client-side records are field-for-field comparable
    with what an in-process sink would have seen.
    """
    return Notification(
        event_from_wire(envelope["event"]),
        envelope["sequence"],
        client,
        broker_id,
        envelope["subscription"],
        envelope["delivery_seq"],
    )
