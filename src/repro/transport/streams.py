"""Structural stream types: what the transport needs from a socket.

:class:`~repro.transport.server.PubSubServer` and
:class:`~repro.transport.client.PubSubClient` use only a narrow slice of
the asyncio stream API — ``read`` on the reader; ``write``/``drain``/
``close`` and the ``transport`` handle on the writer.  These protocols
name that slice, so anything satisfying them can stand in for the real
streams.  That is the seam the fault-injection layer plugs into: a
``stream_wrapper`` callable handed to the server or client receives the
freshly opened ``(reader, writer)`` pair and returns the pair actually
used — identity on the happy path, a :class:`~repro.faults.wire.
FaultyReader`/:class:`~repro.faults.wire.FaultyWriter` pair under a
chaos plan.  The wrapped connection speaks the same protocol; only the
byte stream misbehaves.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Protocol, Tuple


class TransportReader(Protocol):
    """The reader surface the transport consumes (``StreamReader``-shaped)."""

    async def read(self, n: int = -1) -> bytes: ...


class TransportWriter(Protocol):
    """The writer surface the transport consumes (``StreamWriter``-shaped)."""

    @property
    def transport(self) -> asyncio.WriteTransport: ...

    def write(self, data: bytes) -> None: ...

    async def drain(self) -> None: ...

    def close(self) -> None: ...


#: A connection interposer: receives the freshly opened stream pair,
#: returns the pair the transport will actually use.
StreamWrapper = Callable[
    [TransportReader, TransportWriter],
    Tuple[TransportReader, TransportWriter],
]
