"""The asyncio client: a remote session that mirrors the in-process API.

:class:`PubSubClient` dials a :class:`~repro.transport.server.
PubSubServer`, performs the ``hello``/``welcome`` handshake, and then
exposes the session surface remotely: ``subscribe`` returns a
:class:`RemoteSubscriptionHandle` (the async mirror of
:class:`~repro.service.session.SubscriptionHandle`), ``publish`` rides
the server's micro-batching ingress, and matched deliveries arrive as
:class:`~repro.service.sinks.Notification` records in
:attr:`PubSubClient.notifications` — field-for-field what an in-process
sink would have seen, which is exactly how the E2E suite compares a
remote client against its oracle.

Requests carry correlation ids; a background reader task resolves them
and folds ``event`` frames into the notification log, acknowledging the
highest ``delivery_seq`` seen after each read so the server can trim its
retransmit buffer.  Deliveries already seen (a replay overlap after
reconnect) are counted in :attr:`duplicates` and dropped — the log is
exactly-once.

Reconnect is first-class: :meth:`abort` kills the socket without any
goodbye (simulating a crash), :meth:`reconnect` dials again presenting
the session token and the last seen ``delivery_seq``, and the server
replays the unacknowledged tail.  Use as an async context manager::

    async with PubSubClient("127.0.0.1", port, "alice") as client:
        handle = await client.subscribe(P("x") == 1)
        await client.publish(Event({"x": 1}))
        await client.wait_for_notifications(1)
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Type

from repro.errors import ProtocolError, TransportError
from repro.events import Event
from repro.service.sinks import Notification
from repro.subscriptions.nodes import Node
from repro.subscriptions.serialize import node_to_dict
from repro.transport.protocol import (
    PROTOCOL_VERSION,
    Envelope,
    FrameDecoder,
    encode_frame,
    event_to_wire,
    notification_from_envelope,
)


class RemoteSubscriptionHandle:
    """A live reference to one subscription registered over the wire.

    Mirrors :class:`~repro.service.session.SubscriptionHandle`:
    ``handle.id`` is the server-assigned global subscription id, and
    the handle is the capability to :meth:`replace` or
    :meth:`unsubscribe` — just asynchronously, because each is a wire
    round trip.  Handles survive reconnects: the server-side session
    (and its subscriptions) outlives the socket.
    """

    __slots__ = ("_client", "_id", "_tree", "_active")

    def __init__(self, client: "PubSubClient", subscription_id: int, tree: Node) -> None:
        self._client = client
        self._id = subscription_id
        self._tree = tree
        self._active = True

    @property
    def id(self) -> int:
        """The server-assigned global subscription id."""
        return self._id

    @property
    def tree(self) -> Node:
        """The filter tree most recently sent for this subscription."""
        return self._tree

    @property
    def active(self) -> bool:
        """``False`` once unsubscribed."""
        return self._active

    async def replace(self, tree: Node) -> None:
        """Swap the subscription's filter tree, keeping its id."""
        self._require_active()
        await self._client._request(
            {
                "type": "replace",
                "subscription": self._id,
                "tree": node_to_dict(tree),
            }
        )
        self._tree = tree

    async def unsubscribe(self) -> None:
        """Withdraw the subscription from the whole network."""
        self._require_active()
        await self._client._request(
            {"type": "unsubscribe", "subscription": self._id}
        )
        self._active = False

    def _require_active(self) -> None:
        if not self._active:
            raise TransportError(
                "subscription handle %d is no longer active" % self._id,
                code="inactive-handle",
            )

    def __repr__(self) -> str:
        return "RemoteSubscriptionHandle(id=%d, client=%r, active=%s)" % (
            self._id,
            self._client.client,
            self._active,
        )


class PubSubClient:
    """One remote pub/sub session over a TCP connection.

    ``client`` names the session (the server enforces one open session
    per ``(broker, client)`` pair); ``broker`` picks the attachment
    broker (server default when omitted); ``auth`` is the shared secret
    checked against the server's ``auth_tokens``; ``queue_capacity`` /
    ``policy`` configure the server-side send buffer for this session.
    ``on_event`` (if given) is called synchronously with each fresh
    :class:`~repro.service.sinks.Notification` as it is decoded.

    The client tracks :attr:`last_seen` (highest ``delivery_seq``
    folded into :attr:`notifications`) and :attr:`duplicates` (replayed
    deliveries it dropped), and keeps its session :attr:`token` across
    :meth:`abort`/:meth:`reconnect` cycles.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client: str,
        *,
        broker: Optional[str] = None,
        auth: Optional[str] = None,
        queue_capacity: Optional[int] = None,
        policy: Optional[str] = None,
        on_event: Optional[Callable[[Notification], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.client = client
        self.broker: Optional[str] = broker
        self.auth = auth
        self.queue_capacity = queue_capacity
        self.policy = policy
        self.token: Optional[str] = None
        #: Every fresh delivery, in arrival order (exactly-once).
        self.notifications: List[Notification] = []
        #: Highest ``delivery_seq`` in :attr:`notifications`.
        self.last_seen = -1
        #: Replayed deliveries dropped by the dedup filter.
        self.duplicates = 0
        #: Recoverable protocol errors the *server* sent us (rare).
        self.protocol_errors: List[ProtocolError] = []
        #: ``goodbye`` reason received from the server, if any.
        self.goodbye_reason: Optional[str] = None
        self._on_event = on_event
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self._pending: Dict[int, "asyncio.Future[Envelope]"] = {}
        self._welcome: Optional["asyncio.Future[Envelope]"] = None
        self._notified: Optional[asyncio.Event] = None
        self._goodbye_seen: Optional[asyncio.Event] = None
        self._next_id = 0
        self._connected = False

    # -- connection lifecycle ------------------------------------------------

    async def connect(self) -> Envelope:
        """Dial and open a fresh session; returns the ``welcome``."""
        if self.token is not None:
            raise TransportError(
                "client already has a session token; use reconnect()"
            )
        return await self._dial(resume=False)

    async def reconnect(self) -> int:
        """Dial again and resume the session under the stored token.

        Returns the number of deliveries the server replayed (the
        unacknowledged tail; already-seen ones are deduplicated into
        :attr:`duplicates`).
        """
        if self.token is None:
            raise TransportError("no session token to resume; call connect()")
        welcome = await self._dial(resume=True)
        replayed = welcome["replayed"]
        assert isinstance(replayed, int)
        return replayed

    async def _dial(self, resume: bool) -> Envelope:
        if self._connected:
            raise TransportError("client is already connected")
        loop = asyncio.get_running_loop()
        self._notified = asyncio.Event()
        self._goodbye_seen = asyncio.Event()
        self.goodbye_reason = None
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._welcome = loop.create_future()
        self._connected = True
        self._reader_task = loop.create_task(self._read_loop())
        hello: Envelope = {
            "type": "hello",
            "client": self.client,
            "version": PROTOCOL_VERSION,
        }
        if self.auth is not None:
            hello["auth"] = self.auth
        if resume:
            assert self.token is not None
            hello["token"] = self.token
            hello["last_seen"] = self.last_seen
        else:
            if self.broker is not None:
                hello["broker"] = self.broker
            if self.queue_capacity is not None:
                hello["queue_capacity"] = self.queue_capacity
            if self.policy is not None:
                hello["policy"] = self.policy
        self._send(hello)
        try:
            welcome = await self._welcome
        except TransportError:
            await self.close()
            raise
        token = welcome["token"]
        broker = welcome["broker"]
        assert isinstance(token, str) and isinstance(broker, str)
        self.token = token
        self.broker = broker
        return welcome

    @property
    def connected(self) -> bool:
        """``True`` while the socket is up and the reader is running."""
        return self._connected

    async def close(self) -> None:
        """Say goodbye (if still connected) and tear the socket down.

        Graceful: the server retires the session, so the token cannot
        be resumed afterwards.  Use :meth:`abort` to keep it resumable.
        """
        if self._connected and self._writer is not None:
            try:
                self._send({"type": "goodbye", "reason": "client-close"})
                await self._writer.drain()
            except (ConnectionError, OSError, RuntimeError):
                pass
            goodbye = self._goodbye_seen
            if goodbye is not None:
                try:
                    await asyncio.wait_for(goodbye.wait(), timeout=1.0)
                except asyncio.TimeoutError:
                    pass
        await self._teardown()

    async def abort(self) -> None:
        """Kill the socket with no goodbye — simulates a client crash.

        The server detaches the session but keeps it resumable; the
        token and :attr:`last_seen` survive for :meth:`reconnect`.
        """
        if self._writer is not None:
            transport = self._writer.transport
            transport.abort()
        await self._teardown()

    async def _teardown(self) -> None:
        self._connected = False
        task = self._reader_task
        self._reader_task = None
        if task is not None and task is not asyncio.current_task():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            try:
                self._writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
            self._writer = None
        self._reader = None
        self._fail_pending(TransportError("connection closed", code="closed"))

    async def __aenter__(self) -> "PubSubClient":
        if not self._connected and self.token is None:
            await self.connect()
        return self

    async def __aexit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        traceback: Optional[object],
    ) -> None:
        await self.close()

    # -- requests ------------------------------------------------------------

    async def subscribe(self, tree: Node) -> RemoteSubscriptionHandle:
        """Register a filter tree; returns the remote handle."""
        reply = await self._request(
            {"type": "subscribe", "tree": node_to_dict(tree)}
        )
        subscription_id = reply["subscription"]
        assert isinstance(subscription_id, int)
        return RemoteSubscriptionHandle(self, subscription_id, tree)

    async def publish(self, event: Event) -> bool:
        """Submit one event through the server's ingress.

        Returns ``True`` when the submission triggered a flush (the
        micro-batching semantics of
        :meth:`repro.service.session.Session.publish`).
        """
        reply = await self._request(
            {"type": "publish", "event": event_to_wire(event)}
        )
        flushed = reply["flushed"]
        assert isinstance(flushed, bool)
        return flushed

    async def ping(self) -> None:
        """One liveness round trip."""
        await self._request({"type": "ping"})

    async def _request(self, envelope: Envelope) -> Envelope:
        """Send one correlated request and await its response."""
        if not self._connected:
            raise TransportError("client is not connected", code="closed")
        loop = asyncio.get_running_loop()
        request_id = self._next_id
        self._next_id += 1
        envelope["id"] = request_id
        future: "asyncio.Future[Envelope]" = loop.create_future()
        self._pending[request_id] = future
        self._send(envelope)
        try:
            return await future
        finally:
            self._pending.pop(request_id, None)

    def _send(self, envelope: Envelope) -> None:
        writer = self._writer
        if writer is None:
            raise TransportError("client is not connected", code="closed")
        writer.write(encode_frame(envelope))

    def _try_send(self, envelope: Envelope) -> None:
        """Best-effort send for acks/pongs on a possibly-dying socket."""
        try:
            self._send(envelope)
        except (TransportError, ConnectionError, OSError, RuntimeError):
            pass

    # -- waiting helpers -----------------------------------------------------

    async def wait_for_notifications(
        self, count: int, timeout: float = 10.0
    ) -> List[Notification]:
        """Wait until at least ``count`` notifications have arrived.

        Returns a snapshot of the log.  Raises
        :class:`~repro.errors.TransportError` on timeout or if the
        connection drops first.
        """
        deadline = asyncio.get_running_loop().time() + timeout
        while len(self.notifications) < count:
            if not self._connected:
                raise TransportError(
                    "connection lost after %d/%d notifications"
                    % (len(self.notifications), count),
                    code="closed",
                )
            notified = self._notified
            assert notified is not None
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TransportError(
                    "timed out with %d/%d notifications"
                    % (len(self.notifications), count),
                    code="timeout",
                )
            try:
                await asyncio.wait_for(notified.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                continue
            notified.clear()
        return list(self.notifications)

    # -- the reader ----------------------------------------------------------

    async def _read_loop(self) -> None:
        reader = self._reader
        assert reader is not None
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    messages = decoder.feed(data)
                except ProtocolError as error:
                    self._fail_pending(error)
                    break
                before = self.last_seen
                for message in messages:
                    if isinstance(message, ProtocolError):
                        self.protocol_errors.append(message)
                        continue
                    self._handle(message)
                if self.last_seen > before:
                    # One ack per read batch: trims the server-side
                    # retransmit buffer without an ack-per-event storm.
                    self._try_send(
                        {"type": "ack", "delivery_seq": self.last_seen}
                    )
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            self._connected = False
            self._fail_pending(
                TransportError("connection lost", code="connection-lost")
            )
            notified = self._notified
            if notified is not None:
                notified.set()

    def _handle(self, message: Envelope) -> None:
        kind = message["type"]
        if kind == "event":
            sequence = message["delivery_seq"]
            assert isinstance(sequence, int)
            if sequence <= self.last_seen:
                self.duplicates += 1
                return
            assert self.broker is not None
            notification = notification_from_envelope(
                message, self.client, self.broker
            )
            self.notifications.append(notification)
            self.last_seen = sequence
            if self._on_event is not None:
                self._on_event(notification)
            notified = self._notified
            if notified is not None:
                notified.set()
            return
        if kind == "welcome":
            welcome = self._welcome
            if welcome is not None and not welcome.done():
                welcome.set_result(message)
            return
        if kind == "error":
            request_id = message.get("id")
            code = message["code"]
            text = message["message"]
            assert isinstance(code, str) and isinstance(text, str)
            error = TransportError(text, code=code)
            if request_id is not None:
                future = self._pending.get(request_id)
                if future is not None and not future.done():
                    future.set_exception(error)
                return
            welcome = self._welcome
            if welcome is not None and not welcome.done():
                welcome.set_exception(error)
            return
        if kind == "ping":
            self._try_send({"type": "pong", "id": message["id"]})
            return
        if kind == "goodbye":
            reason = message.get("reason")
            assert reason is None or isinstance(reason, str)
            self.goodbye_reason = reason
            goodbye = self._goodbye_seen
            if goodbye is not None:
                goodbye.set()
            return
        request_id = message.get("id")
        if request_id is not None:
            future = self._pending.get(request_id)
            if future is not None and not future.done():
                future.set_result(message)

    def _fail_pending(self, error: TransportError) -> None:
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        welcome = self._welcome
        if welcome is not None and not welcome.done():
            welcome.set_exception(error)

    def __repr__(self) -> str:
        return "PubSubClient(%r@%s:%d, %s, seen=%d)" % (
            self.client,
            self.host,
            self.port,
            "connected" if self._connected else "disconnected",
            len(self.notifications),
        )
