"""The asyncio client: a remote session that mirrors the in-process API.

:class:`PubSubClient` dials a :class:`~repro.transport.server.
PubSubServer`, performs the ``hello``/``welcome`` handshake, and then
exposes the session surface remotely: ``subscribe`` returns a
:class:`RemoteSubscriptionHandle` (the async mirror of
:class:`~repro.service.session.SubscriptionHandle`), ``publish`` rides
the server's micro-batching ingress, and matched deliveries arrive as
:class:`~repro.service.sinks.Notification` records in
:attr:`PubSubClient.notifications` — field-for-field what an in-process
sink would have seen, which is exactly how the E2E suite compares a
remote client against its oracle.

Requests carry correlation ids; a background reader task resolves them
and folds ``event`` frames into the notification log, acknowledging the
highest ``delivery_seq`` seen after each read so the server can trim its
retransmit buffer.  Deliveries already seen (a replay overlap after
reconnect) are counted in :attr:`duplicates` and dropped — the log is
exactly-once.

Reconnect is first-class: :meth:`abort` kills the socket without any
goodbye (simulating a crash), :meth:`reconnect` dials again presenting
the session token and the last seen ``delivery_seq``, and the server
replays the unacknowledged tail.  Use as an async context manager::

    async with PubSubClient("127.0.0.1", port, "alice") as client:
        handle = await client.subscribe(P("x") == 1)
        await client.publish(Event({"x": 1}))
        await client.wait_for_notifications(1)
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Dict, List, Optional, Type

from repro.errors import ProtocolError, TransportError
from repro.events import Event
from repro.service.sinks import Notification
from repro.subscriptions.nodes import Node
from repro.subscriptions.serialize import node_to_dict
from repro.transport.protocol import (
    GOODBYE_CLIENT_CLOSE,
    PROTOCOL_VERSION,
    Envelope,
    FrameDecoder,
    encode_frame,
    event_to_wire,
    notification_from_envelope,
    resumable_disconnect,
)
from repro.transport.streams import (
    StreamWrapper,
    TransportReader,
    TransportWriter,
)

#: Attempt-0 envelope of the default reconnect backoff (seconds).
RECONNECT_BASE = 0.05
#: Envelope ceiling of the default reconnect backoff (seconds).
RECONNECT_CAP = 5.0

#: ``hello``-refusal codes after which retrying the token is pointless.
_TERMINAL_DIAL_CODES = frozenset({"unknown-token", "auth", "bad-version"})


def _default_backoff(attempt: int) -> float:
    """Capped exponential backoff with full jitter (not seeded — for a
    deterministic schedule pass ``backoff=repro.faults.BackoffSchedule``)."""
    envelope = min(RECONNECT_CAP, RECONNECT_BASE * (2.0 ** min(attempt, 32)))
    return random.uniform(0.0, envelope)


class RemoteSubscriptionHandle:
    """A live reference to one subscription registered over the wire.

    Mirrors :class:`~repro.service.session.SubscriptionHandle`:
    ``handle.id`` is the server-assigned global subscription id, and
    the handle is the capability to :meth:`replace` or
    :meth:`unsubscribe` — just asynchronously, because each is a wire
    round trip.  Handles survive reconnects: the server-side session
    (and its subscriptions) outlives the socket.
    """

    __slots__ = ("_client", "_id", "_tree", "_active")

    def __init__(self, client: "PubSubClient", subscription_id: int, tree: Node) -> None:
        self._client = client
        self._id = subscription_id
        self._tree = tree
        self._active = True

    @property
    def id(self) -> int:
        """The server-assigned global subscription id."""
        return self._id

    @property
    def tree(self) -> Node:
        """The filter tree most recently sent for this subscription."""
        return self._tree

    @property
    def active(self) -> bool:
        """``False`` once unsubscribed."""
        return self._active

    async def replace(self, tree: Node) -> None:
        """Swap the subscription's filter tree, keeping its id."""
        self._require_active()
        await self._client._request(
            {
                "type": "replace",
                "subscription": self._id,
                "tree": node_to_dict(tree),
            }
        )
        self._tree = tree

    async def unsubscribe(self) -> None:
        """Withdraw the subscription from the whole network."""
        self._require_active()
        await self._client._request(
            {"type": "unsubscribe", "subscription": self._id}
        )
        self._active = False

    def _require_active(self) -> None:
        if not self._active:
            raise TransportError(
                "subscription handle %d is no longer active" % self._id,
                code="inactive-handle",
            )

    def __repr__(self) -> str:
        return "RemoteSubscriptionHandle(id=%d, client=%r, active=%s)" % (
            self._id,
            self._client.client,
            self._active,
        )


class PubSubClient:
    """One remote pub/sub session over a TCP connection.

    ``client`` names the session (the server enforces one open session
    per ``(broker, client)`` pair); ``broker`` picks the attachment
    broker (server default when omitted); ``auth`` is the shared secret
    checked against the server's ``auth_tokens``; ``queue_capacity`` /
    ``policy`` configure the server-side send buffer for this session.
    ``on_event`` (if given) is called synchronously with each fresh
    :class:`~repro.service.sinks.Notification` as it is decoded.

    The client tracks :attr:`last_seen` (highest ``delivery_seq``
    folded into :attr:`notifications`) and :attr:`duplicates` (replayed
    deliveries it dropped), and keeps its session :attr:`token` across
    :meth:`abort`/:meth:`reconnect` cycles.

    Self-healing knobs (all off by default):

    * ``heartbeat_interval`` — ping the server after that many quiet
      seconds; ``liveness_timeout`` — declare the connection dead (abort
      the socket, counted in :attr:`liveness_expiries`) after that many
      seconds with *nothing* inbound.
    * ``auto_reconnect`` — when an established connection drops for a
      resumable reason (network fault, or a goodbye in
      :data:`~repro.transport.protocol.RESUMABLE_GOODBYE_REASONS`), a
      supervisor task redials with ``backoff`` delays (capped
      exponential, full jitter by default; any ``Callable[[int], float]``
      works, e.g. :class:`repro.faults.BackoffSchedule`), resuming by
      token for up to ``max_reconnect_attempts`` tries per outage.
      Successful recoveries are counted in :attr:`reconnects` and timed
      in :attr:`recovery_latencies`; terminal goodbyes (auth, unknown
      token, shutdown) stop the supervisor for good.
    * ``stream_wrapper`` — interpose the connection's byte streams
      (chaos testing; see :func:`repro.faults.faulty_stream`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        client: str,
        *,
        broker: Optional[str] = None,
        auth: Optional[str] = None,
        queue_capacity: Optional[int] = None,
        policy: Optional[str] = None,
        on_event: Optional[Callable[[Notification], None]] = None,
        heartbeat_interval: Optional[float] = None,
        liveness_timeout: Optional[float] = None,
        auto_reconnect: bool = False,
        backoff: Optional[Callable[[int], float]] = None,
        max_reconnect_attempts: int = 8,
        stream_wrapper: Optional[StreamWrapper] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.client = client
        self.broker: Optional[str] = broker
        self.auth = auth
        self.queue_capacity = queue_capacity
        self.policy = policy
        self.token: Optional[str] = None
        #: Every fresh delivery, in arrival order (exactly-once).
        self.notifications: List[Notification] = []
        #: Highest ``delivery_seq`` in :attr:`notifications`.
        self.last_seen = -1
        #: Replayed deliveries dropped by the dedup filter.
        self.duplicates = 0
        #: Recoverable protocol errors the *server* sent us (rare).
        self.protocol_errors: List[ProtocolError] = []
        #: ``goodbye`` reason received from the server, if any.
        self.goodbye_reason: Optional[str] = None
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise TransportError("heartbeat_interval must be > 0")
        if liveness_timeout is not None and liveness_timeout <= 0:
            raise TransportError("liveness_timeout must be > 0")
        if max_reconnect_attempts < 1:
            raise TransportError("max_reconnect_attempts must be >= 1")
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = liveness_timeout
        self.auto_reconnect = auto_reconnect
        self.backoff: Callable[[int], float] = (
            backoff if backoff is not None else _default_backoff
        )
        self.max_reconnect_attempts = max_reconnect_attempts
        self.stream_wrapper = stream_wrapper
        #: Successful automatic session resumes.
        self.reconnects = 0
        #: Seconds from each connection drop to its successful resume.
        self.recovery_latencies: List[float] = []
        #: Times the liveness timeout declared the connection dead.
        self.liveness_expiries = 0
        self._on_event = on_event
        self._reader: Optional[TransportReader] = None
        self._writer: Optional[TransportWriter] = None
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self._heartbeat_task: Optional["asyncio.Task[None]"] = None
        self._reconnect_task: Optional["asyncio.Task[None]"] = None
        self._pending: Dict[int, "asyncio.Future[Envelope]"] = {}
        self._welcome: Optional["asyncio.Future[Envelope]"] = None
        self._notified: Optional[asyncio.Event] = None
        self._goodbye_seen: Optional[asyncio.Event] = None
        self._next_id = 0
        self._connected = False
        self._closing = False
        self._last_inbound = 0.0

    # -- connection lifecycle ------------------------------------------------

    async def connect(self) -> Envelope:
        """Dial and open a fresh session; returns the ``welcome``."""
        if self.token is not None:
            raise TransportError(
                "client already has a session token; use reconnect()"
            )
        return await self._dial(resume=False)

    async def reconnect(self) -> int:
        """Dial again and resume the session under the stored token.

        Returns the number of deliveries the server replayed (the
        unacknowledged tail; already-seen ones are deduplicated into
        :attr:`duplicates`).
        """
        if self.token is None:
            raise TransportError("no session token to resume; call connect()")
        welcome = await self._dial(resume=True)
        replayed = welcome["replayed"]
        assert isinstance(replayed, int)
        return replayed

    async def _dial(self, resume: bool) -> Envelope:
        if self._connected:
            raise TransportError("client is already connected")
        loop = asyncio.get_running_loop()
        self._closing = False
        # Clear out the corpse of a previous connection, if any: a
        # completed (or stuck-in-a-stall) reader task and a half-open
        # writer must not outlive the socket they belonged to.
        stale = self._reader_task
        self._reader_task = None
        if stale is not None and stale is not asyncio.current_task():
            stale.cancel()
            try:
                await stale
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            try:
                self._writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
            self._writer = None
        self._notified = asyncio.Event()
        self._goodbye_seen = asyncio.Event()
        self.goodbye_reason = None
        reader, writer = await asyncio.open_connection(self.host, self.port)
        if self.stream_wrapper is not None:
            self._reader, self._writer = self.stream_wrapper(reader, writer)
        else:
            self._reader, self._writer = reader, writer
        self._welcome = loop.create_future()
        self._connected = True
        self._last_inbound = loop.time()
        self._reader_task = loop.create_task(self._read_loop())
        hello: Envelope = {
            "type": "hello",
            "client": self.client,
            "version": PROTOCOL_VERSION,
        }
        if self.auth is not None:
            hello["auth"] = self.auth
        if resume:
            assert self.token is not None
            hello["token"] = self.token
            hello["last_seen"] = self.last_seen
        else:
            if self.broker is not None:
                hello["broker"] = self.broker
            if self.queue_capacity is not None:
                hello["queue_capacity"] = self.queue_capacity
            if self.policy is not None:
                hello["policy"] = self.policy
        self._send(hello)
        try:
            welcome = await self._welcome
        except TransportError:
            await self._teardown()
            raise
        token = welcome["token"]
        broker = welcome["broker"]
        assert isinstance(token, str) and isinstance(broker, str)
        self.token = token
        self.broker = broker
        if (
            self.heartbeat_interval is not None
            or self.liveness_timeout is not None
        ):
            self._heartbeat_task = loop.create_task(self._heartbeat())
        return welcome

    async def _heartbeat(self) -> None:
        """Ping a quiet server; abort a dead connection.

        Anything inbound counts as liveness.  A missed liveness window
        aborts the socket, which fails the read loop — and with
        ``auto_reconnect`` that is precisely what hands the outage to
        the backoff supervisor.
        """
        interval = self.heartbeat_interval
        liveness = self.liveness_timeout
        candidates = [t for t in (interval, liveness) if t is not None]
        tick = max(min(candidates) / 4.0, 0.005) if candidates else 1.0
        loop = asyncio.get_running_loop()
        while self._connected:
            await asyncio.sleep(tick)
            if not self._connected:
                return
            idle = loop.time() - self._last_inbound
            if liveness is not None and idle >= liveness:
                self.liveness_expiries += 1
                writer = self._writer
                if writer is not None:
                    try:
                        writer.transport.abort()
                    except (ConnectionError, OSError, RuntimeError):
                        pass
                return
            if interval is not None and idle >= interval:
                # Fire-and-forget: the pong is not correlated with a
                # pending future; its arrival alone refreshes
                # ``_last_inbound``.
                request_id = self._next_id
                self._next_id += 1
                self._try_send({"type": "ping", "id": request_id})

    @property
    def connected(self) -> bool:
        """``True`` while the socket is up and the reader is running."""
        return self._connected

    async def close(self) -> None:
        """Say goodbye (if still connected) and tear the socket down.

        Graceful: the server retires the session, so the token cannot
        be resumed afterwards.  Use :meth:`abort` to keep it resumable.
        """
        self._closing = True
        await self._cancel_reconnect()
        if self._connected and self._writer is not None:
            try:
                self._send({"type": "goodbye", "reason": GOODBYE_CLIENT_CLOSE})
                await self._writer.drain()
            except (ConnectionError, OSError, RuntimeError):
                pass
            goodbye = self._goodbye_seen
            if goodbye is not None:
                try:
                    await asyncio.wait_for(goodbye.wait(), timeout=1.0)
                except asyncio.TimeoutError:
                    pass
        await self._teardown()

    async def abort(self) -> None:
        """Kill the socket with no goodbye — simulates a client crash.

        The server detaches the session but keeps it resumable; the
        token and :attr:`last_seen` survive for :meth:`reconnect` —
        any auto-reconnect supervisor is stopped, so resuming is the
        caller's explicit move.
        """
        self._closing = True
        await self._cancel_reconnect()
        if self._writer is not None:
            try:
                self._writer.transport.abort()
            except (ConnectionError, OSError, RuntimeError):
                pass
        await self._teardown()

    async def _cancel_reconnect(self) -> None:
        task = self._reconnect_task
        self._reconnect_task = None
        if task is not None and task is not asyncio.current_task():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    async def _teardown(self) -> None:
        self._connected = False
        if self._heartbeat_task is not None:
            if self._heartbeat_task is not asyncio.current_task():
                self._heartbeat_task.cancel()
            self._heartbeat_task = None
        task = self._reader_task
        self._reader_task = None
        if task is not None and task is not asyncio.current_task():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            try:
                self._writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
            self._writer = None
        self._reader = None
        self._fail_pending(TransportError("connection closed", code="closed"))

    async def __aenter__(self) -> "PubSubClient":
        if not self._connected and self.token is None:
            await self.connect()
        return self

    async def __aexit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        traceback: Optional[object],
    ) -> None:
        await self.close()

    # -- requests ------------------------------------------------------------

    async def subscribe(self, tree: Node) -> RemoteSubscriptionHandle:
        """Register a filter tree; returns the remote handle."""
        reply = await self._request(
            {"type": "subscribe", "tree": node_to_dict(tree)}
        )
        subscription_id = reply["subscription"]
        assert isinstance(subscription_id, int)
        return RemoteSubscriptionHandle(self, subscription_id, tree)

    async def publish(self, event: Event) -> bool:
        """Submit one event through the server's ingress.

        Returns ``True`` when the submission triggered a flush (the
        micro-batching semantics of
        :meth:`repro.service.session.Session.publish`).
        """
        reply = await self._request(
            {"type": "publish", "event": event_to_wire(event)}
        )
        flushed = reply["flushed"]
        assert isinstance(flushed, bool)
        return flushed

    async def ping(self) -> None:
        """One liveness round trip."""
        await self._request({"type": "ping"})

    async def _request(self, envelope: Envelope) -> Envelope:
        """Send one correlated request and await its response."""
        if not self._connected:
            raise TransportError("client is not connected", code="closed")
        loop = asyncio.get_running_loop()
        request_id = self._next_id
        self._next_id += 1
        envelope["id"] = request_id
        future: "asyncio.Future[Envelope]" = loop.create_future()
        self._pending[request_id] = future
        self._send(envelope)
        try:
            return await future
        finally:
            self._pending.pop(request_id, None)

    def _send(self, envelope: Envelope) -> None:
        writer = self._writer
        if writer is None:
            raise TransportError("client is not connected", code="closed")
        writer.write(encode_frame(envelope))

    def _try_send(self, envelope: Envelope) -> None:
        """Best-effort send for acks/pongs on a possibly-dying socket."""
        try:
            self._send(envelope)
        except (TransportError, ConnectionError, OSError, RuntimeError):
            pass

    # -- waiting helpers -----------------------------------------------------

    async def wait_for_notifications(
        self, count: int, timeout: float = 10.0
    ) -> List[Notification]:
        """Wait until at least ``count`` notifications have arrived.

        Returns a snapshot of the log.  Raises
        :class:`~repro.errors.TransportError` on timeout or if the
        connection drops first.
        """
        deadline = asyncio.get_running_loop().time() + timeout
        while len(self.notifications) < count:
            if not self._connected and self._reconnect_task is None:
                raise TransportError(
                    "connection lost after %d/%d notifications"
                    % (len(self.notifications), count),
                    code="closed",
                )
            notified = self._notified
            assert notified is not None
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TransportError(
                    "timed out with %d/%d notifications"
                    % (len(self.notifications), count),
                    code="timeout",
                )
            try:
                await asyncio.wait_for(notified.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                continue
            notified.clear()
        return list(self.notifications)

    # -- the reader ----------------------------------------------------------

    async def _read_loop(self) -> None:
        reader = self._reader
        assert reader is not None
        decoder = FrameDecoder()
        cancelled = False
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                self._last_inbound = asyncio.get_running_loop().time()
                try:
                    messages = decoder.feed(data)
                except ProtocolError as error:
                    self._fail_pending(error)
                    break
                before = self.last_seen
                for message in messages:
                    if isinstance(message, ProtocolError):
                        self.protocol_errors.append(message)
                        continue
                    self._handle(message)
                if self.last_seen > before:
                    # One ack per read batch: trims the server-side
                    # retransmit buffer without an ack-per-event storm.
                    self._try_send(
                        {"type": "ack", "delivery_seq": self.last_seen}
                    )
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            cancelled = True
            raise
        finally:
            if self._reader_task is asyncio.current_task():
                # Only the *current* connection's reader may mutate the
                # client: a superseded reader (a reconnect already
                # replaced it) must not clobber the new connection.
                self._reader_task = None
                self._connected = False
                if self._heartbeat_task is not None:
                    self._heartbeat_task.cancel()
                    self._heartbeat_task = None
                if (
                    self.auto_reconnect
                    and not cancelled
                    and not self._closing
                    and self.token is not None
                    and self._reconnect_task is None
                    and resumable_disconnect(self.goodbye_reason)
                ):
                    # Spawn the supervisor before waking any waiters so
                    # wait_for_notifications sees recovery in flight.
                    loop = asyncio.get_running_loop()
                    self._reconnect_task = loop.create_task(
                        self._reconnect_loop(loop.time())
                    )
                self._fail_pending(
                    TransportError("connection lost", code="connection-lost")
                )
                notified = self._notified
                if notified is not None:
                    notified.set()

    async def _reconnect_loop(self, dropped_at: float) -> None:
        """Supervisor: redial with backoff until resumed or hopeless."""
        loop = asyncio.get_running_loop()
        try:
            for attempt in range(self.max_reconnect_attempts):
                await asyncio.sleep(self.backoff(attempt))
                if self._closing:
                    return
                try:
                    await self._dial(resume=True)
                except TransportError as error:
                    if error.code in _TERMINAL_DIAL_CODES:
                        # The session is gone for good; rejoining means
                        # a fresh hello + resubscribe, which only the
                        # application can decide to do.
                        return
                    continue
                except (ConnectionError, OSError):
                    continue
                if not self._connected:
                    # The welcome arrived but the connection died again
                    # before we could adopt it.  Its read loop could not
                    # spawn a supervisor (this one still holds the
                    # slot), so the outage is still ours to heal.
                    if not resumable_disconnect(self.goodbye_reason):
                        return
                    continue
                # Success.  Vacate the supervisor slot *before* anything
                # can await: if this very connection drops again, its
                # read loop must be able to spawn a fresh supervisor.
                self._reconnect_task = None
                self.reconnects += 1
                self.recovery_latencies.append(loop.time() - dropped_at)
                return
        finally:
            if self._reconnect_task is asyncio.current_task():
                self._reconnect_task = None
            notified = self._notified
            if notified is not None:
                notified.set()

    def _handle(self, message: Envelope) -> None:
        kind = message["type"]
        if kind == "event":
            sequence = message["delivery_seq"]
            assert isinstance(sequence, int)
            if sequence <= self.last_seen:
                self.duplicates += 1
                return
            assert self.broker is not None
            notification = notification_from_envelope(
                message, self.client, self.broker
            )
            self.notifications.append(notification)
            self.last_seen = sequence
            if self._on_event is not None:
                self._on_event(notification)
            notified = self._notified
            if notified is not None:
                notified.set()
            return
        if kind == "welcome":
            welcome = self._welcome
            if welcome is not None and not welcome.done():
                welcome.set_result(message)
            return
        if kind == "error":
            request_id = message.get("id")
            code = message["code"]
            text = message["message"]
            assert isinstance(code, str) and isinstance(text, str)
            error = TransportError(text, code=code)
            if request_id is not None:
                future = self._pending.get(request_id)
                if future is not None and not future.done():
                    future.set_exception(error)
                return
            welcome = self._welcome
            if welcome is not None and not welcome.done():
                welcome.set_exception(error)
            return
        if kind == "ping":
            self._try_send({"type": "pong", "id": message["id"]})
            return
        if kind == "goodbye":
            reason = message.get("reason")
            assert reason is None or isinstance(reason, str)
            self.goodbye_reason = reason
            goodbye = self._goodbye_seen
            if goodbye is not None:
                goodbye.set()
            return
        request_id = message.get("id")
        if request_id is not None:
            future = self._pending.get(request_id)
            if future is not None and not future.done():
                future.set_result(message)

    def _fail_pending(self, error: TransportError) -> None:
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        welcome = self._welcome
        if welcome is not None and not welcome.done():
            welcome.set_exception(error)

    def __repr__(self) -> str:
        return "PubSubClient(%r@%s:%d, %s, seen=%d)" % (
            self.client,
            self.host,
            self.port,
            "connected" if self._connected else "disconnected",
            len(self.notifications),
        )
