"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SubscriptionError(ReproError):
    """Raised for malformed subscription trees or predicates."""


class NormalizationError(SubscriptionError):
    """Raised when a subscription tree cannot be normalized.

    The usual cause is a negation of a predicate whose operator has no
    complement (for example substring containment).
    """


class PruningError(ReproError):
    """Raised when a pruning operation is invalid or cannot be applied."""


class NoValidPruningError(PruningError):
    """Raised when a subscription offers no valid (non-root) pruning."""


class MatchingError(ReproError):
    """Raised by filtering engines for inconsistent registrations."""


class SelectivityError(ReproError):
    """Raised when selectivity statistics are missing or inconsistent."""


class RoutingError(ReproError):
    """Raised by the broker-network substrate."""


class TopologyError(RoutingError):
    """Raised for invalid broker topologies (cycles, unknown brokers)."""


class WorkloadError(ReproError):
    """Raised by workload generators for invalid configurations."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for invalid configurations."""


class ServiceError(ReproError):
    """Raised by the service layer (sessions, handles, ingress)."""


class TransportError(ReproError):
    """Raised by the network transport (server, client, connections).

    Carries an optional machine-readable ``code`` mirroring the wire
    protocol's ``error`` envelope codes (``"auth"``, ``"bad-frame"``,
    ``"unknown-token"``, ...), so callers can branch without string
    matching on the human-readable message.
    """

    def __init__(self, message: str, code: str = "transport") -> None:
        super().__init__(message)
        self.code = code


class ProtocolError(TransportError):
    """A malformed wire frame or envelope.

    ``recoverable`` distinguishes a bad *payload* inside an intact
    frame (the stream stays synchronized; the peer gets a structured
    ``error`` reply and the connection lives on) from a framing-layer
    violation such as an oversized length prefix (the stream cannot be
    resynchronized and the connection must close).
    """

    def __init__(
        self, message: str, code: str = "bad-frame", recoverable: bool = True
    ) -> None:
        super().__init__(message, code=code)
        self.recoverable = recoverable


class DeliveryError(ServiceError):
    """One or more delivery sinks raised while a batch was dispatched.

    Dispatch contains sink failures: every *other* sink still received
    its notifications for the batch before this error was raised, and
    the ingress that triggered the dispatch remains usable.
    ``failures`` holds the ``(notification, exception)`` pairs that were
    contained, in delivery order.
    """

    def __init__(self, failures: Sequence[Tuple[Any, BaseException]]) -> None:
        self.failures: List[Tuple[Any, BaseException]] = list(failures)
        first = self.failures[0][1] if self.failures else None
        super().__init__(
            "%d delivery sink failure(s) during dispatch (first: %r)"
            % (len(self.failures), first)
        )
