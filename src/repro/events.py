"""Event messages for the attribute-value pair publish/subscribe model.

An event message is a flat set of attribute-value pairs (paper Sect. 2.1).
Values are strings, booleans, integers, or floats.  Events are immutable so
they can be shared freely between brokers, matchers, and statistics
collectors without defensive copies.

Batches of events additionally expose a **columnar** view
(:class:`EventColumns`): per attribute, the rows (event positions) where
the attribute is present and its values as kind-separated arrays.  The
columnar view is what lets the matching engine run each index probe once
per *batch* instead of once per event — see
:meth:`repro.matching.predicate_index.PredicateIndexSet.collect_batch`.
It is built once per batch (cached on :class:`EventBatch`) and sub-batches
re-derive their columns with one vectorized row selection instead of
re-scanning the event objects.

>>> batch = EventBatch([Event({"price": 5}), Event({"tag": "x"}),
...                     Event({"price": 7, "tag": "y"})])
>>> column = batch.columns().column("price")
>>> column.rows.tolist(), column.numeric_values.tolist()
([0, 2], [5.0, 7.0])
>>> batch.subset([1, 2]).columns().column("tag").rows.tolist()
[0, 1]
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

Value = Union[str, int, float, bool]

_NO_STRINGS = np.empty(0, dtype=object)

#: Per-message envelope overhead, in bytes, charged by the wire-size model
#: (message framing, type tag, attribute count).
_ENVELOPE_BYTES = 16
#: Per-attribute overhead, in bytes (length prefixes, type tags).
_ATTRIBUTE_OVERHEAD_BYTES = 4
_NUMERIC_BYTES = 8


class Event(Mapping[str, Value]):
    """An immutable event message of attribute-value pairs.

    >>> event = Event({"category": "fiction", "price": 12.5})
    >>> event["price"]
    12.5
    >>> "seller" in event
    False
    """

    __slots__ = ("_attributes", "_size_bytes")

    def __init__(self, attributes: Mapping[str, Value]) -> None:
        cleaned: Dict[str, Value] = {}
        for name, value in attributes.items():
            if not isinstance(name, str) or not name:
                raise TypeError("attribute names must be non-empty strings")
            if not isinstance(value, (str, int, float, bool)):
                raise TypeError(
                    "attribute %r has unsupported value type %s"
                    % (name, type(value).__name__)
                )
            cleaned[name] = value
        self._attributes = cleaned
        self._size_bytes: Optional[int] = None

    def __getitem__(self, name: str) -> Value:
        return self._attributes[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._attributes

    def __repr__(self) -> str:
        pairs = ", ".join(
            "%s=%r" % (name, value) for name, value in sorted(self._attributes.items())
        )
        return "Event(%s)" % pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._attributes.items())))

    def get(self, name: str, default: Optional[Value] = None) -> Optional[Value]:
        """Return the value of ``name`` or ``default`` when absent."""
        return self._attributes.get(name, default)

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of this message in bytes.

        Used by the broker network's bandwidth cost model.  Strings are
        charged their UTF-8 length; numbers and booleans a fixed 8 bytes.
        """
        if self._size_bytes is None:
            total = _ENVELOPE_BYTES
            for name, value in self._attributes.items():
                total += _ATTRIBUTE_OVERHEAD_BYTES + len(name.encode("utf-8"))
                if isinstance(value, str):
                    total += len(value.encode("utf-8"))
                else:
                    total += _NUMERIC_BYTES
            self._size_bytes = total
        return self._size_bytes

    def to_dict(self) -> Dict[str, Value]:
        """Return a plain-dict copy of the attribute-value pairs."""
        return dict(self._attributes)


class AttributeColumn:
    """Columnar view of one attribute across an event batch.

    ``rows`` holds the positions (ascending) of every event that carries
    the attribute — the presence mask in sparse form.  Values are split by
    kind (numeric, string, boolean) into row/value array pairs, because
    predicates never compare across kinds: a numeric range probe can then
    run as one vectorized ``searchsorted`` over ``numeric_values``.
    """

    __slots__ = (
        "name",
        "rows",
        "numeric_rows",
        "numeric_values",
        "string_rows",
        "string_values",
        "bool_rows",
        "bool_values",
        "_groups",
    )

    def __init__(
        self,
        name: str,
        rows: np.ndarray,
        numeric_rows: np.ndarray,
        numeric_values: np.ndarray,
        string_rows: np.ndarray,
        string_values: np.ndarray,
        bool_rows: np.ndarray,
        bool_values: np.ndarray,
    ) -> None:
        self.name = name
        self.rows = rows                    #: int64, ascending presence rows
        self.numeric_rows = numeric_rows    #: int64 rows of numeric values
        self.numeric_values = numeric_values  #: float64, aligned with rows
        self.string_rows = string_rows      #: int64 rows of string values
        self.string_values = string_values  #: object array, aligned
        self.bool_rows = bool_rows          #: int64 rows of boolean values
        self.bool_values = bool_values      #: bool array, aligned
        self._groups: Optional[
            Tuple[
                List[Tuple[float, np.ndarray]],
                List[Tuple[str, np.ndarray]],
                List[Tuple[bool, np.ndarray]],
            ]
        ] = None

    def __len__(self) -> int:
        """Number of events carrying this attribute."""
        return len(self.rows)

    def _grouped(self, rows: np.ndarray, values: np.ndarray) -> List[Tuple]:
        grouped: Dict[Value, List[int]] = {}
        for row, value in zip(rows.tolist(), values.tolist()):
            bucket = grouped.get(value)
            if bucket is None:
                grouped[value] = [row]
            else:
                bucket.append(row)
        return [
            (value, np.array(bucket, dtype=np.int64))
            for value, bucket in grouped.items()
        ]

    def groups(
        self,
    ) -> Tuple[
        List[Tuple[float, np.ndarray]],
        List[Tuple[str, np.ndarray]],
        List[Tuple[bool, np.ndarray]],
    ]:
        """Rows grouped by distinct value, per kind (cached).

        Equality/membership probes are dictionary lookups, so grouping by
        distinct value amortizes them across duplicate values in a batch.
        """
        if self._groups is None:
            self._groups = (
                self._grouped(self.numeric_rows, self.numeric_values),
                self._grouped(self.string_rows, self.string_values),
                self._grouped(self.bool_rows, self.bool_values),
            )
        return self._groups

    def _select(self, inverse: np.ndarray) -> Optional["AttributeColumn"]:
        """Column restricted to the rows ``inverse`` renumbers (>= 0)."""
        mapped = inverse[self.rows]
        rows = mapped[mapped >= 0]
        if not len(rows):
            return None

        def pick(kind_rows: np.ndarray, values: np.ndarray):
            mapped = inverse[kind_rows]
            mask = mapped >= 0
            return mapped[mask], values[mask]

        numeric_rows, numeric_values = pick(self.numeric_rows, self.numeric_values)
        string_rows, string_values = pick(self.string_rows, self.string_values)
        bool_rows, bool_values = pick(self.bool_rows, self.bool_values)
        return AttributeColumn(
            self.name, rows, numeric_rows, numeric_values,
            string_rows, string_values, bool_rows, bool_values,
        )

    def _slice(self, start: int, stop: int) -> Optional["AttributeColumn"]:
        """Column restricted to rows in ``[start, stop)``, renumbered."""

        def cut(kind_rows: np.ndarray, values: Optional[np.ndarray]):
            low = int(np.searchsorted(kind_rows, start))
            high = int(np.searchsorted(kind_rows, stop))
            if values is None:
                return kind_rows[low:high] - start
            return kind_rows[low:high] - start, values[low:high]

        rows = cut(self.rows, None)
        if not len(rows):
            return None
        numeric_rows, numeric_values = cut(self.numeric_rows, self.numeric_values)
        string_rows, string_values = cut(self.string_rows, self.string_values)
        bool_rows, bool_values = cut(self.bool_rows, self.bool_values)
        return AttributeColumn(
            self.name, rows, numeric_rows, numeric_values,
            string_rows, string_values, bool_rows, bool_values,
        )


class EventColumns:
    """Columnar representation of an event batch: one
    :class:`AttributeColumn` per attribute appearing in the batch.

    Built once per batch with :meth:`from_events` (one pass over the
    event objects); sub-batches are derived with :meth:`select` or
    :meth:`slice_rows`, which only touch the numpy arrays.
    """

    __slots__ = ("row_count", "_columns")

    def __init__(self, row_count: int, columns: Dict[str, AttributeColumn]) -> None:
        self.row_count = row_count
        self._columns = columns

    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "EventColumns":
        """Columnarize ``events``: one row per event, in order."""
        raw: Dict[str, Tuple[list, list, list, list, list, list, list]] = {}
        for row, event in enumerate(events):
            for name, value in event.items():
                lists = raw.get(name)
                if lists is None:
                    lists = ([], [], [], [], [], [], [])
                    raw[name] = lists
                lists[0].append(row)
                if isinstance(value, bool):
                    lists[5].append(row)
                    lists[6].append(value)
                elif isinstance(value, str):
                    lists[3].append(row)
                    lists[4].append(value)
                else:
                    lists[1].append(row)
                    lists[2].append(float(value))
        columns: Dict[str, AttributeColumn] = {}
        for name, (rows, nrows, nvals, srows, svals, brows, bvals) in raw.items():
            columns[name] = AttributeColumn(
                name,
                np.array(rows, dtype=np.int64),
                np.array(nrows, dtype=np.int64),
                np.array(nvals, dtype=np.float64),
                np.array(srows, dtype=np.int64),
                np.array(svals, dtype=object) if svals else _NO_STRINGS,
                np.array(brows, dtype=np.int64),
                np.array(bvals, dtype=bool),
            )
        return cls(len(events), columns)

    def column(self, name: str) -> Optional[AttributeColumn]:
        """The column of attribute ``name``, or ``None`` if absent."""
        return self._columns.get(name)

    def items(self):
        """Iterate ``(attribute name, column)`` pairs."""
        return self._columns.items()

    @property
    def attribute_names(self) -> List[str]:
        """Sorted names of all attributes present in the batch."""
        return sorted(self._columns)

    def event_at(self, row: int) -> Event:
        """Materialize the event at ``row`` back from the columns.

        The inverse of :meth:`from_events` up to numeric type: value
        columns store numbers as ``float64``, so an event built from
        integers comes back with ``float`` values (``5`` → ``5.0``).
        Used by :meth:`EventBatch.from_columns` batches, whose events
        exist only as columns (e.g. on the far side of a shared-memory
        transport); the matching hot path never calls this.
        """
        if not 0 <= row < self.row_count:
            raise IndexError("row %d outside batch of %d" % (row, self.row_count))
        attributes: Dict[str, Value] = {}
        for name, column in self._columns.items():
            for kind_rows, values in (
                (column.numeric_rows, column.numeric_values),
                (column.string_rows, column.string_values),
                (column.bool_rows, column.bool_values),
            ):
                position = int(np.searchsorted(kind_rows, row))
                if position < len(kind_rows) and kind_rows[position] == row:
                    value = values[position]
                    attributes[name] = (
                        value.item() if isinstance(value, np.generic) else value
                    )
                    break
        return Event(attributes)

    def select(self, positions: Sequence[int]) -> "EventColumns":
        """Columns of the sub-batch at ``positions`` (ascending), with
        rows renumbered ``0 .. len(positions)-1``."""
        positions = np.asarray(positions, dtype=np.int64)
        inverse = np.full(self.row_count, -1, dtype=np.int64)
        inverse[positions] = np.arange(len(positions), dtype=np.int64)
        columns: Dict[str, AttributeColumn] = {}
        for name, column in self._columns.items():
            selected = column._select(inverse)
            if selected is not None:
                columns[name] = selected
        return EventColumns(len(positions), columns)

    def slice_rows(self, start: int, stop: int) -> "EventColumns":
        """Columns of the contiguous row range ``[start, stop)``."""
        columns: Dict[str, AttributeColumn] = {}
        for name, column in self._columns.items():
            sliced = column._slice(start, stop)
            if sliced is not None:
                columns[name] = sliced
        return EventColumns(stop - start, columns)


class _LazyEvents:
    """A read-only event sequence materialized on demand from columns.

    Batches rebuilt from a transported columnar view
    (:meth:`EventBatch.from_columns`) have no :class:`Event` objects;
    the vectorized matching path only ever asks such a batch for its
    length, so this sequence defers :meth:`EventColumns.event_at` until
    someone actually indexes into it.
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: EventColumns) -> None:
        self._columns = columns

    def __len__(self) -> int:
        return self._columns.row_count

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[Event, List[Event]]:
        if isinstance(index, slice):
            return [
                self._columns.event_at(row)
                for row in range(*index.indices(len(self)))
            ]
        if index < 0:
            index += len(self)
        return self._columns.event_at(index)

    def __iter__(self) -> Iterator[Event]:
        for row in range(len(self)):
            yield self._columns.event_at(row)


class EventBatch:
    """An ordered collection of events published as one logical workload.

    Batches carry a label so measurement reports can identify which
    workload produced them, and cache their columnar view
    (:meth:`columns`) so every consumer of the batch — each broker a
    batch traverses, each measurement pass — shares one columnarization.

    >>> batch = EventBatch([Event({"a": 1}), Event({"b": 2})])
    >>> len(batch)
    2
    >>> batch.columns().attribute_names
    ['a', 'b']
    """

    __slots__ = ("events", "label", "_columns")

    def __init__(self, events: List[Event], label: str = "") -> None:
        self.events = list(events)
        self.label = label
        self._columns: Optional[EventColumns] = None

    @classmethod
    def from_columns(cls, columns: EventColumns, label: str = "") -> "EventBatch":
        """A batch whose events exist only as a columnar view.

        This is how a worker process rebuilds the batch it received
        through the shared-memory transport (:mod:`repro.matching.shm`):
        the columns *are* the batch, and the ``events`` sequence
        materializes :class:`Event` objects lazily (and lossily for
        numerics — see :meth:`EventColumns.event_at`) only if someone
        indexes into it.  ``match_batch`` never does; it reads the
        cached columns and the row count.
        """
        batch = cls.__new__(cls)
        batch.events = _LazyEvents(columns)  # type: ignore[assignment]
        batch.label = label
        batch._columns = columns
        return batch

    @classmethod
    def coerce(cls, events: Union[Sequence[Event], "EventBatch"]) -> "EventBatch":
        """``events`` as a batch; reused as-is (columns and all) when it
        already is one."""
        if isinstance(events, EventBatch):
            return events
        return cls(list(events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, index: int) -> Event:
        return self.events[index]

    def columns(self) -> EventColumns:
        """The cached columnar view of this batch (built on first use)."""
        if self._columns is None:
            self._columns = EventColumns.from_events(self.events)
        return self._columns

    def subset(self, positions: Sequence[int]) -> "EventBatch":
        """The sub-batch at ``positions`` (ascending event indexes).

        If this batch has been columnarized already, the subset's columns
        are derived by vectorized row selection instead of re-scanning
        the picked event objects.
        """
        picked = EventBatch(
            [self.events[position] for position in positions], label=self.label
        )
        if self._columns is not None:
            picked._columns = self._columns.select(positions)
        return picked

    def sample(self, count: int, stride_offset: int = 0) -> "EventBatch":
        """Return an evenly strided sub-batch of roughly ``count`` events.

        Striding (rather than prefixing) keeps the sample representative
        when events were generated with time-correlated attributes.
        """
        if count <= 0:
            return EventBatch([], label=self.label)
        if count >= len(self.events):
            return EventBatch(list(self.events), label=self.label)
        stride = len(self.events) / float(count)
        picked = [
            self.events[min(len(self.events) - 1, int(i * stride) + stride_offset)]
            for i in range(count)
        ]
        return EventBatch(picked, label=self.label)

    def total_size_bytes(self) -> int:
        """Sum of the wire sizes of all events in the batch."""
        return sum(event.size_bytes for event in self.events)


def event_signature(event: Event) -> Tuple[Tuple[str, Value], ...]:
    """A hashable canonical signature of an event (sorted attribute pairs)."""
    return tuple(sorted(event.to_dict().items()))
