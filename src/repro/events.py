"""Event messages for the attribute-value pair publish/subscribe model.

An event message is a flat set of attribute-value pairs (paper Sect. 2.1).
Values are strings, booleans, integers, or floats.  Events are immutable so
they can be shared freely between brokers, matchers, and statistics
collectors without defensive copies.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

Value = Union[str, int, float, bool]

#: Per-message envelope overhead, in bytes, charged by the wire-size model
#: (message framing, type tag, attribute count).
_ENVELOPE_BYTES = 16
#: Per-attribute overhead, in bytes (length prefixes, type tags).
_ATTRIBUTE_OVERHEAD_BYTES = 4
_NUMERIC_BYTES = 8


class Event(Mapping[str, Value]):
    """An immutable event message of attribute-value pairs.

    >>> event = Event({"category": "fiction", "price": 12.5})
    >>> event["price"]
    12.5
    >>> "seller" in event
    False
    """

    __slots__ = ("_attributes", "_size_bytes")

    def __init__(self, attributes: Mapping[str, Value]) -> None:
        cleaned: Dict[str, Value] = {}
        for name, value in attributes.items():
            if not isinstance(name, str) or not name:
                raise TypeError("attribute names must be non-empty strings")
            if not isinstance(value, (str, int, float, bool)):
                raise TypeError(
                    "attribute %r has unsupported value type %s"
                    % (name, type(value).__name__)
                )
            cleaned[name] = value
        self._attributes = cleaned
        self._size_bytes: Optional[int] = None

    def __getitem__(self, name: str) -> Value:
        return self._attributes[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._attributes

    def __repr__(self) -> str:
        pairs = ", ".join(
            "%s=%r" % (name, value) for name, value in sorted(self._attributes.items())
        )
        return "Event(%s)" % pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._attributes.items())))

    def get(self, name: str, default: Optional[Value] = None) -> Optional[Value]:
        """Return the value of ``name`` or ``default`` when absent."""
        return self._attributes.get(name, default)

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of this message in bytes.

        Used by the broker network's bandwidth cost model.  Strings are
        charged their UTF-8 length; numbers and booleans a fixed 8 bytes.
        """
        if self._size_bytes is None:
            total = _ENVELOPE_BYTES
            for name, value in self._attributes.items():
                total += _ATTRIBUTE_OVERHEAD_BYTES + len(name.encode("utf-8"))
                if isinstance(value, str):
                    total += len(value.encode("utf-8"))
                else:
                    total += _NUMERIC_BYTES
            self._size_bytes = total
        return self._size_bytes

    def to_dict(self) -> Dict[str, Value]:
        """Return a plain-dict copy of the attribute-value pairs."""
        return dict(self._attributes)


class EventBatch:
    """An ordered collection of events published as one logical workload.

    Batches carry a label so measurement reports can identify which
    workload produced them.
    """

    __slots__ = ("events", "label")

    def __init__(self, events: List[Event], label: str = "") -> None:
        self.events = list(events)
        self.label = label

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, index: int) -> Event:
        return self.events[index]

    def sample(self, count: int, stride_offset: int = 0) -> "EventBatch":
        """Return an evenly strided sub-batch of roughly ``count`` events.

        Striding (rather than prefixing) keeps the sample representative
        when events were generated with time-correlated attributes.
        """
        if count <= 0:
            return EventBatch([], label=self.label)
        if count >= len(self.events):
            return EventBatch(list(self.events), label=self.label)
        stride = len(self.events) / float(count)
        picked = [
            self.events[min(len(self.events) - 1, int(i * stride) + stride_offset)]
            for i in range(count)
        ]
        return EventBatch(picked, label=self.label)

    def total_size_bytes(self) -> int:
        """Sum of the wire sizes of all events in the batch."""
        return sum(event.size_bytes for event in self.events)


def event_signature(event: Event) -> Tuple[Tuple[str, Value], ...]:
    """A hashable canonical signature of an event (sorted attribute pairs)."""
    return tuple(sorted(event.to_dict().items()))
