"""repro — dimension-based subscription pruning for publish/subscribe.

A complete reproduction of Bittner & Hinze, *Dimension-Based Subscription
Pruning for Publish/Subscribe Systems* (ICDCS Workshops 2006): the Boolean
subscription model, the counting-based filtering engine, selectivity
estimation, the three pruning dimensions (network load, memory usage,
system throughput), a broker-network substrate, the auction workload, and
the experiment harness regenerating all six figures of the paper's
evaluation.

Quickstart
----------
The primary surface is the service layer — sessions with server-assigned
subscription handles, delivery sinks, and a micro-batching ingress:

>>> from repro import PubSubService, P, And, Event, line_topology
>>> service = PubSubService(topology=line_topology(2))
>>> alice = service.connect("b1", "alice")
>>> handle = alice.subscribe(And(P("category") == "fiction", P("price") <= 20.0))
>>> service.publish("b0", Event({"category": "fiction", "price": 8.0}))
False
>>> service.flush()
1
>>> [note.event["price"] for note in alice.sink.notifications]
[8.0]

The matching engine is directly usable too:

>>> from repro import Subscription, CountingMatcher
>>> matcher = CountingMatcher()
>>> matcher.register(Subscription(1, And(
...     P("category") == "fiction", P("price") <= 20.0)))
>>> matcher.match(Event({"category": "fiction", "price": 8.0}))
[1]

See README.md for the architecture overview and DESIGN.md for the mapping
from paper sections to modules.
"""

from repro.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    OnlineEventStatistics,
    StreamingHistogram,
    SystemConditionsProbe,
    TopKCounter,
)
from repro.core.adaptive import AdaptivePruner, SystemConditions
from repro.core.engine import PruningEngine, PruningRecord
from repro.core.heuristics import DIMENSION_ORDERS, Dimension, HeuristicVector
from repro.core.ops import PruningOp, apply_pruning, enumerate_prunings, is_prunable
from repro.core.planner import PruningSchedule
from repro.errors import (
    DeliveryError,
    ExperimentError,
    MatchingError,
    ProtocolError,
    PruningError,
    ReproError,
    RoutingError,
    SelectivityError,
    ServiceError,
    SubscriptionError,
    TopologyError,
    TransportError,
    WorkloadError,
)
from repro.events import Event, EventBatch
from repro.experiments.centralized import CentralizedExperiment
from repro.faults import (
    BackoffSchedule,
    FaultPlan,
    FaultyReader,
    FaultyWriter,
    WorkerFaultInjector,
    faulty_stream,
    worker_injector,
)
from repro.experiments.config import ExperimentConfig, config_for_scale
from repro.experiments.context import ExperimentContext
from repro.experiments.distributed import DistributedExperiment
from repro.matching.counting import CountingMatcher
from repro.matching.naive import NaiveMatcher
from repro.matching.sharded import PoolHealth, ShardedMatcher
from repro.matching.stats import MatchStatistics
from repro.routing.broker import Broker, Interface
from repro.routing.metrics import CostModel
from repro.routing.network import BrokerNetwork
from repro.routing.topology import (
    Topology,
    line_topology,
    star_topology,
    tree_topology,
)
from repro.selectivity.estimator import SelectivityEstimate, SelectivityEstimator
from repro.service import (
    DEAD_LETTER_REASONS,
    POLICIES,
    AsyncDeliverySink,
    BoundedDeliveryQueue,
    CallbackSink,
    CollectingSink,
    CountingSink,
    DeadLetter,
    DeadLetterSink,
    DeliverySink,
    Ingress,
    Notification,
    PubSubService,
    Session,
    SubscriptionHandle,
)
from repro.selectivity.statistics import (
    CategoricalStatistics,
    ContinuousStatistics,
    EmpiricalStatistics,
    EventStatistics,
)
from repro.subscriptions.builder import And, Not, Or, P, attr
from repro.transport import (
    ENVELOPE_TYPES,
    PROTOCOL_VERSION,
    RESUMABLE_GOODBYE_REASONS,
    FrameDecoder,
    PubSubClient,
    PubSubServer,
    RemoteSubscriptionHandle,
    encode_frame,
    resumable_disconnect,
)
from repro.subscriptions.normalize import normalize
from repro.subscriptions.predicates import Operator, Predicate
from repro.subscriptions.subscription import Subscription
from repro.workloads.auction import (
    AuctionWorkload,
    AuctionWorkloadConfig,
    SubscriptionClassMix,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveConfig",
    "AdaptiveController",
    "AdaptivePruner",
    "And",
    "apply_pruning",
    "AsyncDeliverySink",
    "attr",
    "AuctionWorkload",
    "AuctionWorkloadConfig",
    "BackoffSchedule",
    "BoundedDeliveryQueue",
    "Broker",
    "BrokerNetwork",
    "CallbackSink",
    "CategoricalStatistics",
    "CentralizedExperiment",
    "CollectingSink",
    "config_for_scale",
    "ContinuousStatistics",
    "CostModel",
    "CountingMatcher",
    "CountingSink",
    "DEAD_LETTER_REASONS",
    "DeadLetter",
    "DeadLetterSink",
    "DeliveryError",
    "DeliverySink",
    "Dimension",
    "DIMENSION_ORDERS",
    "DistributedExperiment",
    "EmpiricalStatistics",
    "encode_frame",
    "enumerate_prunings",
    "ENVELOPE_TYPES",
    "Event",
    "EventBatch",
    "EventStatistics",
    "ExperimentConfig",
    "ExperimentContext",
    "ExperimentError",
    "FaultPlan",
    "faulty_stream",
    "FaultyReader",
    "FaultyWriter",
    "FrameDecoder",
    "HeuristicVector",
    "Ingress",
    "Interface",
    "is_prunable",
    "line_topology",
    "MatchingError",
    "MatchStatistics",
    "NaiveMatcher",
    "normalize",
    "Not",
    "Notification",
    "OnlineEventStatistics",
    "Operator",
    "Or",
    "P",
    "POLICIES",
    "PoolHealth",
    "Predicate",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "PruningEngine",
    "PruningError",
    "PruningOp",
    "PruningRecord",
    "PruningSchedule",
    "PubSubClient",
    "PubSubServer",
    "PubSubService",
    "RemoteSubscriptionHandle",
    "ReproError",
    "resumable_disconnect",
    "RESUMABLE_GOODBYE_REASONS",
    "RoutingError",
    "SelectivityError",
    "SelectivityEstimate",
    "SelectivityEstimator",
    "ServiceError",
    "Session",
    "ShardedMatcher",
    "star_topology",
    "StreamingHistogram",
    "Subscription",
    "SubscriptionClassMix",
    "SubscriptionError",
    "SubscriptionHandle",
    "SystemConditions",
    "SystemConditionsProbe",
    "TopKCounter",
    "Topology",
    "TopologyError",
    "TransportError",
    "tree_topology",
    "worker_injector",
    "WorkerFaultInjector",
    "WorkloadError",
]
