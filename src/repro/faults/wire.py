"""Fault-injecting stream wrappers for the TCP transport.

:func:`faulty_stream` builds a :data:`~repro.transport.streams.
StreamWrapper` from a :class:`~repro.faults.plan.FaultPlan`: plug it
into ``PubSubServer(stream_wrapper=...)`` or
``PubSubClient(stream_wrapper=...)`` and every connection's byte
streams are interposed by a :class:`FaultyReader`/:class:`FaultyWriter`
pair that misbehaves exactly where the plan's seeded lanes say to.
The happy path is untouched: without a wrapper, the transport uses the
raw asyncio streams, and a wrapped connection with a disarmed plan is
a pass-through.

Fault semantics (all at real stream boundaries, so they exercise the
same code paths genuine network weather does):

``reset``
    *Write side*: the transport is aborted — the peer sees a
    connection reset, this side's later writes are swallowed.
    *Read side*: raises ``ConnectionResetError`` out of ``read`` —
    a one-way failure; the socket itself may linger half-open, exactly
    like a real asymmetric partition, until a reconnect supersedes it.

``short_write``
    A prefix of the chunk is written now; the remainder is held back
    and flushed ``holdback_seconds`` later (or coalesced into the next
    write).  The peer's :class:`~repro.transport.protocol.FrameDecoder`
    sees a frame cut at an arbitrary byte.

``merge``
    The whole chunk is held back briefly so it coalesces with the next
    write — several frames arrive in one read on the peer.

``split``
    A read returns only a prefix; the tail arrives on the *next* read.

``stall``
    The bytes move only after ``stall_seconds`` of silence — long
    enough, under an aggressive plan, to trip heartbeat liveness.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from repro.faults.plan import FaultLane, FaultPlan
from repro.transport.streams import (
    StreamWrapper,
    TransportReader,
    TransportWriter,
)


class FaultyReader:
    """A :class:`~repro.transport.streams.TransportReader` that injects
    read-side faults (``reset``, ``stall``, ``split``) per its lane."""

    def __init__(self, inner: TransportReader, lane: FaultLane) -> None:
        self._inner = inner
        self._lane = lane
        self._held = b""

    async def read(self, n: int = -1) -> bytes:
        if self._held:
            # The tail of a split chunk arrives on its own read, so the
            # decoder sees the frame boundary the fault manufactured.
            data, self._held = self._held, b""
            return data
        data = await self._inner.read(n)
        if not data:
            return data
        loop = asyncio.get_running_loop()
        fault = self._lane.poll(len(data), loop.time())
        if fault is None:
            return data
        kind, offset = fault
        if kind == "reset":
            raise ConnectionResetError("fault injection: connection reset")
        if kind == "stall":
            await asyncio.sleep(self._lane.stall_seconds)
            return data
        # split: deliver a strict prefix now when the chunk allows one.
        if len(data) > 1:
            cut = min(max(1, offset), len(data) - 1)
            self._held = data[cut:]
            return data[:cut]
        return data


class FaultyWriter:
    """A :class:`~repro.transport.streams.TransportWriter` that injects
    write-side faults (``reset``, ``short_write``, ``merge``,
    ``stall``) per its lane.

    Held-back bytes (``short_write`` tails, ``merge`` chunks) are
    always either coalesced into the next write or flushed by a
    ``holdback_seconds`` timer — the wrapper delays and re-chunks, but
    never loses, bytes the transport asked it to send.  Only ``reset``
    drops data, as a real reset would.
    """

    def __init__(
        self,
        inner: TransportWriter,
        lane: FaultLane,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self._inner = inner
        self._lane = lane
        self._loop = loop
        self._pending = bytearray()
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._stall = 0.0
        self._reset = False

    @property
    def transport(self) -> asyncio.WriteTransport:
        return self._inner.transport

    def write(self, data: bytes) -> None:
        if self._reset:
            return
        if self._pending:
            data = bytes(self._pending) + data
            self._pending.clear()
            self._cancel_flush()
        fault = self._lane.poll(len(data), self._loop.time())
        if fault is None:
            self._inner.write(data)
            return
        kind, offset = fault
        if kind == "reset":
            self._reset = True
            self._cancel_flush()
            try:
                self._inner.transport.abort()
            except (ConnectionError, OSError, RuntimeError):
                pass
            return
        if kind == "stall":
            self._stall = self._lane.stall_seconds
            self._inner.write(data)
            return
        if kind == "short_write":
            head, tail = data[:offset], data[offset:]
            if head:
                self._inner.write(head)
            if tail:
                self._pending.extend(tail)
                self._arm_flush()
            return
        # merge: hold the whole chunk for coalescing with the next one.
        self._pending.extend(data)
        self._arm_flush()

    async def drain(self) -> None:
        stall, self._stall = self._stall, 0.0
        if stall:
            await asyncio.sleep(stall)
        await self._inner.drain()

    def close(self) -> None:
        self._cancel_flush()
        self._flush_pending()
        self._inner.close()

    # -- holdback plumbing ---------------------------------------------------

    def _arm_flush(self) -> None:
        if self._flush_handle is None:
            self._flush_handle = self._loop.call_later(
                self._lane.holdback_seconds, self._fire_flush
            )

    def _cancel_flush(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None

    def _fire_flush(self) -> None:
        self._flush_handle = None
        self._flush_pending()

    def _flush_pending(self) -> None:
        if self._reset or not self._pending:
            return
        data = bytes(self._pending)
        self._pending.clear()
        try:
            self._inner.write(data)
        except (ConnectionError, OSError, RuntimeError):
            pass


def faulty_stream(plan: FaultPlan, label: str) -> StreamWrapper:
    """A :data:`~repro.transport.streams.StreamWrapper` driven by ``plan``.

    Every invocation (one per connection) claims the next attempt index
    for ``label``, so each reconnect runs fresh, independent — but
    still seed-determined — read and write fault lanes.

    >>> plan = FaultPlan(7, mean_gap_bytes=64.0, min_first_gap_bytes=0)
    >>> wrapper = faulty_stream(plan, "alice")  # pass to PubSubClient
    """

    def wrap(
        reader: TransportReader, writer: TransportWriter
    ) -> Tuple[TransportReader, TransportWriter]:
        attempt = plan.next_attempt(label)
        loop = asyncio.get_running_loop()
        return (
            FaultyReader(reader, plan.wire_lane(label, attempt, "read")),
            FaultyWriter(writer, plan.wire_lane(label, attempt, "write"), loop),
        )

    return wrap
