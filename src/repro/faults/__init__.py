"""repro.faults — seeded fault injection and the chaos-test surface.

Brokers and links fail as a matter of course at the scale this system
targets; this package makes failure a *first-class, reproducible
input* instead of a test-only accident.  One :class:`FaultPlan`
(seeded through :mod:`repro.util.rng`) drives:

* **wire faults** — :func:`faulty_stream` builds a ``stream_wrapper``
  for :class:`~repro.transport.server.PubSubServer` /
  :class:`~repro.transport.client.PubSubClient` whose
  :class:`FaultyReader`/:class:`FaultyWriter` pair injects connection
  resets, short writes, stalled reads, and split/merged frame
  boundaries at planned offsets;
* **worker faults** — a :class:`WorkerFaultInjector` kills shard
  worker processes mid-``match_batch`` and fails shared-memory packs,
  exercising the pool supervisor and its crash-loop circuit breaker in
  :class:`~repro.matching.sharded.ShardedMatcher`.

:class:`BackoffSchedule` is the healing-side counterpart: the capped,
fully-jittered, seed-deterministic reconnect schedule the client's
``auto_reconnect`` machinery takes via ``backoff=``.

The package only ever *wraps* the production stack — nothing in the
happy path imports it — and a disarmed plan is a pass-through, so the
same wrapped topology serves both the chaos soak and its quiesced
verification phase (``tests/test_chaos.py``).  See
``docs/ARCHITECTURE.md`` ("Fault tolerance").
"""

from repro.faults.backoff import BackoffSchedule
from repro.faults.plan import (
    READ_FAULT_KINDS,
    WIRE_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    WRITE_FAULT_KINDS,
    FaultLane,
    FaultPlan,
)
from repro.faults.wire import FaultyReader, FaultyWriter, faulty_stream
from repro.faults.workers import WorkerFaultInjector, worker_injector

__all__ = [
    "BackoffSchedule",
    "FaultLane",
    "FaultPlan",
    "faulty_stream",
    "FaultyReader",
    "FaultyWriter",
    "READ_FAULT_KINDS",
    "WIRE_FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "worker_injector",
    "WorkerFaultInjector",
    "WRITE_FAULT_KINDS",
]
