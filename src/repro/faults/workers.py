"""Fault injection for the process-shard worker pool.

A :class:`WorkerFaultInjector` turns a :class:`~repro.faults.plan.
FaultPlan`'s worker schedule into concrete pool failures:

* ``worker_kill`` — terminate the target shard's worker process right
  before a ``match`` request is sent, so the in-flight ``match_batch``
  sees exactly what a crashed worker produces (a dead pipe and a
  liveness-poll failure in :meth:`~repro.matching.process_pool.
  ShardWorkerPool.recv`);
* ``pack_fail`` — fail the parent-side shared-memory packing of the
  batch (an allocation failure), before any worker is involved.

Hook points: :class:`~repro.matching.process_pool.ShardWorkerPool`
calls :meth:`before_send` from ``send`` when an injector is installed,
and :class:`~repro.matching.sharded.ShardedMatcher` calls
:meth:`before_pack` just before ``pack_columns`` — i.e. the injector
sits inside the real request path, so the retry/circuit-breaker
machinery it exercises is the same machinery genuine crashes hit.

Each kind runs its own seeded call-count schedule (gaps drawn from an
exponential with mean ``plan.worker_mean_gap_calls``, floored at one
call), so ``worker_mean_gap_calls=1.0`` is a crash loop — every
request dies — and larger means give sporadic, recoverable failures.
Every injected fault is claimed from the plan's budget via
:meth:`~repro.faults.plan.FaultPlan.take`, sharing the counters the
wire lanes report into.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import MatchingError
from repro.faults.plan import FaultPlan
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.matching.process_pool import ShardWorkerPool


class _CallSchedule:
    """A seeded every-N-calls trigger (N ~ max(1, Exp(mean)))."""

    def __init__(self, rng: np.random.Generator, mean_gap_calls: float) -> None:
        self._rng = rng
        self._mean = mean_gap_calls
        self._calls = 0
        self._next_at = self._draw() if mean_gap_calls > 0 else -1

    def _draw(self) -> int:
        return self._calls + max(1, int(self._rng.exponential(self._mean)))

    def fires(self) -> bool:
        if self._next_at < 0:
            return False
        self._calls += 1
        if self._calls < self._next_at:
            return False
        self._next_at = self._draw()
        return True


class WorkerFaultInjector:
    """Seeded worker-pool faults, driven by a plan's worker schedule.

    ``label`` separates the rng streams of injectors sharing one plan
    (one injector per matcher, say); the plan's counters and budget
    stay shared.  Thread-safe: the matching path may be driven from
    any number of service threads.
    """

    def __init__(self, plan: FaultPlan, label: str = "pool") -> None:
        self._plan = plan
        self._lock = threading.Lock()
        mean = plan.worker_mean_gap_calls
        kinds = plan.worker_kinds
        self._kill = _CallSchedule(
            make_rng(plan.seed, "workers", label, "kill"),
            mean if "worker_kill" in kinds else 0.0,
        )
        self._pack = _CallSchedule(
            make_rng(plan.seed, "workers", label, "pack"),
            mean if "pack_fail" in kinds else 0.0,
        )

    def before_pack(self) -> None:
        """Called by the matcher before packing a batch; may raise."""
        with self._lock:
            fire = self._pack.fires() and self._plan.take("pack_fail")
        if fire:
            raise MatchingError(
                "fault injection: shared-memory packing failed"
            )

    def before_send(
        self, pool: "ShardWorkerPool", shard: int, command: str
    ) -> None:
        """Called by the pool before dispatching ``command`` to ``shard``.

        Only ``match`` requests are eligible — introspection and
        lifecycle traffic stays reliable, as the issue's fault model
        (kill mid-``match_batch``) specifies.
        """
        if command != "match":
            return
        with self._lock:
            fire = self._kill.fires() and self._plan.take("worker_kill")
        if fire:
            pool.kill_worker(shard)


def worker_injector(
    plan: FaultPlan, label: str = "pool"
) -> Optional[WorkerFaultInjector]:
    """An injector for ``plan``, or ``None`` if it schedules no worker
    faults — convenient for wiring optional chaos into a matcher."""
    if not plan.worker_kinds or plan.worker_mean_gap_calls <= 0:
        return None
    return WorkerFaultInjector(plan, label)
