"""Capped exponential backoff with full jitter, deterministic per seed.

The reconnect schedule of a client that just lost its broker is a
thundering-herd problem: if every client retries on the same clock,
the broker takes the whole fleet back at once, falls over again, and
the fleet synchronizes harder.  The standard cure is **capped
exponential backoff with full jitter**: the *envelope* grows
exponentially up to a cap, and the actual delay is drawn uniformly
from ``[0, envelope]`` — decorrelating clients while keeping the mean
load on the broker bounded.

:class:`BackoffSchedule` packages that policy with the library's
seeded-rng discipline: ``delay(attempt)`` is a pure function of
``(seed, label, attempt)`` — independent of call order, process, or
platform — so chaos tests can assert exact reconnect schedules, while
production use just picks a per-client label.  The schedule is a
plain ``Callable[[int], float]``, which is exactly the ``backoff=``
shape :class:`~repro.transport.client.PubSubClient` accepts.

Properties (hypothesis-tested in ``tests/test_backoff_property.py``):
every delay lies in ``[0, cap]``; the envelope is monotone
nondecreasing in the attempt and bounded by the cap; fixed seeds give
fixed schedules.
"""

from __future__ import annotations

from repro.util.rng import make_rng

#: The envelope stops growing after this many doublings — far beyond
#: any real retry count, and it keeps ``multiplier ** attempt`` finite.
_MAX_GROWTH_STEPS = 64


class BackoffSchedule:
    """``delay(attempt) = U(0, min(cap, base * multiplier**attempt))``.

    ``base`` is the attempt-0 envelope (seconds), ``multiplier`` the
    per-attempt growth factor (>= 1), ``cap`` the envelope ceiling.
    ``seed``/``label`` fix the jitter stream.

    >>> schedule = BackoffSchedule(base=0.1, cap=2.0, seed=42)
    >>> schedule.delay(3) == schedule.delay(3)  # deterministic
    True
    >>> all(0.0 <= schedule.delay(a) <= 2.0 for a in range(20))
    True
    """

    def __init__(
        self,
        *,
        base: float = 0.05,
        multiplier: float = 2.0,
        cap: float = 5.0,
        seed: int = 0,
        label: str = "backoff",
    ) -> None:
        if base < 0:
            raise ValueError("base must be >= 0, got %r" % base)
        if multiplier < 1:
            raise ValueError("multiplier must be >= 1, got %r" % multiplier)
        if cap < 0:
            raise ValueError("cap must be >= 0, got %r" % cap)
        self.base = float(base)
        self.multiplier = float(multiplier)
        self.cap = float(cap)
        self.seed = seed
        self.label = label

    def envelope(self, attempt: int) -> float:
        """The jitter ceiling for ``attempt``: ``min(cap, base * m^a)``."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0, got %d" % attempt)
        value = self.base
        for _ in range(min(attempt, _MAX_GROWTH_STEPS)):
            if value >= self.cap:
                return self.cap
            value *= self.multiplier
        return min(value, self.cap)

    def delay(self, attempt: int) -> float:
        """The jittered delay for ``attempt`` — pure in (seed, label,
        attempt), so out-of-order or repeated calls see one schedule."""
        rng = make_rng(self.seed, "backoff", self.label, attempt)
        return float(rng.uniform(0.0, self.envelope(attempt)))

    def __call__(self, attempt: int) -> float:
        return self.delay(attempt)

    def __repr__(self) -> str:
        return (
            "BackoffSchedule(base=%g, multiplier=%g, cap=%g, seed=%d, "
            "label=%r)"
            % (self.base, self.multiplier, self.cap, self.seed, self.label)
        )
