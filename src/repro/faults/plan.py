"""Deterministic, seeded fault schedules for the wire and the workers.

A :class:`FaultPlan` is the single source of truth for one chaos run:
*what* can go wrong (the fault kinds), *how often* (mean gaps, drawn
from seeded exponentials via :mod:`repro.util.rng`), and *how much*
(an optional total budget).  Everything that injects a fault — the
:class:`~repro.faults.wire.FaultyReader`/:class:`~repro.faults.wire.
FaultyWriter` stream wrappers, the :class:`~repro.faults.workers.
WorkerFaultInjector` — draws its schedule from the plan, and reports
every injected fault back through :meth:`FaultPlan.take`, so a chaos
soak can assert "at least N faults, spanning these kinds, actually
happened" from one thread-safe counter surface.

Determinism: each wrapped connection gets two **lanes** (one per
direction) whose rngs are derived from ``(seed, "wire", label,
attempt, direction)`` — the per-label attempt counter increments on
every reconnect, so a client that dials five times replays five fixed,
independent fault schedules regardless of how the event loop
interleaves them.  Positions are byte offsets into the lane's stream
(or, with ``mean_gap_seconds``, wall-clock gaps — useful for "one
fault per second" soak rates), so the *schedule* is a pure function of
the seed even though the *placement* of a time-based fault depends on
traffic.

:meth:`disarm` ends the chaos phase: lanes keep accounting bytes but
inject nothing further, which is how a soak quiesces before comparing
against its oracle.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.util.rng import make_rng

#: Every wire fault kind a plan can schedule.  ``reset`` kills the
#: connection; ``short_write`` emits a prefix now and the remainder a
#: beat later; ``merge`` holds a chunk back so it coalesces with the
#: next write; ``split`` returns a partial read now and the tail on the
#: next read; ``stall`` sleeps before the bytes move.
WIRE_FAULT_KINDS: Tuple[str, ...] = (
    "reset",
    "short_write",
    "stall",
    "split",
    "merge",
)

#: Worker-pool fault kinds: ``worker_kill`` terminates a shard worker
#: process mid-``match_batch``; ``pack_fail`` fails the parent-side
#: shared-memory packing of the batch.
WORKER_FAULT_KINDS: Tuple[str, ...] = ("worker_kill", "pack_fail")

#: Wire kinds applicable on the read side of a connection.
READ_FAULT_KINDS: FrozenSet[str] = frozenset({"reset", "stall", "split"})

#: Wire kinds applicable on the write side of a connection.
WRITE_FAULT_KINDS: FrozenSet[str] = frozenset(
    {"reset", "short_write", "merge", "stall"}
)


class FaultLane:
    """One direction of one wrapped connection: a seeded fault stream.

    The lane advances a byte counter as traffic passes and fires a
    fault whenever the counter crosses the next scheduled offset
    (``mean_gap_bytes`` mode) or the clock passes the next scheduled
    instant (``mean_gap_seconds`` mode).  Each firing is reported to
    the owning plan, which may veto it (disarmed, or budget spent).

    Only ever touched from the event loop of its connection — no lock.
    """

    def __init__(
        self,
        plan: "FaultPlan",
        rng: np.random.Generator,
        kinds: Tuple[str, ...],
    ) -> None:
        self._plan = plan
        self._rng = rng
        self._kinds = kinds
        self._consumed = 0
        self._next_kind = self._draw_kind()
        if plan.mean_gap_seconds is not None:
            self._next_at: float = -1.0  # armed on the first poll
        else:
            self._next_at = float(plan.min_first_gap_bytes + self._draw_gap())

    @property
    def stall_seconds(self) -> float:
        """How long a ``stall`` fault sleeps."""
        return self._plan.stall_seconds

    @property
    def holdback_seconds(self) -> float:
        """How long ``short_write``/``merge`` hold residual bytes."""
        return self._plan.holdback_seconds

    def _draw_gap(self) -> int:
        return max(1, int(self._rng.exponential(self._plan.mean_gap_bytes)))

    def _draw_gap_seconds(self) -> float:
        mean = self._plan.mean_gap_seconds
        assert mean is not None
        return float(self._rng.exponential(mean))

    def _draw_kind(self) -> str:
        if not self._kinds:
            return ""
        return self._kinds[int(self._rng.integers(len(self._kinds)))]

    def poll(self, nbytes: int, now: float) -> Optional[Tuple[str, int]]:
        """Account ``nbytes`` about to pass; the fault to apply, if any.

        Returns ``(kind, offset)`` where ``offset`` is the byte offset
        inside the chunk at which the fault lands (byte mode; time mode
        returns offset 0), or ``None``.  At most one fault fires per
        chunk.
        """
        if not self._kinds or not self._plan.armed:
            self._consumed += nbytes
            return None
        if self._plan.mean_gap_seconds is not None:
            if self._next_at < 0.0:
                self._next_at = now + self._draw_gap_seconds()
            self._consumed += nbytes
            if now < self._next_at:
                return None
            kind = self._next_kind
            self._next_at = now + self._draw_gap_seconds()
            self._next_kind = self._draw_kind()
            if not self._plan.take(kind):
                return None
            return kind, 0
        offset = int(self._next_at) - self._consumed
        self._consumed += nbytes
        if offset >= nbytes:
            return None
        kind = self._next_kind
        self._next_at = float(self._consumed + self._draw_gap())
        self._next_kind = self._draw_kind()
        if not self._plan.take(kind):
            return None
        return kind, max(0, offset)


class FaultPlan:
    """A seeded, bounded, queryable schedule of faults.

    ``seed`` drives every draw through :func:`repro.util.rng.make_rng`,
    so two runs with the same seed schedule the same faults.
    ``wire_kinds`` selects which wire faults may fire (each lane keeps
    only the kinds its direction supports); ``mean_gap_bytes`` /
    ``min_first_gap_bytes`` shape the byte-offset schedule (the first
    gap floor lets handshakes usually complete); ``mean_gap_seconds``,
    when set, switches lanes to wall-clock scheduling instead (for
    "about one fault per second" soak rates).  ``stall_seconds`` and
    ``holdback_seconds`` parameterize the stall and partial-write
    faults.  ``max_faults`` caps the total injected across all lanes
    and injectors; ``None`` is unbounded.

    ``worker_kinds`` / ``worker_mean_gap_calls`` configure the
    :class:`~repro.faults.workers.WorkerFaultInjector` call-count
    schedule (gaps in units of pool requests).

    The plan is thread-safe where it must be: lanes live on event
    loops, worker injectors fire from service threads, and both funnel
    through :meth:`take`.
    """

    def __init__(
        self,
        seed: int,
        *,
        wire_kinds: Tuple[str, ...] = WIRE_FAULT_KINDS,
        mean_gap_bytes: float = 8192.0,
        min_first_gap_bytes: int = 2048,
        mean_gap_seconds: Optional[float] = None,
        stall_seconds: float = 0.05,
        holdback_seconds: float = 0.02,
        max_faults: Optional[int] = None,
        worker_kinds: Tuple[str, ...] = (),
        worker_mean_gap_calls: float = 0.0,
    ) -> None:
        for kind in wire_kinds:
            if kind not in WIRE_FAULT_KINDS:
                raise ValueError(
                    "unknown wire fault kind %r (choose from %s)"
                    % (kind, ", ".join(WIRE_FAULT_KINDS))
                )
        for kind in worker_kinds:
            if kind not in WORKER_FAULT_KINDS:
                raise ValueError(
                    "unknown worker fault kind %r (choose from %s)"
                    % (kind, ", ".join(WORKER_FAULT_KINDS))
                )
        if mean_gap_bytes <= 0:
            raise ValueError("mean_gap_bytes must be positive")
        if mean_gap_seconds is not None and mean_gap_seconds <= 0:
            raise ValueError("mean_gap_seconds must be positive")
        self.seed = seed
        self.wire_kinds = tuple(wire_kinds)
        self.mean_gap_bytes = float(mean_gap_bytes)
        self.min_first_gap_bytes = int(min_first_gap_bytes)
        self.mean_gap_seconds = mean_gap_seconds
        self.stall_seconds = float(stall_seconds)
        self.holdback_seconds = float(holdback_seconds)
        self.max_faults = max_faults
        self.worker_kinds = tuple(worker_kinds)
        self.worker_mean_gap_calls = float(worker_mean_gap_calls)
        self._lock = threading.Lock()
        self._armed = True
        self._total = 0
        self._counts: Dict[str, int] = {}
        self._attempts: Dict[str, int] = {}

    # -- lane / injector construction ---------------------------------------

    def next_attempt(self, label: str) -> int:
        """The 0-based attempt index for the next connection of ``label``."""
        with self._lock:
            attempt = self._attempts.get(label, 0)
            self._attempts[label] = attempt + 1
            return attempt

    def wire_lane(self, label: str, attempt: int, direction: str) -> FaultLane:
        """One direction's fault lane for connection ``(label, attempt)``.

        ``direction`` is ``"read"`` or ``"write"``; the lane keeps only
        the plan kinds that direction can express.
        """
        side = READ_FAULT_KINDS if direction == "read" else WRITE_FAULT_KINDS
        kinds = tuple(kind for kind in self.wire_kinds if kind in side)
        rng = make_rng(self.seed, "wire", label, attempt, direction)
        return FaultLane(self, rng, kinds)

    # -- arming / accounting -------------------------------------------------

    @property
    def armed(self) -> bool:
        """Whether lanes and injectors may still fire."""
        with self._lock:
            return self._armed

    def disarm(self) -> None:
        """Stop injecting (quiesce); accounting continues."""
        with self._lock:
            self._armed = False

    def arm(self) -> None:
        """Re-enable injection after a :meth:`disarm`."""
        with self._lock:
            self._armed = True

    def take(self, kind: str) -> bool:
        """Claim one fault of ``kind``; ``False`` vetoes the injection.

        A fault is vetoed when the plan is disarmed or the
        ``max_faults`` budget is spent.  A granted fault is counted
        immediately, so :meth:`counts` never under-reports what was
        actually injected.
        """
        with self._lock:
            if not self._armed:
                return False
            if self.max_faults is not None and self._total >= self.max_faults:
                return False
            self._total += 1
            self._counts[kind] = self._counts.get(kind, 0) + 1
            return True

    @property
    def injected(self) -> int:
        """Total faults injected so far, across every lane and injector."""
        with self._lock:
            return self._total

    def counts(self) -> Dict[str, int]:
        """Snapshot of injected-fault counts per kind."""
        with self._lock:
            return dict(self._counts)

    def kinds_injected(self) -> FrozenSet[str]:
        """The set of fault kinds that have fired at least once."""
        with self._lock:
            return frozenset(
                kind for kind, count in self._counts.items() if count
            )

    def __repr__(self) -> str:
        with self._lock:
            return "FaultPlan(seed=%d, %s, injected=%d%s)" % (
                self.seed,
                "armed" if self._armed else "disarmed",
                self._total,
                ""
                if self.max_faults is None
                else "/%d" % self.max_faults,
            )
