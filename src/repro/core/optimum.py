"""Searching for the best number of pruning operations.

The paper's future work asks "how to dynamically determine the number of
pruning operations leading to the best overall optimization" (Sect. 5):
its Fig. 1(d) shows distributed routing cost falling, bottoming out, and
rising again as pruning proceeds — so there is a non-trivial optimum.

:class:`OptimumSearch` finds it against any caller-supplied cost
functional (e.g. measured seconds per event, or a weighted combination of
time, memory, and network load):

1. evaluate a coarse grid of pruning counts over ``[0, total]``;
2. repeatedly zoom into the interval around the incumbent best and
   evaluate a finer grid there, until the interval collapses or the
   evaluation budget is spent.

Cost functions are typically noisy (they time real matching), so the
search keeps every evaluation and reports the incumbent rather than
assuming convexity.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.core.planner import PruningSchedule
from repro.errors import PruningError
from repro.subscriptions.subscription import Subscription

CostFunction = Callable[[Dict[int, Subscription], int], float]


class OptimumResult(NamedTuple):
    """Outcome of an optimum search."""

    count: int                       #: best number of prunings found
    proportion: float                #: count / schedule.total
    cost: float                      #: cost at the optimum
    evaluations: List[Tuple[int, float]]  #: every (count, cost) evaluated


class OptimumSearch:
    """Grid-refinement search over a pruning schedule.

    Parameters
    ----------
    schedule:
        A fully built :class:`~repro.core.planner.PruningSchedule`.
    cost:
        Called as ``cost(pruned_subscriptions, count)``; smaller is better.
    coarse_points:
        Number of evaluations in the initial full-range grid (>= 3).
    refine_rounds:
        How many times to zoom into the incumbent's neighborhood.
    refine_points:
        Evaluations per refinement round.
    """

    def __init__(
        self,
        schedule: PruningSchedule,
        cost: CostFunction,
        coarse_points: int = 7,
        refine_rounds: int = 2,
        refine_points: int = 5,
    ) -> None:
        if coarse_points < 3:
            raise PruningError("coarse_points must be at least 3")
        if refine_rounds < 0 or refine_points < 3:
            raise PruningError("invalid refinement parameters")
        self.schedule = schedule
        self.cost = cost
        self.coarse_points = coarse_points
        self.refine_rounds = refine_rounds
        self.refine_points = refine_points
        self._cache: Dict[int, float] = {}
        self._evaluations: List[Tuple[int, float]] = []

    def _grid(self, low: int, high: int, points: int) -> List[int]:
        if high <= low:
            return [low]
        step = (high - low) / (points - 1)
        counts = sorted({low + round(index * step) for index in range(points)})
        return [min(high, max(low, count)) for count in counts]

    def _evaluate(self, counts: List[int]) -> None:
        """Evaluate all new counts in one incremental sweep."""
        fresh = sorted(set(counts) - set(self._cache))
        if not fresh:
            return
        for count, pruned in self.schedule.sweep(fresh):
            value = self.cost(pruned, count)
            self._cache[count] = value
            self._evaluations.append((count, value))

    def search(self) -> OptimumResult:
        """Run the search and return the incumbent optimum."""
        total = self.schedule.total
        self._evaluate(self._grid(0, total, self.coarse_points))
        for _round in range(self.refine_rounds):
            best_count = min(self._cache, key=lambda c: (self._cache[c], c))
            evaluated = sorted(self._cache)
            position = evaluated.index(best_count)
            low = evaluated[max(0, position - 1)]
            high = evaluated[min(len(evaluated) - 1, position + 1)]
            if high - low <= 1:
                break
            self._evaluate(self._grid(low, high, self.refine_points))
        best_count = min(self._cache, key=lambda c: (self._cache[c], c))
        return OptimumResult(
            count=best_count,
            proportion=(best_count / total) if total else 0.0,
            cost=self._cache[best_count],
            evaluations=list(self._evaluations),
        )


def weighted_cost(
    time_weight: float = 1.0,
    network_weight: float = 0.0,
    memory_weight: float = 0.0,
    measure_time: Optional[Callable[[Dict[int, Subscription]], float]] = None,
    measure_network: Optional[Callable[[Dict[int, Subscription]], float]] = None,
    initial_associations: Optional[int] = None,
) -> CostFunction:
    """Build a combined cost functional over the three dimensions.

    Each enabled component must come with its measurement callable; the
    memory component is derived from association counts (needs
    ``initial_associations``).  Components are combined linearly — the
    caller owns the normalization of the weights.
    """
    if time_weight and measure_time is None:
        raise PruningError("time_weight requires measure_time")
    if network_weight and measure_network is None:
        raise PruningError("network_weight requires measure_network")
    if memory_weight and initial_associations is None:
        raise PruningError("memory_weight requires initial_associations")

    def cost(pruned: Dict[int, Subscription], _count: int) -> float:
        value = 0.0
        if time_weight and measure_time is not None:
            value += time_weight * measure_time(pruned)
        if network_weight and measure_network is not None:
            value += network_weight * measure_network(pruned)
        if memory_weight and initial_associations is not None:
            associations = sum(s.leaf_count for s in pruned.values())
            value += memory_weight * (associations / initial_associations)
        return value

    return cost
