"""The three dimension heuristics and their priority orders (Sect. 3).

For a candidate pruning of subscription ``s_x`` into ``s_y``:

* **network** (Sect. 3.1): ``Δ≈sel(s_x, s_y)`` — the maximal componentwise
  increase of the (min, avg, max) selectivity estimate, with ``s_x`` the
  *originally registered* subscription so the accumulated degradation of
  repeated prunings is always accounted for.  Smaller is better.
* **memory** (Sect. 3.2): ``Δ≈mem(s_x, s_y) = mem(s_x) − mem(s_y)`` with
  ``s_x`` the tree *immediately before* this pruning, quantifying the
  direct per-step reduction.  Larger is better.
* **throughput** (Sect. 3.3): ``Δ≈eff(s_x, s_y) = pmin(s_y) − pmin(s_x)``
  with ``s_x`` again the original subscription.  Pruning only removes
  predicates, so ``Δ≈eff ≤ 0``; larger (closer to zero) is better because a
  higher remaining ``pmin`` means the counting engine evaluates the pruned
  subscription less often.

Ranking (Sect. 3.4): each dimension sorts by its own heuristic first and
breaks ties with the other two, in a fixed order per dimension:

* network:    (Δ≈sel, Δ≈eff, Δ≈mem)
* memory:     (Δ≈mem, Δ≈sel, Δ≈eff)
* throughput: (Δ≈eff, Δ≈sel, Δ≈mem)

:func:`PruningHeuristics.key` orients every component so that *smaller is
better*, ready for a min-heap: Δ≈sel ascending, Δ≈eff and Δ≈mem negated.
"""

from __future__ import annotations

import enum
from typing import Dict, NamedTuple, Tuple

from repro.errors import PruningError
from repro.selectivity.estimator import SelectivityEstimate, SelectivityEstimator
from repro.subscriptions.metrics import memory_bytes, pmin
from repro.subscriptions.nodes import Node
from repro.core.ops import PruningOp, PruningState, apply_pruning


class Dimension(enum.Enum):
    """The three dimensions of optimization (paper Sect. 1)."""

    NETWORK = "sel"
    MEMORY = "mem"
    THROUGHPUT = "eff"


class HeuristicVector(NamedTuple):
    """Raw heuristic values of one candidate pruning."""

    sel: float  #: Δ≈sel — estimated selectivity degradation (≥ 0, smaller better)
    eff: int    #: Δ≈eff — pmin(pruned) − pmin(original) (≤ 0, larger better)
    mem: int    #: Δ≈mem — bytes saved by this step (≥ 0, larger better)


#: Per-dimension lexicographic tie-breaking orders (paper Sect. 3.4).
DIMENSION_ORDERS: Dict[Dimension, Tuple[str, str, str]] = {
    Dimension.NETWORK: ("sel", "eff", "mem"),
    Dimension.MEMORY: ("mem", "sel", "eff"),
    Dimension.THROUGHPUT: ("eff", "sel", "mem"),
}


def _oriented(component: str, vector: HeuristicVector) -> float:
    """Map a component to a value where smaller always means better."""
    if component == "sel":
        return vector.sel
    if component == "eff":
        return -float(vector.eff)
    if component == "mem":
        return -float(vector.mem)
    raise PruningError("unknown heuristic component %r" % component)


class PruningHeuristics:
    """Computes heuristic vectors and priority keys for candidate prunings.

    Parameters
    ----------
    estimator:
        Selectivity estimator backed by workload statistics.
    dimension:
        The primary dimension of optimization.
    """

    def __init__(self, estimator: SelectivityEstimator, dimension: Dimension) -> None:
        if dimension not in DIMENSION_ORDERS:
            raise PruningError("unknown dimension %r" % (dimension,))
        self.estimator = estimator
        self.dimension = dimension
        self.order = DIMENSION_ORDERS[dimension]

    # -- per-subscription cached reference points ---------------------------

    def reference(self, state: PruningState) -> Tuple[SelectivityEstimate, int]:
        """The original tree's (selectivity estimate, pmin) reference."""
        return self.reference_for_tree(state.original)

    def reference_for_tree(self, tree: Node) -> Tuple[SelectivityEstimate, int]:
        """(selectivity estimate, pmin) of an arbitrary reference tree."""
        return self.estimator.estimate(tree), pmin(tree)

    # -- vector computation ---------------------------------------------------

    def vector(
        self,
        state: PruningState,
        op: PruningOp,
        original_estimate: SelectivityEstimate,
        original_pmin: int,
    ) -> Tuple[HeuristicVector, Node]:
        """Heuristic values of applying ``op`` to ``state``'s current tree.

        Returns the vector together with the pruned tree so the caller
        never has to re-apply the operation.
        """
        current = state.current
        pruned = apply_pruning(current, op)
        pruned_estimate = self.estimator.estimate(pruned)
        delta_sel = max(
            pruned_estimate.min - original_estimate.min,
            pruned_estimate.avg - original_estimate.avg,
            pruned_estimate.max - original_estimate.max,
        )
        delta_eff = pmin(pruned) - original_pmin
        delta_mem = memory_bytes(current) - memory_bytes(pruned)
        return HeuristicVector(delta_sel, delta_eff, delta_mem), pruned

    def key(self, vector: HeuristicVector) -> Tuple[float, float, float]:
        """Min-heap priority key under this dimension's tie-break order."""
        first, second, third = self.order
        return (
            _oriented(first, vector),
            _oriented(second, vector),
            _oriented(third, vector),
        )
