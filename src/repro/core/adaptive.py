"""Adaptive dimension switching driven by system conditions.

The paper's introduction sketches the operational use of dimension-based
pruning: "if the number of subscriptions increases strongly, we use
memory-based pruning; bandwidth limitations suggest to apply network-based
pruning".  :class:`AdaptivePruner` packages that policy: it watches
reported :class:`SystemConditions`, picks the dimension whose resource is
under the most pressure, and prunes in batches with the shared
:class:`~repro.core.engine.PruningEngine` (whose original-tree reference
points survive dimension switches).
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.engine import PruningEngine, PruningRecord
from repro.core.heuristics import Dimension, HeuristicVector
from repro.errors import PruningError
from repro.selectivity.estimator import SelectivityEstimator
from repro.subscriptions.subscription import Subscription


class SystemConditions(NamedTuple):
    """A snapshot of the resources dimension selection trades off.

    Attributes
    ----------
    memory_used_bytes / memory_budget_bytes:
        Routing-table storage pressure; ratios near 1 call for
        memory-based pruning.
    bandwidth_utilization:
        Fraction of link capacity in use; high values call for
        network-based pruning (it adds the fewest forwarded events).
    filter_saturation:
        Fraction of broker CPU spent filtering; high values call for
        throughput-based pruning.
    """

    memory_used_bytes: int
    memory_budget_bytes: int
    bandwidth_utilization: float
    filter_saturation: float

    @property
    def memory_pressure(self) -> float:
        """Used/budget ratio (0 when no budget is configured)."""
        if self.memory_budget_bytes <= 0:
            return 0.0
        return self.memory_used_bytes / self.memory_budget_bytes


class AdaptivePruner:
    """Batch pruner that re-selects its dimension from observed pressure.

    Parameters
    ----------
    subscriptions, estimator:
        As for :class:`~repro.core.engine.PruningEngine`.
    memory_threshold, bandwidth_threshold, filter_threshold:
        Pressure levels above which the corresponding dimension is
        considered stressed.  When several are stressed, the most stressed
        one (largest margin over its threshold) wins; when none is, the
        paper's general-purpose recommendation — network-based pruning —
        applies.
    """

    def __init__(
        self,
        subscriptions: Sequence[Subscription],
        estimator: SelectivityEstimator,
        memory_threshold: float = 0.9,
        bandwidth_threshold: float = 0.8,
        filter_threshold: float = 0.8,
        initial_dimension: Dimension = Dimension.NETWORK,
    ) -> None:
        for name, threshold in (
            ("memory_threshold", memory_threshold),
            ("bandwidth_threshold", bandwidth_threshold),
            ("filter_threshold", filter_threshold),
        ):
            if not 0.0 < threshold <= 1.0:
                raise PruningError("%s must be within (0, 1]" % name)
        self.engine = PruningEngine(subscriptions, estimator, initial_dimension)
        self.memory_threshold = memory_threshold
        self.bandwidth_threshold = bandwidth_threshold
        self.filter_threshold = filter_threshold
        #: One ``(dimension, prunings executed)`` entry per batch that
        #: actually executed at least one pruning.  An exhausted engine
        #: (or a batch stopped before its first step) records nothing —
        #: the history describes *activity*, not attempts.
        self.dimension_history: List[Tuple[Dimension, int]] = []

    def select_dimension(self, conditions: SystemConditions) -> Dimension:
        """The dimension this policy picks under ``conditions``."""
        margins = [
            (conditions.memory_pressure - self.memory_threshold, Dimension.MEMORY),
            (
                conditions.bandwidth_utilization - self.bandwidth_threshold,
                Dimension.NETWORK,
            ),
            (
                conditions.filter_saturation - self.filter_threshold,
                Dimension.THROUGHPUT,
            ),
        ]
        stressed = [entry for entry in margins if entry[0] >= 0.0]
        if not stressed:
            return Dimension.NETWORK
        stressed.sort(key=lambda entry: (-entry[0], entry[1].value))
        return stressed[0][1]

    def optimize(
        self,
        conditions: SystemConditions,
        batch_size: int,
        stop_degradation: Optional[float] = None,
    ) -> List[PruningRecord]:
        """Prune one batch under the dimension chosen for ``conditions``.

        ``stop_degradation`` optionally bounds the per-step Δ≈sel, so even
        memory- or throughput-driven batches never queue an excessively
        unselective routing entry.
        """
        if batch_size <= 0:
            raise PruningError("batch_size must be positive")
        dimension = self.select_dimension(conditions)
        if dimension is not self.engine.dimension:
            self.engine.switch_dimension(dimension)
        stop_before: Optional[Callable[[HeuristicVector], bool]] = None
        if stop_degradation is not None:
            limit = stop_degradation
            stop_before = lambda vector: vector.sel > limit  # noqa: E731
        records = self.engine.run(max_steps=batch_size, stop_before=stop_before)
        # Record the batch only after it executed: an exhausted engine (or
        # a raising run) must not claim a pruning round it never performed.
        if records:
            self.dimension_history.append((dimension, len(records)))
        return records

    @property
    def current_dimension(self) -> Dimension:
        """The engine's active dimension."""
        return self.engine.dimension
