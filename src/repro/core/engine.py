"""The priority-queue pruning engine (paper Sect. 3.4).

The engine keeps, for every registered subscription, its single most
effective pruning option in a priority queue.  A pruning step pops the
globally best option, applies it, and re-inserts the pruned subscription's
next-best option.  Because subscriptions are optimized independently of
each other, executing one subscription's pruning never invalidates the
queued options of the others — the queue never goes stale.

Stopping rules mirror the paper: perform a fixed number of prunings, or
keep pruning until a degradation/improvement threshold is crossed.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.errors import PruningError
from repro.core.heuristics import Dimension, HeuristicVector, PruningHeuristics
from repro.core.ops import PruningOp, PruningState, enumerate_prunings
from repro.selectivity.estimator import SelectivityEstimate, SelectivityEstimator
from repro.subscriptions.metrics import count_leaves, memory_bytes, pmin
from repro.subscriptions.nodes import Node
from repro.subscriptions.subscription import Subscription
from repro.util.heap import StableHeap


class PruningRecord(NamedTuple):
    """One executed pruning, as recorded for replay and analysis."""

    sequence: int               #: 0-based global step index
    subscription_id: int        #: the pruned subscription
    op: PruningOp               #: the operation (relative to its tree at that time)
    vector: HeuristicVector     #: heuristic values that ranked this op
    leaf_count_after: int       #: predicate associations left in the tree
    pmin_after: int             #: pmin of the pruned tree
    size_bytes_after: int       #: mem≈ of the pruned tree


class _QueueEntry(NamedTuple):
    subscription_id: int
    op: PruningOp
    vector: HeuristicVector
    pruned: Node


class PruningEngine:
    """Dimension-based pruning over a set of subscriptions.

    Parameters
    ----------
    subscriptions:
        The routing entries to optimize (normalized subscriptions).
    estimator:
        Selectivity estimator backed by workload statistics.
    dimension:
        Primary dimension of optimization (default: network, the paper's
        overall winner).
    bottom_up_only:
        Restrict prunings to bottom-most candidates (Sect. 3.2).  Defaults
        to ``True`` exactly for memory-based pruning, as in the paper.
    reference_mode:
        What Δ≈sel/Δ≈eff compare against: ``"original"`` (the paper's
        choice, Sect. 3.1/3.3 — accumulated degradation counts) or
        ``"current"`` (per-step deltas, the alternative the paper argues
        against; kept for the ablation benchmarks).

    >>> from repro.selectivity import EventStatistics, SelectivityEstimator
    >>> from repro.subscriptions import P, And, Subscription
    >>> est = SelectivityEstimator(EventStatistics({}))
    >>> engine = PruningEngine(
    ...     [Subscription(1, And(P("a") == 1, P("b") == 2, P("c") == 3))],
    ...     est)
    >>> len(engine.run())  # two prunings until only one predicate remains
    2
    """

    def __init__(
        self,
        subscriptions: Iterable[Subscription],
        estimator: SelectivityEstimator,
        dimension: Dimension = Dimension.NETWORK,
        bottom_up_only: Optional[bool] = None,
        reference_mode: str = "original",
    ) -> None:
        if reference_mode not in ("original", "current"):
            raise PruningError("reference_mode must be 'original' or 'current'")
        self.heuristics = PruningHeuristics(estimator, dimension)
        self.dimension = dimension
        self.reference_mode = reference_mode
        if bottom_up_only is None:
            bottom_up_only = dimension is Dimension.MEMORY
        self.bottom_up_only = bottom_up_only
        self._states: Dict[int, PruningState] = {}
        self._references: Dict[int, Tuple[SelectivityEstimate, int]] = {}
        self._heap: StableHeap[_QueueEntry] = StableHeap()
        self.records: List[PruningRecord] = []
        for subscription in subscriptions:
            if subscription.id in self._states:
                raise PruningError(
                    "duplicate subscription id %d" % subscription.id
                )
            self._states[subscription.id] = PruningState(subscription)
        for sub_id in sorted(self._states):
            state = self._states[sub_id]
            self._references[sub_id] = self.heuristics.reference(state)
            self._push_best(sub_id)

    # -- queue maintenance ----------------------------------------------------

    def _push_best(self, sub_id: int) -> bool:
        """Queue the most effective pruning of one subscription, if any."""
        state = self._states[sub_id]
        ops = enumerate_prunings(state.current, self.bottom_up_only)
        if not ops:
            return False
        if self.reference_mode == "current" and state.history:
            original_estimate, original_pmin = self.heuristics.reference_for_tree(
                state.current
            )
        else:
            original_estimate, original_pmin = self._references[sub_id]
        best_key: Optional[Tuple[float, float, float]] = None
        best_entry: Optional[_QueueEntry] = None
        for op in ops:
            vector, pruned = self.heuristics.vector(
                state, op, original_estimate, original_pmin
            )
            key = self.heuristics.key(vector)
            if best_key is None or key < best_key:
                best_key = key
                best_entry = _QueueEntry(sub_id, op, vector, pruned)
        assert best_entry is not None
        self._heap.push(best_key, best_entry)
        return True

    def switch_dimension(
        self, dimension: Dimension, bottom_up_only: Optional[bool] = None
    ) -> None:
        """Change the dimension of optimization mid-run.

        The Δ≈sel/Δ≈eff reference points (original trees) are unaffected, so
        switching re-ranks the remaining options without losing the
        accumulated-degradation bookkeeping.  This is the mechanism behind
        the paper's "dynamically adjust our optimization based on current
        system parameters" (Sect. 1); see :mod:`repro.core.adaptive`.
        """
        self.heuristics = PruningHeuristics(self.heuristics.estimator, dimension)
        self.dimension = dimension
        if bottom_up_only is None:
            bottom_up_only = dimension is Dimension.MEMORY
        self.bottom_up_only = bottom_up_only
        self._rebuild_queue()

    def set_tiebreak_order(self, order: Tuple[str, str, str]) -> None:
        """Override the lexicographic tie-break order (ablation hook).

        The paper fixes one order per dimension (Sect. 3.4); this setter
        exists so the ablation benchmarks can compare against degenerate
        orders such as ``("sel", "sel", "sel")``.
        """
        for component in order:
            if component not in ("sel", "eff", "mem"):
                raise PruningError("unknown heuristic component %r" % (component,))
        self.heuristics.order = (order[0], order[1], order[2])
        self._rebuild_queue()

    def _rebuild_queue(self) -> None:
        self._heap.clear()
        for sub_id in sorted(self._states):
            self._push_best(sub_id)

    # -- stepping ---------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True when no subscription offers a further pruning."""
        return not self._heap

    def peek_key(self) -> Optional[Tuple[float, float, float]]:
        """Priority key of the next pruning, or ``None`` when exhausted."""
        key: Optional[Tuple[float, float, float]] = self._heap.peek_key()
        return key

    def peek_vector(self) -> Optional[HeuristicVector]:
        """Heuristic vector of the next pruning, or ``None`` when exhausted."""
        if not self._heap:
            return None
        _key, entry = self._heap.peek()
        return entry.vector

    def step(self) -> Optional[PruningRecord]:
        """Execute the globally most effective pruning.

        Returns the record of the executed pruning, or ``None`` when no
        valid pruning remains.
        """
        if not self._heap:
            return None
        _key, entry = self._heap.pop()
        state = self._states[entry.subscription_id]
        state.record(entry.op, entry.pruned)
        record = PruningRecord(
            sequence=len(self.records),
            subscription_id=entry.subscription_id,
            op=entry.op,
            vector=entry.vector,
            leaf_count_after=count_leaves(entry.pruned),
            pmin_after=pmin(entry.pruned),
            size_bytes_after=memory_bytes(entry.pruned),
        )
        self.records.append(record)
        self._push_best(entry.subscription_id)
        return record

    def run(
        self,
        max_steps: Optional[int] = None,
        stop_before: Optional[Callable[[HeuristicVector], bool]] = None,
    ) -> List[PruningRecord]:
        """Perform prunings until exhaustion, a step budget, or a threshold.

        ``stop_before`` inspects the *next* pruning's heuristic vector and
        returns True to stop without executing it — the paper's "optimize
        until a given degradation/improvement is reached".
        Returns the records of this call's executed prunings.
        """
        executed: List[PruningRecord] = []
        while self._heap:
            if max_steps is not None and len(executed) >= max_steps:
                break
            if stop_before is not None:
                vector = self.peek_vector()
                if vector is not None and stop_before(vector):
                    break
            record = self.step()
            if record is None:
                break
            executed.append(record)
        return executed

    # -- convenience stopping rules ----------------------------------------------

    def prune_until_selectivity(self, max_degradation: float) -> List[PruningRecord]:
        """Prune while the next step's Δ≈sel stays within ``max_degradation``."""
        return self.run(stop_before=lambda vector: vector.sel > max_degradation)

    def prune_until_memory_saved(self, target_bytes: int) -> List[PruningRecord]:
        """Prune until at least ``target_bytes`` of tree storage was freed."""
        saved = sum(record.vector.mem for record in self.records)
        executed: List[PruningRecord] = []
        while saved < target_bytes:
            record = self.step()
            if record is None:
                break
            executed.append(record)
            saved += record.vector.mem
        return executed

    # -- results -----------------------------------------------------------------

    def state(self, sub_id: int) -> PruningState:
        """The pruning state of one subscription."""
        try:
            return self._states[sub_id]
        except KeyError:
            raise PruningError("unknown subscription id %d" % sub_id)

    def pruned_subscription(self, sub_id: int) -> Subscription:
        """The subscription carrying its current (possibly pruned) tree."""
        return self.state(sub_id).as_subscription()

    def pruned_subscriptions(self) -> Dict[int, Subscription]:
        """All subscriptions with their current trees."""
        return {
            sub_id: state.as_subscription()
            for sub_id, state in self._states.items()
        }

    @property
    def total_prunings(self) -> int:
        """Number of prunings executed so far."""
        return len(self.records)

    @property
    def association_count(self) -> int:
        """Current total number of predicate/subscription associations."""
        return sum(count_leaves(state.current) for state in self._states.values())

    @property
    def total_size_bytes(self) -> int:
        """Current total mem≈ of all trees."""
        return sum(memory_bytes(state.current) for state in self._states.values())
