"""Recorded pruning schedules and prefix replay.

The paper's figures put the *proportional number of performed prunings* on
the x-axis: each heuristic runs until no valid pruning remains, and every
measurement point corresponds to a prefix of that run.  A
:class:`PruningSchedule` captures the full run once; prefixes are then
replayed cheaply (pruning decisions depend only on subscription state and
static workload statistics, never on measurements, so replay is exact).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PruningError
from repro.core.engine import PruningEngine, PruningRecord
from repro.core.heuristics import Dimension
from repro.core.ops import PruningState
from repro.selectivity.estimator import SelectivityEstimator
from repro.subscriptions.subscription import Subscription


class PruningSchedule:
    """A complete pruning run of one dimension over one subscription set."""

    def __init__(
        self,
        dimension: Dimension,
        subscriptions: Sequence[Subscription],
        records: List[PruningRecord],
        bottom_up_only: bool,
    ) -> None:
        self.dimension = dimension
        self.subscriptions = list(subscriptions)
        self.records = records
        self.bottom_up_only = bottom_up_only

    @classmethod
    def build(
        cls,
        subscriptions: Sequence[Subscription],
        estimator: SelectivityEstimator,
        dimension: Dimension,
        bottom_up_only: Optional[bool] = None,
    ) -> "PruningSchedule":
        """Run ``dimension``-based pruning to exhaustion and record it."""
        engine = PruningEngine(
            subscriptions, estimator, dimension, bottom_up_only=bottom_up_only
        )
        engine.run()
        return cls(dimension, subscriptions, engine.records, engine.bottom_up_only)

    @property
    def total(self) -> int:
        """Total number of possible prunings under this heuristic."""
        return len(self.records)

    def prefix_count(self, proportion: float) -> int:
        """Number of prunings corresponding to an x-axis proportion.

        Midpoints round half *up* (explicitly — Python's built-in
        ``round`` applies banker's rounding, under which ``round(0.5)``
        is 0 and odd-total midpoints bias low), so the mapping is
        monotone in ``proportion`` and hits ``0``/``total`` exactly at
        the endpoints.
        """
        if not 0.0 <= proportion <= 1.0:
            raise PruningError("proportion must be within [0, 1]")
        return min(self.total, math.floor(proportion * self.total + 0.5))

    def replay(self, count: int) -> Dict[int, Subscription]:
        """Subscriptions after the first ``count`` prunings of the run.

        ``count`` must lie within ``[0, total]`` — the same contract
        :meth:`sweep` enforces.  (Out-of-range counts used to slip
        through Python slicing silently: a negative count returned a
        nonsense ``records[:-n]`` prefix and an overlarge one clamped.)
        """
        if not 0 <= count <= self.total:
            raise PruningError(
                "replay count %d outside [0, %d]" % (count, self.total)
            )
        states = self._fresh_states()
        self._apply(states, self.records[:count])
        return {
            sub_id: state.as_subscription() for sub_id, state in states.items()
        }

    def sweep(
        self, counts: Iterable[int]
    ) -> Iterator[Tuple[int, Dict[int, Subscription]]]:
        """Yield ``(count, pruned subscriptions)`` at increasing prefixes.

        Counts must be non-decreasing; the replay state advances
        incrementally, so a whole sweep costs one full replay.
        """
        states = self._fresh_states()
        position = 0
        for count in counts:
            if count < position:
                raise PruningError("sweep counts must be non-decreasing")
            if count > self.total:
                raise PruningError(
                    "count %d exceeds schedule total %d" % (count, self.total)
                )
            self._apply(states, self.records[position:count])
            position = count
            yield count, {
                sub_id: state.as_subscription() for sub_id, state in states.items()
            }

    def _fresh_states(self) -> Dict[int, PruningState]:
        return {
            subscription.id: PruningState(subscription)
            for subscription in self.subscriptions
        }

    @staticmethod
    def _apply(states: Dict[int, PruningState], records: Sequence[PruningRecord]) -> None:
        for record in records:
            states[record.subscription_id].apply(record.op)

    def proportions(self, points: int) -> List[float]:
        """An evenly spaced x-axis grid of ``points`` proportions in [0, 1]."""
        if points < 2:
            raise PruningError("need at least two grid points")
        return [index / (points - 1) for index in range(points)]


def replay_prefix(
    schedule: PruningSchedule, proportion: float
) -> Dict[int, Subscription]:
    """Subscriptions after ``proportion`` of the schedule's prunings."""
    return schedule.replay(schedule.prefix_count(proportion))
