"""Pruning operations on subscription trees.

Pruning generalizes a subscription: the pruned tree is fulfilled by a
superset of the events fulfilling the original (paper Sect. 2.2).  Under
negation normal form this has a crisp characterization:

* replacing any subtree with constant ``true`` and folding is the generic
  generalization step;
* replacing an OR-child with ``true`` collapses the entire OR (and cascades
  upward), so it is *the same operation* as pruning the nearest enclosing
  AND-child (or the root);
* therefore the distinct, non-degenerate pruning operations of a tree are
  exactly **remove one child of one AND node**.  Pruning at the root
  (subscription → ``true``) removes the subscription entirely and is
  excluded, matching the paper's convention that the x-axis ends where
  "any other pruning removes a complete subscription".

The optional *bottom-up restriction* (paper Sect. 3.2, introduced for
memory-based pruning) declares a pruning of node ``n`` valid only if no
valid pruning exists within ``n``'s subtree — i.e. the removed child must
not itself contain an AND node.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from repro.errors import PruningError
from repro.subscriptions.nodes import AndNode, Node, Path
from repro.subscriptions.normalize import fold_constants, is_normalized
from repro.subscriptions.subscription import Subscription


class PruningOp(NamedTuple):
    """One pruning: remove child ``child_index`` of the AND node at
    ``and_path`` (a tuple of child indexes from the root)."""

    and_path: Path
    child_index: int

    def describe(self, tree: Node) -> str:
        """Human-readable description against a concrete tree."""
        and_node = tree.node_at(self.and_path)
        child = and_node.children[self.child_index]
        return "prune %r at path %s[%d]" % (child, self.and_path, self.child_index)


def _contains_and(node: Node) -> bool:
    if isinstance(node, AndNode):
        return True
    return any(_contains_and(child) for child in node.children)


def enumerate_prunings(tree: Node, bottom_up_only: bool = False) -> List[PruningOp]:
    """All valid pruning operations of ``tree``, in deterministic order.

    ``tree`` must be normalized.  With ``bottom_up_only`` (Sect. 3.2), a
    child is removable only if it contains no AND node itself.
    """
    ops: List[PruningOp] = []
    for path, node in tree.iter_nodes():
        if not isinstance(node, AndNode):
            continue
        for index, child in enumerate(node.children):
            if bottom_up_only and _contains_and(child):
                continue
            ops.append(PruningOp(path, index))
    return ops


def is_prunable(tree: Node, bottom_up_only: bool = False) -> bool:
    """Whether ``tree`` offers at least one valid pruning.

    Note that under the bottom-up restriction this is equivalent to the
    unrestricted check: every AND node contains, somewhere below it, a
    bottom-most AND whose children are removable.
    """
    if bottom_up_only:
        return bool(enumerate_prunings(tree, bottom_up_only=True))
    return any(isinstance(node, AndNode) for _path, node in tree.iter_nodes())


def pruned_child(tree: Node, op: PruningOp) -> Node:
    """The subtree that ``op`` removes (for inspection and heuristics)."""
    and_node = tree.node_at(op.and_path)
    if not isinstance(and_node, AndNode):
        raise PruningError("pruning path does not address an AND node")
    children = and_node.children
    if not 0 <= op.child_index < len(children):
        raise PruningError("pruning child index out of range")
    return children[op.child_index]


def apply_pruning(tree: Node, op: PruningOp) -> Node:
    """Apply ``op`` to ``tree`` and return the folded, generalized tree.

    Equivalent to replacing the removed child with constant ``true`` and
    re-establishing the normalization invariants (without re-sorting, so
    sibling paths remain stable for replay).
    """
    and_node = tree.node_at(op.and_path)
    if not isinstance(and_node, AndNode):
        raise PruningError("pruning path does not address an AND node")
    children = and_node.children
    if not 0 <= op.child_index < len(children):
        raise PruningError("pruning child index out of range")
    remaining = children[: op.child_index] + children[op.child_index + 1 :]
    if len(remaining) == 1:
        replacement: Node = remaining[0]
    else:
        replacement = AndNode(remaining)
    # fold_constants also flattens a surviving OR child into an OR parent
    # (or AND into AND), restoring the normalization invariants.
    return fold_constants(tree.replace_at(op.and_path, replacement))


class PruningState:
    """Mutable pruning state of one subscription inside an engine.

    Tracks the *originally registered* tree (the Δ≈sel/Δ≈eff reference
    point, Sect. 3.1/3.3), the current pruned tree (the Δ≈mem reference,
    Sect. 3.2), and the history of applied operations (for replay).
    """

    __slots__ = ("subscription", "current", "history")

    def __init__(self, subscription: Subscription) -> None:
        if not is_normalized(subscription.tree):
            raise PruningError("PruningState requires a normalized subscription")
        self.subscription = subscription
        self.current: Node = subscription.tree
        self.history: List[PruningOp] = []

    @property
    def original(self) -> Node:
        """The originally registered (never pruned) tree."""
        return self.subscription.tree

    @property
    def pruning_count(self) -> int:
        """Number of prunings applied so far."""
        return len(self.history)

    def apply(self, op: PruningOp) -> Node:
        """Apply ``op`` to the current tree, record it, return the result."""
        self.current = apply_pruning(self.current, op)
        self.history.append(op)
        return self.current

    def record(self, op: PruningOp, pruned: Node) -> None:
        """Record an already-applied op (engines precompute pruned trees)."""
        self.current = pruned
        self.history.append(op)

    def as_subscription(self) -> Subscription:
        """The subscription carrying the current pruned tree."""
        if not self.history:
            return self.subscription
        return self.subscription.with_tree(self.current)
