"""Dimension-based subscription pruning — the paper's contribution.

* :mod:`repro.core.ops` — what a pruning *is*: removing one child of an
  AND node (equivalently, replacing a subtree with constant true under
  negation normal form), plus enumeration of all valid prunings of a tree.
* :mod:`repro.core.heuristics` — the three dimension heuristics Δ≈sel,
  Δ≈mem, Δ≈eff and their lexicographic tie-breaking orders (Sect. 3.1–3.4).
* :mod:`repro.core.engine` — the priority-queue pruning engine: always
  perform the globally most effective pruning, then re-insert the pruned
  subscription's next-best option (Sect. 3.4).
* :mod:`repro.core.planner` — recorded pruning schedules and prefix replay,
  the mechanism behind the paper's "proportional number of prunings" axes.
* :mod:`repro.core.adaptive` — dimension switching driven by observed
  system conditions (the introduction's "dynamically adjust our
  optimization" idea).
"""

from repro.core.adaptive import AdaptivePruner, SystemConditions
from repro.core.engine import PruningEngine, PruningRecord
from repro.core.heuristics import (
    DIMENSION_ORDERS,
    Dimension,
    HeuristicVector,
    PruningHeuristics,
)
from repro.core.ops import (
    PruningOp,
    PruningState,
    apply_pruning,
    enumerate_prunings,
    is_prunable,
)
from repro.core.optimum import OptimumResult, OptimumSearch, weighted_cost
from repro.core.planner import PruningSchedule, replay_prefix

__all__ = [
    "AdaptivePruner",
    "DIMENSION_ORDERS",
    "Dimension",
    "HeuristicVector",
    "OptimumResult",
    "OptimumSearch",
    "PruningEngine",
    "PruningHeuristics",
    "PruningOp",
    "PruningRecord",
    "PruningSchedule",
    "PruningState",
    "SystemConditions",
    "apply_pruning",
    "enumerate_prunings",
    "is_prunable",
    "replay_prefix",
    "weighted_cost",
]
