"""The online book-auction event schema.

Every event message describes one auction happening (a listing, a bid, or
a sale) through 12 attribute-value pairs.  Each attribute is backed by an
explicit distribution object, so the same table drives both event
generation and selectivity estimation.

The skews follow the paper's setting description: titles, authors, and
categories are Zipf-distributed (a few popular books draw most activity),
prices are truncated-lognormal, ratings skew high.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Union

import numpy as np

from repro.errors import WorkloadError
from repro.events import Event
from repro.selectivity.statistics import AttributeStatistics, EventStatistics
from repro.workloads.distributions import (
    Categorical,
    PiecewiseLinear,
    lognormal_cdf_table,
    zipf_weights,
)

Distribution = Union[Categorical, PiecewiseLinear]

#: Book store sections; cycled when a schema asks for more categories.
CATEGORY_NAMES = [
    "fiction", "mystery", "science-fiction", "fantasy", "romance",
    "history", "biography", "science", "philosophy", "poetry",
    "travel", "cooking", "art", "children", "reference",
    "business", "self-help", "religion", "comics", "drama",
    "technology", "nature", "sports", "music",
]

CONDITIONS = ["new", "like-new", "very-good", "good", "acceptable", "poor"]
CONDITION_WEIGHTS = [0.15, 0.20, 0.25, 0.20, 0.12, 0.08]

FORMATS = ["hardcover", "paperback", "audiobook", "ebook"]
FORMAT_WEIGHTS = [0.30, 0.45, 0.10, 0.15]

EVENT_TYPES = ["listed", "bid", "sold"]
EVENT_TYPE_WEIGHTS = [0.40, 0.50, 0.10]


class AttributeSpec(NamedTuple):
    """One schema attribute: its name and backing distribution."""

    name: str
    distribution: Distribution


class AuctionSchema:
    """Attribute distributions of the book-auction workload.

    Parameters shape the catalogue: how many distinct titles, authors and
    categories exist and how skewed the interest in them is.
    """

    def __init__(
        self,
        n_titles: int = 500,
        n_series: int = 40,
        n_authors: int = 200,
        n_categories: int = 20,
        title_zipf: float = 1.1,
        author_zipf: float = 1.0,
        category_zipf: float = 0.9,
    ) -> None:
        if min(n_titles, n_authors, n_categories) < 2:
            raise WorkloadError("schema needs at least 2 titles/authors/categories")
        if n_series < 1 or n_series > n_titles:
            raise WorkloadError("n_series must be within [1, n_titles]")
        self.titles = self._make_titles(n_titles, n_series)
        self.series_prefixes = ["series-%02d" % index for index in range(n_series)]
        self.authors = ["author-%03d" % index for index in range(n_authors)]
        self.categories = [
            CATEGORY_NAMES[index % len(CATEGORY_NAMES)]
            + ("" if index < len(CATEGORY_NAMES) else "-%d" % (index // len(CATEGORY_NAMES)))
            for index in range(n_categories)
        ]

        price_support, price_cdf = lognormal_cdf_table(
            median=12.0, sigma=0.9, lower=0.5, upper=500.0
        )
        years = list(range(1950, 2007))
        year_weights = [1.0 / (2007 - year) for year in years]
        bids = list(range(0, 31))
        bid_weights = [0.75 ** count for count in bids]

        self._specs: Dict[str, AttributeSpec] = {}
        for name, distribution in (
            ("title", Categorical(self.titles, zipf_weights(n_titles, title_zipf))),
            ("author", Categorical(self.authors, zipf_weights(n_authors, author_zipf))),
            (
                "category",
                Categorical(self.categories, zipf_weights(n_categories, category_zipf)),
            ),
            ("price", PiecewiseLinear(price_support, price_cdf)),
            (
                "seller_rating",
                PiecewiseLinear(
                    [0.0, 2.0, 3.0, 4.0, 4.5, 4.8, 5.0],
                    [0.0, 0.05, 0.15, 0.35, 0.60, 0.85, 1.0],
                ),
            ),
            ("condition", Categorical(CONDITIONS, CONDITION_WEIGHTS)),
            ("format", Categorical(FORMATS, FORMAT_WEIGHTS)),
            ("year", Categorical(years, year_weights)),
            ("bid_count", Categorical(bids, bid_weights)),
            (
                "ends_in_hours",
                PiecewiseLinear(
                    [0.0, 1.0, 6.0, 12.0, 24.0, 48.0, 96.0, 168.0],
                    [0.0, 0.05, 0.20, 0.35, 0.60, 0.80, 0.95, 1.0],
                ),
            ),
            (
                "shipping_cost",
                PiecewiseLinear(
                    [0.0, 2.0, 4.0, 6.0, 10.0, 20.0],
                    [0.0, 0.15, 0.45, 0.70, 0.92, 1.0],
                ),
            ),
            ("buy_now", Categorical([True, False], [0.25, 0.75])),
            ("event_type", Categorical(EVENT_TYPES, EVENT_TYPE_WEIGHTS)),
        ):
            self._specs[name] = AttributeSpec(name, distribution)

    @staticmethod
    def _make_titles(n_titles: int, n_series: int) -> List[str]:
        """Titles: ~30% belong to series (shared prefixes for prefix
        predicates), the rest are standalone books."""
        titles: List[str] = []
        series_count = max(1, int(n_titles * 0.3))
        for index in range(series_count):
            series = index % n_series
            volume = index // n_series + 1
            titles.append("series-%02d vol %d" % (series, volume))
        for index in range(n_titles - series_count):
            titles.append("book-%04d" % index)
        return titles

    @property
    def attribute_names(self) -> List[str]:
        """Names of all schema attributes, in declaration order."""
        return list(self._specs)

    def spec(self, name: str) -> AttributeSpec:
        """The spec of one attribute."""
        try:
            return self._specs[name]
        except KeyError:
            raise WorkloadError("unknown attribute %r" % name)

    def distribution(self, name: str) -> Distribution:
        """The backing distribution of one attribute."""
        return self.spec(name).distribution

    def sample_events(self, rng: np.random.Generator, count: int) -> List[Event]:
        """Draw ``count`` events; every attribute is present on every event."""
        if count < 0:
            raise WorkloadError("count must be non-negative")
        columns: Dict[str, List] = {}
        for name, spec in self._specs.items():
            distribution = spec.distribution
            if isinstance(distribution, Categorical):
                columns[name] = distribution.sample(rng, count)
            else:
                columns[name] = [float(v) for v in distribution.sample(rng, count)]
        events = []
        names = list(self._specs)
        for row in range(count):
            events.append(Event({name: columns[name][row] for name in names}))
        return events

    def statistics(self) -> EventStatistics:
        """Exact selectivity statistics for this schema."""
        models: Dict[str, AttributeStatistics] = {
            name: spec.distribution.statistics() for name, spec in self._specs.items()
        }
        return EventStatistics(models)
