"""The auction workload: events plus three subscription classes.

The paper registers subscriptions that "conform to three classes typical
for online book auctions" (its refs [3], [4]).  We synthesize them as:

* **specific-item** — a collector watches one exact book: a flat
  conjunction on title (occasionally a series prefix) with a price cap and
  optional condition/format constraints.  2–5 predicates.
* **category-interest** — a reader watches a store section: category
  equality (sometimes a small disjunction of sections), a price band, a
  minimum seller rating, plus optional condition/format/year constraints.
  4–9 predicates.
* **collector** — a Boolean power-user: a disjunction of 2–4 alternative
  item clauses (author- or title-anchored conjunctions) under global
  constraints, including negated conditions.  7–18 predicates.

All random choices go through one seeded generator per concern, so a
config reproduces its workload bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.events import EventBatch
from repro.selectivity.estimator import SelectivityEstimator
from repro.selectivity.statistics import EventStatistics
from repro.subscriptions.builder import And, Not, Or, P
from repro.subscriptions.nodes import Node
from repro.subscriptions.subscription import Subscription
from repro.util.rng import make_rng
from repro.workloads.schema import CONDITIONS, FORMATS, AuctionSchema


class SubscriptionClassMix(NamedTuple):
    """Relative frequencies of the three subscription classes."""

    specific_item: float = 0.35
    category_interest: float = 0.40
    collector: float = 0.25

    def normalized(self) -> "SubscriptionClassMix":
        total = self.specific_item + self.category_interest + self.collector
        if total <= 0:
            raise WorkloadError("class mix must have positive total weight")
        return SubscriptionClassMix(
            self.specific_item / total,
            self.category_interest / total,
            self.collector / total,
        )


@dataclass
class AuctionWorkloadConfig:
    """Configuration of one reproducible auction workload."""

    seed: int = 42
    n_titles: int = 2000
    n_series: int = 60
    n_authors: int = 600
    n_categories: int = 24
    title_zipf: float = 0.8
    author_zipf: float = 0.8
    category_zipf: float = 0.6
    class_mix: SubscriptionClassMix = field(default_factory=SubscriptionClassMix)

    def build_schema(self) -> AuctionSchema:
        """The schema implied by this config."""
        return AuctionSchema(
            n_titles=self.n_titles,
            n_series=self.n_series,
            n_authors=self.n_authors,
            n_categories=self.n_categories,
            title_zipf=self.title_zipf,
            author_zipf=self.author_zipf,
            category_zipf=self.category_zipf,
        )


class AuctionWorkload:
    """Generates events and subscriptions for the auction scenario.

    >>> workload = AuctionWorkload(AuctionWorkloadConfig(seed=7))
    >>> len(workload.generate_events(10))
    10
    >>> subs = workload.generate_subscriptions(5)
    >>> [type(s).__name__ for s in subs]
    ['Subscription', 'Subscription', 'Subscription', 'Subscription', 'Subscription']
    """

    def __init__(self, config: Optional[AuctionWorkloadConfig] = None) -> None:
        self.config = config or AuctionWorkloadConfig()
        self.schema = self.config.build_schema()
        self._mix = self.config.class_mix.normalized()

    # -- events ---------------------------------------------------------------

    def generate_events(self, count: int, stream: int = 0) -> EventBatch:
        """Generate ``count`` events (``stream`` names independent batches)."""
        rng = make_rng(self.config.seed, "events", stream)
        events = self.schema.sample_events(rng, count)
        return EventBatch(events, label="auction-events-%d" % stream)

    def statistics(self) -> EventStatistics:
        """Exact analytic statistics of the event distributions."""
        return self.schema.statistics()

    def estimator(self) -> SelectivityEstimator:
        """A selectivity estimator backed by the analytic statistics."""
        return SelectivityEstimator(self.statistics())

    # -- subscriptions -----------------------------------------------------------

    def generate_subscriptions(
        self,
        count: int,
        id_start: int = 0,
        owners: Optional[Sequence[str]] = None,
    ) -> List[Subscription]:
        """Generate ``count`` subscriptions with ids from ``id_start``.

        ``owners``, when given, is cycled to assign client names.
        """
        rng = make_rng(self.config.seed, "subscriptions", id_start)
        mix = self._mix
        thresholds = (
            mix.specific_item,
            mix.specific_item + mix.category_interest,
        )
        subscriptions = []
        for offset in range(count):
            roll = rng.random()
            if roll < thresholds[0]:
                tree = self._specific_item(rng)
            elif roll < thresholds[1]:
                tree = self._category_interest(rng)
            else:
                tree = self._collector(rng)
            owner = owners[offset % len(owners)] if owners else None
            subscriptions.append(Subscription(id_start + offset, tree, owner=owner))
        return subscriptions

    # -- class generators ----------------------------------------------------------

    def _price_cap(self, rng: np.random.Generator, low: float, high: float) -> float:
        """A price constant at a uniformly drawn distribution quantile."""
        return self.schema.distribution("price").quantile(rng.uniform(low, high))

    def _specific_item(self, rng: np.random.Generator) -> Node:
        """Class 1: watch one exact book (or one series)."""
        parts: List[Node] = []
        if rng.random() < 0.2:
            prefix = self.schema.series_prefixes[
                int(rng.integers(len(self.schema.series_prefixes)))
            ]
            parts.append(P("title").prefix(prefix))
        else:
            title = self.schema.titles[
                int(self._zipf_index(rng, len(self.schema.titles), 0.8))
            ]
            parts.append(P("title") == title)
        parts.append(P("price") <= self._price_cap(rng, 0.3, 0.9))
        if rng.random() < 0.5:
            cutoff = int(rng.integers(2, 5))
            parts.append(P("condition").in_(CONDITIONS[:cutoff]))
        if rng.random() < 0.3:
            parts.append(P("format") == FORMATS[int(rng.integers(len(FORMATS)))])
        if rng.random() < 0.25:
            parts.append(P("buy_now") == True)  # noqa: E712 (builder DSL)
        return And(*parts)

    def _category_interest(self, rng: np.random.Generator) -> Node:
        """Class 2: watch a store section within a price band."""
        categories = self.schema.categories
        parts: List[Node] = []
        if rng.random() < 0.4 and len(categories) >= 3:
            picked = rng.choice(len(categories), size=int(rng.integers(2, 4)),
                                replace=False)
            parts.append(Or(*[P("category") == categories[int(i)] for i in picked]))
        else:
            parts.append(
                P("category")
                == categories[int(self._zipf_index(rng, len(categories), 0.7))]
            )
        # A narrow price band: subscribers watch a specific budget window.
        band_start = rng.uniform(0.05, 0.72)
        band_width = rng.uniform(0.08, 0.25)
        low = self.schema.distribution("price").quantile(band_start)
        high = self.schema.distribution("price").quantile(
            min(0.97, band_start + band_width)
        )
        if high <= low:
            high = low + 2.0
        parts.append(P("price") >= low)
        parts.append(P("price") <= high)
        rating = self.schema.distribution("seller_rating").quantile(
            rng.uniform(0.45, 0.9)
        )
        parts.append(P("seller_rating") >= rating)
        if rng.random() < 0.5:
            parts.append(Not(P("condition") == "poor"))
        if rng.random() < 0.4:
            parts.append(P("format") == FORMATS[int(rng.integers(len(FORMATS)))])
        if rng.random() < 0.3:
            parts.append(P("year") >= int(rng.integers(1970, 2004)))
        return And(*parts)

    def _collector(self, rng: np.random.Generator) -> Node:
        """Class 3: alternatives over several wanted items, with global
        constraints and negations."""
        clause_count = int(rng.integers(2, 5))
        clauses: List[Node] = []
        for _ in range(clause_count):
            clause: List[Node] = []
            if rng.random() < 0.5:
                author = self.schema.authors[
                    int(self._zipf_index(rng, len(self.schema.authors), 0.8))
                ]
                clause.append(P("author") == author)
            else:
                title = self.schema.titles[
                    int(self._zipf_index(rng, len(self.schema.titles), 0.8))
                ]
                clause.append(P("title") == title)
            clause.append(P("price") <= self._price_cap(rng, 0.3, 0.95))
            if rng.random() < 0.4:
                cutoff = int(rng.integers(2, 5))
                clause.append(P("condition").in_(CONDITIONS[:cutoff]))
            if rng.random() < 0.2:
                clause.append(
                    P("seller_rating")
                    >= self.schema.distribution("seller_rating").quantile(
                        rng.uniform(0.2, 0.7)
                    )
                )
            clauses.append(And(*clause))
        parts: List[Node] = [Or(*clauses)]
        if rng.random() < 0.6:
            parts.append(Not(P("condition") == "poor"))
        if rng.random() < 0.4:
            parts.append(
                P("shipping_cost")
                <= self.schema.distribution("shipping_cost").quantile(
                    rng.uniform(0.4, 0.95)
                )
            )
        if rng.random() < 0.3:
            parts.append(P("event_type").in_(["listed", "bid"]))
        return And(*parts)

    @staticmethod
    def _zipf_index(rng: np.random.Generator, count: int, exponent: float) -> int:
        """A Zipf-skewed index draw (subscribers also prefer popular items)."""
        ranks = np.arange(1, count + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        weights /= weights.sum()
        return int(rng.choice(count, p=weights))
