"""Seeded sampling primitives used by workload generators.

Two families cover every schema attribute:

* :class:`Categorical` — discrete values with explicit weights (Zipf for
  titles/authors/categories), convertible 1:1 into
  :class:`~repro.selectivity.statistics.CategoricalStatistics`;
* :class:`PiecewiseLinear` — numeric distributions defined by a CDF table
  and sampled by inverse transform, convertible 1:1 into
  :class:`~repro.selectivity.statistics.ContinuousStatistics`.

Because generation and estimation share the same tables, the selectivity
estimator's per-predicate probabilities are exact for generated workloads;
estimation error then comes only from predicate correlations — precisely
the error source the paper's (min, avg, max) estimate is designed around.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import WorkloadError
from repro.events import Value
from repro.selectivity.statistics import (
    CategoricalStatistics,
    ContinuousStatistics,
)


def zipf_weights(count: int, exponent: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights: w_i ∝ 1 / (i+1)^exponent.

    >>> zipf_weights(2, 1.0)
    array([0.66666667, 0.33333333])
    """
    if count <= 0:
        raise WorkloadError("zipf_weights needs a positive count")
    if exponent < 0:
        raise WorkloadError("zipf exponent must be non-negative")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class Categorical:
    """A weighted discrete distribution over arbitrary scalar values."""

    def __init__(self, values: Sequence[Value], weights: Sequence[float]) -> None:
        if len(values) != len(weights) or not values:
            raise WorkloadError("values and weights must align and be non-empty")
        weights_array = np.asarray(weights, dtype=np.float64)
        if np.any(weights_array < 0) or weights_array.sum() <= 0:
            raise WorkloadError("weights must be non-negative with positive sum")
        self.values: List[Value] = list(values)
        self.probabilities = weights_array / weights_array.sum()

    def sample(self, rng: np.random.Generator, size: int) -> List[Value]:
        """Draw ``size`` values."""
        indexes = rng.choice(len(self.values), size=size, p=self.probabilities)
        return [self.values[index] for index in indexes]

    def sample_one(self, rng: np.random.Generator) -> Value:
        """Draw a single value."""
        return self.values[int(rng.choice(len(self.values), p=self.probabilities))]

    def statistics(self, presence: float = 1.0) -> CategoricalStatistics:
        """The exactly matching selectivity statistics."""
        return CategoricalStatistics(
            dict(zip(self.values, self.probabilities)), presence=presence
        )

    def quantile_value(self, quantile: float) -> Value:
        """The value at a probability-mass quantile (by declared order)."""
        if not 0.0 <= quantile <= 1.0:
            raise WorkloadError("quantile must be within [0, 1]")
        cumulative = 0.0
        for value, probability in zip(self.values, self.probabilities):
            cumulative += probability
            if cumulative >= quantile:
                return value
        return self.values[-1]


class PiecewiseLinear:
    """A numeric distribution defined by CDF samples at support points.

    ``support`` is strictly increasing; ``cdf`` is non-decreasing from 0 to
    1.  Sampling uses the inverse transform, so the declared CDF is the
    true CDF of generated values.
    """

    def __init__(
        self,
        support: Sequence[float],
        cdf: Sequence[float],
        round_digits: Union[int, None] = 2,
    ) -> None:
        support_array = np.asarray(support, dtype=np.float64)
        cdf_array = np.asarray(cdf, dtype=np.float64)
        if support_array.ndim != 1 or support_array.shape != cdf_array.shape:
            raise WorkloadError("support and cdf must be 1-d and aligned")
        if len(support_array) < 2:
            raise WorkloadError("need at least two support points")
        if np.any(np.diff(support_array) <= 0):
            raise WorkloadError("support must be strictly increasing")
        if cdf_array[0] != 0.0 or abs(cdf_array[-1] - 1.0) > 1e-12:
            raise WorkloadError("cdf must start at 0 and end at 1")
        if np.any(np.diff(cdf_array) < 0):
            raise WorkloadError("cdf must be non-decreasing")
        self.support = support_array
        self.cdf = cdf_array
        self.round_digits = round_digits

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` values by inverse-CDF transform."""
        uniforms = rng.random(size)
        values = np.interp(uniforms, self.cdf, self.support)
        if self.round_digits is not None:
            values = np.round(values, self.round_digits)
        return values

    def quantile(self, probability: float) -> float:
        """The value below which ``probability`` of the mass lies."""
        if not 0.0 <= probability <= 1.0:
            raise WorkloadError("probability must be within [0, 1]")
        value = float(np.interp(probability, self.cdf, self.support))
        if self.round_digits is not None:
            value = round(value, self.round_digits)
        return value

    def statistics(self, presence: float = 1.0) -> ContinuousStatistics:
        """The exactly matching selectivity statistics.

        Rounding during sampling perturbs the CDF by at most half a
        rounding step — negligible against the supports used here.
        """
        return ContinuousStatistics(self.support, self.cdf, presence=presence)


def lognormal_cdf_table(
    median: float,
    sigma: float,
    lower: float,
    upper: float,
    points: int = 33,
) -> Tuple[np.ndarray, np.ndarray]:
    """A (support, cdf) table approximating a truncated lognormal.

    Auction prices are classically lognormal-ish: many cheap items, a long
    expensive tail.  The table form keeps generation and estimation exactly
    consistent (both interpolate the same curve).
    """
    if median <= 0 or sigma <= 0 or not 0 < lower < upper:
        raise WorkloadError("invalid lognormal parameters")
    mu = np.log(median)
    support = np.exp(np.linspace(np.log(lower), np.log(upper), points))
    z = (np.log(support) - mu) / sigma
    raw = 0.5 * (1.0 + _erf_vector(z / np.sqrt(2.0)))
    # Truncate and renormalize to [lower, upper].
    cdf = (raw - raw[0]) / (raw[-1] - raw[0])
    cdf[0] = 0.0
    cdf[-1] = 1.0
    return support, np.maximum.accumulate(cdf)


def _erf_vector(x: np.ndarray) -> np.ndarray:
    """Vectorized error function (Abramowitz–Stegun 7.1.26, |ε| < 1.5e-7)."""
    sign = np.sign(x)
    x = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * x)
    polynomial = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - polynomial * np.exp(-x * x))
