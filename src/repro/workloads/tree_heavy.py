"""The tree-heavy workload: deep OR-of-ANDs with high candidate survival.

The auction workload is counter-friendly: most of its subscriptions are
flat conjunctions the counting engine decides without ever evaluating a
tree.  This workload is the opposite extreme — every subscription is a
*general* Boolean tree (alternating OR-of-AND nesting).  An OR-of-ANDs
tree has a low ``pmin`` (one clause's worth of predicates), while its
leaves are moderately selective range predicates, so nearly **every**
subscription clears the ``pmin`` gate on nearly every event — candidate
survival ≈ 100% — and the engine's candidate fallback (compiled-tree
evaluation) dominates matching cost.  It exists to exercise and
benchmark exactly that fallback
(``benchmarks/test_tree_eval_micro.py``, the ``tree_eval`` entry of
``BENCH_matching.json``).

Events carry ``attribute_count`` numeric attributes uniform on [0, 1);
a leaf ``P(attr) <= c`` with ``c ≈ survival`` is therefore fulfilled
with probability ``≈ survival``, independently per attribute.  The
default ``survival`` leaves tree verdicts split roughly half/half,
which defeats short-circuit evaluation — the scalar evaluator's best
case — without thinning the candidate set.  All random choices go
through one seeded generator per concern, so a config reproduces its
workload bit-for-bit.

>>> workload = TreeHeavyWorkload(TreeHeavyConfig(seed=7))
>>> subs = workload.generate_subscriptions(3)
>>> [sub.id for sub in subs]
[0, 1, 2]
>>> len(workload.generate_events(5))
5
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.events import Event, EventBatch
from repro.subscriptions.builder import And, Or, P
from repro.subscriptions.nodes import Node
from repro.subscriptions.subscription import Subscription
from repro.util.rng import make_rng


@dataclass
class TreeHeavyConfig:
    """Configuration of one reproducible tree-heavy workload.

    ``depth`` counts OR-of-AND nesting levels: depth 1 is an OR of ANDs
    of leaves, depth 2 nests another OR-of-AND under every AND, and so
    on.  Leaves per subscription grow as ``(or_fanout * and_width) **
    depth``.
    """

    seed: int = 42
    attribute_count: int = 12
    or_fanout: int = 3
    and_width: int = 2
    depth: int = 2
    #: Per-leaf fulfillment probability.  ``pmin`` of an OR-of-ANDs is
    #: one clause deep, so candidates survive at almost any setting;
    #: this tunes how often the *tree verdict* comes out true.
    survival: float = 0.45
    #: Probability that an event carries each attribute.
    presence: float = 1.0

    def validate(self) -> None:
        if self.attribute_count < 1:
            raise WorkloadError("attribute_count must be >= 1")
        if self.or_fanout < 2 or self.and_width < 2:
            raise WorkloadError("or_fanout and and_width must be >= 2")
        if self.depth < 1:
            raise WorkloadError("depth must be >= 1")
        if not 0.0 < self.survival < 1.0:
            raise WorkloadError("survival must be in (0, 1)")
        if not 0.0 < self.presence <= 1.0:
            raise WorkloadError("presence must be in (0, 1]")


class TreeHeavyWorkload:
    """Generates events and general-tree subscriptions (see module doc)."""

    def __init__(self, config: Optional[TreeHeavyConfig] = None) -> None:
        self.config = config or TreeHeavyConfig()
        self.config.validate()
        self.attributes = [
            "t%02d" % index for index in range(self.config.attribute_count)
        ]

    # -- events ---------------------------------------------------------------

    def generate_events(self, count: int, stream: int = 0) -> EventBatch:
        """Generate ``count`` events (``stream`` names independent batches)."""
        config = self.config
        rng = make_rng(config.seed, "tree-heavy-events", stream)
        events = []
        for _ in range(count):
            payload = {}
            for attribute in self.attributes:
                if config.presence >= 1.0 or rng.random() < config.presence:
                    payload[attribute] = float(rng.random())
            events.append(Event(payload))
        return EventBatch(events, label="tree-heavy-events-%d" % stream)

    # -- subscriptions --------------------------------------------------------

    def generate_subscriptions(
        self, count: int, id_start: int = 0
    ) -> List[Subscription]:
        """Generate ``count`` general-tree subscriptions from ``id_start``."""
        rng = make_rng(self.config.seed, "tree-heavy-subscriptions", id_start)
        return [
            Subscription(id_start + offset, self._tree(rng, self.config.depth))
            for offset in range(count)
        ]

    def _leaf(self, rng: np.random.Generator) -> Node:
        """A wide-open range predicate fulfilled w.p. ``≈ survival``."""
        config = self.config
        attribute = self.attributes[int(rng.integers(len(self.attributes)))]
        threshold = float(
            np.clip(config.survival + rng.uniform(-0.05, 0.05), 0.01, 0.99)
        )
        if rng.random() < 0.5:
            return P(attribute) <= threshold
        return P(attribute) >= 1.0 - threshold

    def _tree(self, rng: np.random.Generator, depth: int) -> Node:
        """OR of ANDs, recursing under every AND until ``depth`` runs out."""
        config = self.config
        clauses = []
        for _ in range(config.or_fanout):
            parts = [
                self._tree(rng, depth - 1) if depth > 1 else self._leaf(rng)
                for _ in range(config.and_width)
            ]
            clauses.append(And(*parts))
        return Or(*clauses)
