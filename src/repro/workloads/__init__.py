"""Workload generation: the paper's online book-auction scenario.

The paper evaluates on an online-auction application: events follow the
characteristic distributions of online book auctions (its ref [3]) and
subscriptions conform to "three classes typical for online book auctions"
(its ref [4]).  Both references are departmental tech reports we do not
have, so this package synthesizes a faithful equivalent (documented in
DESIGN.md §4): skewed (Zipf) categorical attributes, piecewise-linear
numeric distributions sampled by inverse CDF (so the analytic selectivity
statistics are *exact*), and three parameterized subscription classes —
specific-item, category-interest, and collector subscriptions.

:mod:`repro.workloads.tree_heavy` complements the auction scenario with
a synthetic worst case for the counting engine's candidate fallback:
every subscription is a deep OR-of-ANDs general tree and nearly every
one survives the ``pmin`` gate, so matching cost concentrates in the
compiled-tree evaluation the batch path vectorizes.
"""

from repro.workloads.auction import (
    AuctionWorkload,
    AuctionWorkloadConfig,
    SubscriptionClassMix,
)
from repro.workloads.distributions import (
    Categorical,
    PiecewiseLinear,
    zipf_weights,
)
from repro.workloads.schema import AuctionSchema, AttributeSpec
from repro.workloads.tree_heavy import TreeHeavyConfig, TreeHeavyWorkload

__all__ = [
    "AttributeSpec",
    "AuctionSchema",
    "AuctionWorkload",
    "AuctionWorkloadConfig",
    "Categorical",
    "PiecewiseLinear",
    "SubscriptionClassMix",
    "TreeHeavyConfig",
    "TreeHeavyWorkload",
    "zipf_weights",
]
