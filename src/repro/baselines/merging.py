"""Greedy subscription merging for conjunctive subscriptions.

Merging replaces several similar subscriptions by one more general
*merger* covering all of them — trading routing-table size for extra
forwarded events, like pruning, but only where subscriptions overlap.
Finding optimal mergers is NP-hard (the paper cites Crespo et al.), so
practical systems merge greedily; this implementation does the same:

1. group conjunctions by their attribute signature;
2. within a group, repeatedly merge the pair whose merger has the lowest
   estimated selectivity (least added traffic);
3. stop when the table hits a target size or no merge stays within the
   per-merge selectivity budget.

The merger of two conjunctions keeps the attributes present in both, with
each attribute's predicate *widened* to imply both inputs; attributes
present in only one input are dropped (a generalization, exactly like a
pruning step).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import MatchingError
from repro.selectivity.estimator import SelectivityEstimator
from repro.subscriptions.builder import And
from repro.subscriptions.nodes import AndNode, Node, PredicateLeaf
from repro.subscriptions.normalize import normalize
from repro.subscriptions.predicates import Operator, Predicate
from repro.subscriptions.subscription import Subscription

_LOWER_OPS = (Operator.GE, Operator.GT)
_UPPER_OPS = (Operator.LE, Operator.LT)


def _conjunction_by_attribute(tree: Node) -> Optional[Dict[str, Predicate]]:
    """attribute → predicate map of a flat conjunction with at most one
    predicate per attribute; ``None`` when the tree does not qualify."""
    if isinstance(tree, PredicateLeaf):
        return {tree.predicate.attribute: tree.predicate}
    if not isinstance(tree, AndNode):
        return None
    result: Dict[str, Predicate] = {}
    for child in tree.children:
        if not isinstance(child, PredicateLeaf):
            return None
        predicate = child.predicate
        if predicate.attribute in result:
            return None
        result[predicate.attribute] = predicate
    return result


def _widen(left: Predicate, right: Predicate) -> Optional[Predicate]:
    """A predicate implied by both inputs, or ``None`` to drop the attribute."""
    if left == right:
        return left
    attribute = left.attribute
    ops = (left.operator, right.operator)
    values = (left.value, right.value)
    if all(op in (Operator.EQ, Operator.IN_SET) for op in ops):
        members = set()
        for op, value in zip(ops, values):
            if op is Operator.EQ:
                members.add(value)
            else:
                members.update(value)
        return Predicate(attribute, Operator.IN_SET, frozenset(members))
    if all(op in _UPPER_OPS for op in ops):
        # keep the looser upper bound; LE is looser than LT at equal values
        if values[0] == values[1]:
            return Predicate(attribute, Operator.LE, values[0])
        index = 0 if values[0] > values[1] else 1
        return Predicate(attribute, ops[index], values[index])
    if all(op in _LOWER_OPS for op in ops):
        if values[0] == values[1]:
            return Predicate(attribute, Operator.GE, values[0])
        index = 0 if values[0] < values[1] else 1
        return Predicate(attribute, ops[index], values[index])
    if all(op is Operator.PREFIX for op in ops):
        shorter, longer = sorted(values, key=len)
        if longer.startswith(shorter):
            return Predicate(attribute, Operator.PREFIX, shorter)
        return None
    return None


def merge_pair(left: Subscription, right: Subscription) -> Optional[Node]:
    """The widened merger tree of two conjunctive subscriptions.

    Returns ``None`` when either input is non-conjunctive or the merger
    would degenerate to constant true (no shared attribute survives).
    """
    left_map = _conjunction_by_attribute(left.tree)
    right_map = _conjunction_by_attribute(right.tree)
    if left_map is None or right_map is None:
        return None
    kept: List[Predicate] = []
    for attribute in sorted(set(left_map) & set(right_map)):
        widened = _widen(left_map[attribute], right_map[attribute])
        if widened is not None:
            kept.append(widened)
    if not kept:
        return None
    return normalize(And(*[PredicateLeaf(predicate) for predicate in kept]))


class GreedyMerger:
    """Greedy selectivity-bounded merging over a set of subscriptions.

    Parameters
    ----------
    estimator:
        Used to score mergers (lower estimated average selectivity first).
    max_merger_selectivity:
        Mergers whose estimated average selectivity exceeds this budget
        are not considered (bounds added traffic per merge).
    """

    def __init__(
        self,
        estimator: SelectivityEstimator,
        max_merger_selectivity: float = 0.25,
    ) -> None:
        if not 0.0 < max_merger_selectivity <= 1.0:
            raise MatchingError("max_merger_selectivity must be in (0, 1]")
        self.estimator = estimator
        self.max_merger_selectivity = max_merger_selectivity

    def merge(
        self, subscriptions: List[Subscription], target_count: int
    ) -> List[Subscription]:
        """Merge down toward ``target_count`` table entries.

        Returns the resulting table: mergers get fresh ids above the
        maximum input id; unmergeable subscriptions pass through.  The
        result always covers the input set (no lost events).
        """
        if target_count < 1:
            raise MatchingError("target_count must be positive")
        table: Dict[int, Subscription] = {sub.id: sub for sub in subscriptions}
        next_id = max(table, default=0) + 1

        groups: Dict[Tuple[str, ...], List[int]] = {}
        for sub in subscriptions:
            mapping = _conjunction_by_attribute(sub.tree)
            if mapping is not None:
                groups.setdefault(tuple(sorted(mapping)), []).append(sub.id)

        group_lists = sorted(
            (ids for ids in groups.values() if len(ids) >= 2),
            key=lambda ids: (-len(ids), ids[0]),
        )
        for ids in group_lists:
            pool = list(ids)
            while len(table) > target_count and len(pool) >= 2:
                best: Optional[Tuple[float, int, int, Node]] = None
                for i in range(len(pool)):
                    for j in range(i + 1, len(pool)):
                        merged = merge_pair(table[pool[i]], table[pool[j]])
                        if merged is None:
                            continue
                        selectivity = self.estimator.estimate(merged).avg
                        if selectivity > self.max_merger_selectivity:
                            continue
                        if best is None or selectivity < best[0]:
                            best = (selectivity, i, j, merged)
                if best is None:
                    break
                _selectivity, i, j, merged_tree = best
                merger = Subscription(next_id, merged_tree)
                next_id += 1
                for index in sorted((i, j), reverse=True):
                    del table[pool[index]]
                    del pool[index]
                table[merger.id] = merger
                pool.append(merger.id)
            if len(table) <= target_count:
                break
        return [table[sub_id] for sub_id in sorted(table)]
