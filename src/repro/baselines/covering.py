"""Subscription covering for conjunctive subscriptions.

A subscription ``g`` covers ``s`` when every event fulfilling ``s`` also
fulfils ``g``.  Routing tables then only need the *maximal* (uncovered)
subscriptions: forwarding for ``g`` implies forwarding for everything it
covers.  Covering is exact — unlike pruning it adds no false forwarding —
but it only helps when such subset relationships exist, and deciding it
for arbitrary Boolean expressions is intractable, which is why systems
(SIENA, REBECA, PADRES) restrict it to conjunctions.  This implementation
does the same and is the paper's §2.3 comparison point.

The predicate implication test is sound but deliberately incomplete
(unknown operator pairs report non-implication), which keeps covering
conservative: it may miss an optimization, never a delivery.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import MatchingError
from repro.events import Event
from repro.subscriptions.nodes import AndNode, Node, PredicateLeaf
from repro.subscriptions.predicates import Operator, Predicate
from repro.subscriptions.subscription import Subscription


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def predicate_implies(specific: Predicate, general: Predicate) -> bool:
    """Sound check that ``specific`` ⟹ ``general`` (same attribute).

    >>> from repro.subscriptions.predicates import Operator, Predicate
    >>> predicate_implies(Predicate("p", Operator.LE, 10),
    ...                   Predicate("p", Operator.LE, 20))
    True
    """
    if specific.attribute != general.attribute:
        return False
    if specific == general:
        return True
    s_op, g_op = specific.operator, general.operator
    s_val, g_val = specific.value, general.value

    if s_op is Operator.EQ:
        # A point value implies anything it satisfies.
        return general.test(s_val)
    if s_op is Operator.IN_SET:
        return all(general.test(member) for member in s_val)

    if s_op in (Operator.LE, Operator.LT) and g_op in (Operator.LE, Operator.LT):
        if not (_is_numeric(s_val) and _is_numeric(g_val)) and not (
            isinstance(s_val, str) and isinstance(g_val, str)
        ):
            return False
        if s_op is Operator.LE and g_op is Operator.LT:
            return s_val < g_val
        return s_val <= g_val
    if s_op in (Operator.GE, Operator.GT) and g_op in (Operator.GE, Operator.GT):
        if not (_is_numeric(s_val) and _is_numeric(g_val)) and not (
            isinstance(s_val, str) and isinstance(g_val, str)
        ):
            return False
        if s_op is Operator.GE and g_op is Operator.GT:
            return s_val > g_val
        return s_val >= g_val

    if s_op is Operator.NOT_IN_SET and g_op is Operator.NOT_IN_SET:
        return g_val <= s_val  # excluding more implies excluding less
    if s_op is Operator.NE and g_op is Operator.NE:
        return s_val == g_val
    if s_op is Operator.NOT_IN_SET and g_op is Operator.NE:
        return g_val in s_val

    if s_op is Operator.PREFIX and g_op is Operator.PREFIX:
        return isinstance(s_val, str) and s_val.startswith(g_val)
    if s_op is Operator.PREFIX and g_op is Operator.CONTAINS:
        return isinstance(s_val, str) and g_val in s_val
    if s_op is Operator.CONTAINS and g_op is Operator.CONTAINS:
        return isinstance(s_val, str) and g_val in s_val

    return False


def _conjunction_predicates(tree: Node) -> Optional[List[Predicate]]:
    """The predicate list of a flat conjunction (or single predicate);
    ``None`` for non-conjunctive trees."""
    if isinstance(tree, PredicateLeaf):
        return [tree.predicate]
    if isinstance(tree, AndNode) and all(
        isinstance(child, PredicateLeaf) for child in tree.children
    ):
        return [child.predicate for child in tree.children]
    return None


def covers(general: Subscription, specific: Subscription) -> bool:
    """Whether conjunctive ``general`` covers conjunctive ``specific``.

    Non-conjunctive inputs are never reported as covering/covered
    (conservative, like the systems this models).
    """
    general_predicates = _conjunction_predicates(general.tree)
    specific_predicates = _conjunction_predicates(specific.tree)
    if general_predicates is None or specific_predicates is None:
        return False
    by_attribute: Dict[str, List[Predicate]] = {}
    for predicate in specific_predicates:
        by_attribute.setdefault(predicate.attribute, []).append(predicate)
    for g_predicate in general_predicates:
        candidates = by_attribute.get(g_predicate.attribute, [])
        if not any(
            predicate_implies(s_predicate, g_predicate)
            for s_predicate in candidates
        ):
            return False
    return True


class CoveringTable:
    """A routing table that suppresses covered subscriptions.

    Only *maximal* subscriptions (not covered by any other registered one)
    are forwarded/matched; covered entries are remembered so removing a
    coverer re-activates them.
    """

    def __init__(self) -> None:
        self._subscriptions: Dict[int, Subscription] = {}
        self._active: Optional[Set[int]] = None

    def register(self, subscription: Subscription) -> None:
        """Add a subscription."""
        if subscription.id in self._subscriptions:
            raise MatchingError(
                "subscription id %d already registered" % subscription.id
            )
        self._subscriptions[subscription.id] = subscription
        self._active = None

    def unregister(self, subscription_id: int) -> None:
        """Remove a subscription (re-activating entries it covered)."""
        if subscription_id not in self._subscriptions:
            raise MatchingError("subscription id %d unknown" % subscription_id)
        del self._subscriptions[subscription_id]
        self._active = None

    def _activate(self) -> Set[int]:
        if self._active is not None:
            return self._active
        ids = sorted(self._subscriptions)
        active: Set[int] = set(ids)
        for covered_id in ids:
            covered = self._subscriptions[covered_id]
            for coverer_id in ids:
                if coverer_id == covered_id or coverer_id not in active:
                    continue
                if covers(self._subscriptions[coverer_id], covered):
                    active.discard(covered_id)
                    break
        self._active = active
        return active

    @property
    def forwarding_set(self) -> List[Subscription]:
        """The maximal subscriptions actually kept in the routing table."""
        active = self._activate()
        return [self._subscriptions[sub_id] for sub_id in sorted(active)]

    @property
    def suppressed_count(self) -> int:
        """How many registered subscriptions are covered by others."""
        return len(self._subscriptions) - len(self._activate())

    @property
    def association_count(self) -> int:
        """Predicate/subscription associations of the active table."""
        return sum(sub.leaf_count for sub in self.forwarding_set)

    def match(self, event: Event) -> bool:
        """Would this table forward ``event``? (any active entry matches)"""
        return any(sub.tree.evaluate(event) for sub in self.forwarding_set)
