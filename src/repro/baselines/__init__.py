"""Comparator routing optimizations from the paper's related work (§2.3).

Subscription *covering* and subscription *merging* are the two established
alternatives to pruning.  Both are restricted to conjunctive subscriptions
and rely on relationships between subscriptions — exactly the limitation
the paper contrasts pruning against.  They are implemented here as
baselines for the ablation benchmarks:

* :mod:`repro.baselines.covering` — suppress routing entries that are
  covered by a more general registered subscription (Siena/REBECA style);
* :mod:`repro.baselines.merging` — greedily replace groups of similar
  conjunctions by a widened merger (imperfect merging with a selectivity
  budget).
"""

from repro.baselines.combined import (
    CoveringWithPruning,
    PruneMergeResult,
    prune_to_merge,
)
from repro.baselines.covering import CoveringTable, covers, predicate_implies
from repro.baselines.merging import GreedyMerger, merge_pair

__all__ = [
    "CoveringTable",
    "CoveringWithPruning",
    "GreedyMerger",
    "PruneMergeResult",
    "covers",
    "merge_pair",
    "predicate_implies",
    "prune_to_merge",
]
