"""Combinations of pruning with the classical optimizations (Sect. 2.3).

The paper points out two bridges between pruning and the related work:

* "We can use pruning as an extension of covering" — covering first
  removes the entries that are subsumed exactly; pruning then generalizes
  the remaining maximal entries.  :class:`CoveringWithPruning` implements
  that pipeline.
* "We can use subscription pruning to solve the merging problem" (via the
  authors' TR [5]) — pruning drives subscriptions toward more general
  trees; whenever two routing entries become *identical*, they merge into
  one for free.  :func:`prune_to_merge` implements this pruning-based
  merging with a per-step selectivity budget.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.baselines.covering import CoveringTable
from repro.core.engine import PruningEngine
from repro.core.heuristics import Dimension
from repro.errors import PruningError
from repro.selectivity.estimator import SelectivityEstimator
from repro.subscriptions.nodes import Node
from repro.subscriptions.subscription import Subscription


class CoveringWithPruning:
    """Covering first, pruning on the surviving maximal subscriptions.

    Covering is free (no extra traffic) but only applies to exact subset
    relations between conjunctive subscriptions; pruning then takes the
    table the rest of the way to a target size, paying with generality.
    """

    def __init__(
        self,
        estimator: SelectivityEstimator,
        dimension: Dimension = Dimension.NETWORK,
    ) -> None:
        self.estimator = estimator
        self.dimension = dimension

    def optimize(
        self, subscriptions: List[Subscription], target_associations: int
    ) -> Tuple[List[Subscription], Dict[str, int]]:
        """Optimize down to ``target_associations`` table entries' leaves.

        Returns the optimized table and a step report:
        ``{"covered": suppressed_by_covering, "prunings": ops_executed}``.
        """
        if target_associations < 0:
            raise PruningError("target_associations must be non-negative")
        table = CoveringTable()
        for subscription in subscriptions:
            table.register(subscription)
        active = table.forwarding_set
        report = {"covered": table.suppressed_count, "prunings": 0}

        engine = PruningEngine(active, self.estimator, self.dimension)
        while engine.association_count > target_associations:
            record = engine.step()
            if record is None:
                break
            report["prunings"] += 1
        return list(engine.pruned_subscriptions().values()), report


class PruneMergeResult(NamedTuple):
    """Outcome of pruning-based merging."""

    table: List[Subscription]      #: merged routing entries (one per tree)
    groups: Dict[Node, List[int]]  #: pruned tree → original subscription ids
    prunings: int                  #: pruning operations executed


def prune_to_merge(
    subscriptions: List[Subscription],
    estimator: SelectivityEstimator,
    max_step_degradation: float = 0.05,
    dimension: Dimension = Dimension.NETWORK,
) -> PruneMergeResult:
    """Merge subscriptions by pruning them toward common generalizations.

    Prunes with the given dimension while every step's Δ≈sel stays within
    ``max_step_degradation``, then collapses identical trees into a single
    routing entry each.  The result covers the input set: every original
    subscription's tree was only generalized, and its group's
    representative *is* its pruned tree.
    """
    if not 0.0 <= max_step_degradation <= 1.0:
        raise PruningError("max_step_degradation must be within [0, 1]")
    engine = PruningEngine(subscriptions, estimator, dimension)
    executed = engine.run(
        stop_before=lambda vector: vector.sel > max_step_degradation
    )
    groups: Dict[Node, List[int]] = {}
    for sub_id, pruned in sorted(engine.pruned_subscriptions().items()):
        groups.setdefault(pruned.tree, []).append(sub_id)
    table = [
        Subscription(min(ids), tree)
        for tree, ids in sorted(groups.items(), key=lambda item: min(item[1]))
    ]
    return PruneMergeResult(table=table, groups=groups, prunings=len(executed))
