"""A single publish/subscribe broker.

Each broker owns one routing table: entries mapping a subscription id to
the *interface* the subscription arrived from — either a local client or a
neighbor broker.  Matching an event against the table (with the counting
engine) yields the interfaces the event must be delivered or forwarded to.

Pruning only ever touches entries whose interface is a neighbor broker
(non-local clients, paper Sect. 2.2): the entry's tree is replaced with a
generalized version while the original is retained for reference, so the
broker can report both exact and pruned table sizes.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Union

from repro.errors import RoutingError
from repro.events import Event, EventBatch
from repro.matching.counting import CountingMatcher
from repro.matching.interfaces import Matcher
from repro.matching.sharded import ExecutorSpec, ShardedMatcher
from repro.subscriptions.nodes import Node
from repro.subscriptions.subscription import Subscription


class Interface(NamedTuple):
    """Where a routing entry came from (and where matches are sent to)."""

    kind: str  #: ``"client"`` or ``"broker"``
    name: str  #: client name or neighbor broker id

    @classmethod
    def client(cls, name: str) -> "Interface":
        return cls("client", name)

    @classmethod
    def broker(cls, broker_id: str) -> "Interface":
        return cls("broker", broker_id)

    @property
    def is_client(self) -> bool:
        return self.kind == "client"


class RoutingEntry:
    """One routing-table entry: a subscription and its source interface."""

    __slots__ = ("original", "current", "interface")

    def __init__(self, subscription: Subscription, interface: Interface) -> None:
        self.original = subscription
        self.current = subscription
        self.interface = interface

    @property
    def is_pruned(self) -> bool:
        """Whether the current tree differs from the registered one."""
        return self.current is not self.original

    @property
    def subscription_id(self) -> int:
        return self.original.id


class Broker:
    """One broker: routing table, counting matcher, neighbor links.

    ``shards`` switches the broker's engine from one
    :class:`CountingMatcher` to a :class:`ShardedMatcher` over that many
    independent slot shards; ``executor`` picks how sharded batches fan
    out (``"threads"``, ``"serial"``, ``"processes"`` for worker
    processes fed shared-memory batches, or an ``Executor`` — see
    :mod:`repro.matching.sharded`).  Results are identical either way;
    sharding only changes how many cores one table can use.  Brokers
    are context managers: ``with Broker(...) as broker:`` tears the
    engine down (worker pools, shared segments) on exit.
    """

    def __init__(
        self,
        broker_id: str,
        *,
        shards: Optional[int] = None,
        executor: ExecutorSpec = "threads",
    ) -> None:
        self.id = broker_id
        self.neighbors: List[str] = []
        self.matcher: Matcher = (
            CountingMatcher()
            if shards is None
            else ShardedMatcher(shards, executor=executor)
        )
        self.entries: Dict[int, RoutingEntry] = {}

    # -- wiring -----------------------------------------------------------------

    def connect(self, neighbor_id: str) -> None:
        """Attach a neighbor broker (wiring is done by the network)."""
        if neighbor_id == self.id:
            raise RoutingError("broker cannot neighbor itself")
        if neighbor_id in self.neighbors:
            raise RoutingError("duplicate neighbor %r" % neighbor_id)
        self.neighbors.append(neighbor_id)
        self.neighbors.sort()

    # -- routing table ------------------------------------------------------------

    def add_entry(self, subscription: Subscription, interface: Interface) -> None:
        """Insert a routing entry (a subscription seen via ``interface``)."""
        if subscription.id in self.entries:
            raise RoutingError(
                "broker %s already has an entry for subscription %d"
                % (self.id, subscription.id)
            )
        if interface.kind == "broker" and interface.name not in self.neighbors:
            raise RoutingError(
                "broker %s has no neighbor %r" % (self.id, interface.name)
            )
        self.entries[subscription.id] = RoutingEntry(subscription, interface)
        self.matcher.register(subscription)

    def remove_entry(self, subscription_id: int) -> Interface:
        """Drop a routing entry; returns the interface it pointed to."""
        entry = self.entries.pop(subscription_id, None)
        if entry is None:
            raise RoutingError(
                "broker %s has no entry for subscription %d"
                % (self.id, subscription_id)
            )
        self.matcher.unregister(subscription_id)
        return entry.interface

    def replace_entry(self, subscription: Subscription) -> None:
        """Swap an entry's *registered* tree for a new one, keeping its id.

        Unlike :meth:`prune_entry` this rebinds the entry's original
        subscription (the client changed what it is subscribed to), so
        any pruning previously applied to the old tree is dropped.
        """
        entry = self.entries.get(subscription.id)
        if entry is None:
            raise RoutingError(
                "broker %s has no entry for subscription %d"
                % (self.id, subscription.id)
            )
        entry.original = subscription
        entry.current = subscription
        self.matcher.replace(subscription)

    def prune_entry(self, subscription_id: int, pruned_tree: Node) -> None:
        """Replace a non-local entry's tree with a generalized version.

        Local-client entries must stay exact — they are what guarantees
        correct delivery — so pruning them is rejected.
        """
        entry = self.entries.get(subscription_id)
        if entry is None:
            raise RoutingError(
                "broker %s has no entry for subscription %d"
                % (self.id, subscription_id)
            )
        if entry.interface.is_client:
            raise RoutingError(
                "refusing to prune local-client subscription %d at broker %s"
                % (subscription_id, self.id)
            )
        entry.current = entry.original.with_tree(pruned_tree)
        self.matcher.replace(entry.current)

    def restore_entry(self, subscription_id: int) -> None:
        """Undo all pruning of one entry (back to the registered tree)."""
        entry = self.entries.get(subscription_id)
        if entry is None:
            raise RoutingError(
                "broker %s has no entry for subscription %d"
                % (self.id, subscription_id)
            )
        if entry.is_pruned:
            entry.current = entry.original
            self.matcher.replace(entry.current)

    def non_local_entries(self) -> List[RoutingEntry]:
        """Entries eligible for pruning (from neighbor brokers)."""
        return [
            entry
            for _sub_id, entry in sorted(self.entries.items())
            if not entry.interface.is_client
        ]

    def local_clients(self) -> List[str]:
        """Names of clients with at least one entry at this broker."""
        return sorted(
            {
                entry.interface.name
                for entry in self.entries.values()
                if entry.interface.is_client
            }
        )

    # -- matching ----------------------------------------------------------------

    def route(self, event: Event, exclude: Optional[str] = None) -> Dict[Interface, List[int]]:
        """Match ``event`` and group fulfilled entries by interface.

        ``exclude`` suppresses the broker interface the event arrived from
        (events are never sent back where they came from).
        """
        return self._group_by_interface(self.matcher.match(event), exclude)

    def route_batch(
        self,
        events: Union[Sequence[Event], EventBatch],
        exclude: Optional[str] = None,
    ) -> List[Dict[Interface, List[int]]]:
        """Match a whole event batch; one interface grouping per event.

        Matching runs through the engine's vectorized batch path, so
        forwarding brokers pay one index probe and one candidate test
        per batch instead of one per event.  Passing an
        :class:`~repro.events.EventBatch` whose columns are already
        built (e.g. a sub-batch the network derived from the published
        batch) skips re-columnarizing the events at this broker.
        """
        return [
            self._group_by_interface(matched, exclude)
            for matched in self.matcher.match_batch(events)
        ]

    def _group_by_interface(
        self, subscription_ids: List[int], exclude: Optional[str]
    ) -> Dict[Interface, List[int]]:
        routed: Dict[Interface, List[int]] = {}
        for subscription_id in subscription_ids:
            interface = self.entries[subscription_id].interface
            if (
                exclude is not None
                and interface.kind == "broker"
                and interface.name == exclude
            ):
                continue
            routed.setdefault(interface, []).append(subscription_id)
        return routed

    # -- accounting -----------------------------------------------------------------

    @property
    def association_count(self) -> int:
        """Predicate/subscription associations in the current table."""
        return sum(entry.current.leaf_count for entry in self.entries.values())

    @property
    def non_local_association_count(self) -> int:
        """Associations contributed by non-local entries only (Fig. 1(f))."""
        return sum(
            entry.current.leaf_count
            for entry in self.entries.values()
            if not entry.interface.is_client
        )

    @property
    def table_size_bytes(self) -> int:
        """mem≈ of all current entry trees."""
        return sum(entry.current.size_bytes for entry in self.entries.values())

    @property
    def filter_seconds(self) -> float:
        """Wall-clock seconds this broker spent matching."""
        return self.matcher.statistics.elapsed_seconds

    def reset_statistics(self) -> None:
        """Zero the matcher counters (between measurement points)."""
        self.matcher.statistics.reset()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release matcher resources (a sharded engine's worker pool).

        Idempotent, and the broker stays usable: a sharded matcher
        lazily rebuilds its pool on the next batch.
        """
        self.matcher.close()

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return "Broker(%s, %d entries, neighbors=%s)" % (
            self.id,
            len(self.entries),
            self.neighbors,
        )
