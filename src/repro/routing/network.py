"""An in-process broker network with exact link accounting.

Subscription forwarding and event routing run synchronously over the
acyclic topology: propagation is a tree walk, so every message is counted
exactly once per traversed link.  This replaces the paper's five-machine
testbed; message *counts* are exact, transmission *time* is modelled by
:class:`~repro.routing.metrics.CostModel` (see DESIGN.md §4).
"""

from __future__ import annotations

import warnings
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import RoutingError
from repro.events import Event, EventBatch
from repro.matching.sharded import ExecutorSpec
from repro.routing.broker import Broker, Interface
from repro.routing.metrics import CostModel, LinkStats, NetworkReport
from repro.routing.topology import Topology
from repro.subscriptions.nodes import Node
from repro.subscriptions.serialize import encode_node
from repro.subscriptions.subscription import Subscription

#: Wire overhead of one subscription-forwarding message beyond the tree
#: encoding (framing, subscription id, action tag).
_SUBSCRIPTION_MESSAGE_OVERHEAD = 24


class Delivery(NamedTuple):
    """One notification: ``client`` at ``broker_id`` matched ``subscription_id``."""

    client: str
    broker_id: str
    subscription_id: int


class PublishResult(NamedTuple):
    """Outcome of publishing one event."""

    deliveries: List[Delivery]        #: notifications to local clients
    event_messages: int               #: broker-to-broker event sends
    brokers_visited: int              #: brokers that filtered the event


#: Called at the end of every :meth:`BrokerNetwork.publish_batch` with the
#: batch's events and their per-event results, in batch order.  This is how
#: the service layer (:mod:`repro.service`) observes deliveries regardless
#: of which publish entry point produced them.
DeliveryHook = Callable[[Sequence[Event], Sequence[PublishResult]], None]


class BrokerNetwork:
    """A network of brokers over an acyclic topology.

    ``shards``/``executor`` configure every broker's matching engine:
    with ``shards=K`` each broker partitions its table into K
    independent slot shards and fans batches out to per-shard workers —
    threads by default, or persistent worker processes with
    ``executor="processes"`` (see :mod:`repro.matching.sharded`);
    results and accounting are identical to the unsharded default.
    The network is a context manager; exiting closes every broker.

    >>> from repro.routing.topology import line_topology
    >>> from repro.subscriptions import P, And
    >>> from repro.events import Event
    >>> network = BrokerNetwork(line_topology(3))
    >>> sub = network.subscribe("b2", "alice", And(P("x") == 1, P("y") == 2))
    >>> result = network.publish("b0", Event({"x": 1, "y": 2}))
    >>> result.deliveries
    [Delivery(client='alice', broker_id='b2', subscription_id=0)]
    >>> result.event_messages  # two hops: b0->b1, b1->b2
    2
    """

    def __init__(
        self,
        topology: Topology,
        cost_model: Optional[CostModel] = None,
        *,
        shards: Optional[int] = None,
        executor: ExecutorSpec = "threads",
    ) -> None:
        self.topology = topology
        self.cost_model = cost_model or CostModel()
        self.brokers: Dict[str, Broker] = {
            broker_id: Broker(broker_id, shards=shards, executor=executor)
            for broker_id in topology.broker_ids
        }
        for left, right in topology.edges:
            self.brokers[left].connect(right)
            self.brokers[right].connect(left)
        self._links: Dict[Tuple[str, str], LinkStats] = {}
        for left, right in topology.edges:
            self._links[(left, right)] = LinkStats()
            self._links[(right, left)] = LinkStats()
        self._next_subscription_id = 0
        self._reserved_ids: Set[int] = set()
        self._delivery_hook: Optional[DeliveryHook] = None
        self._home: Dict[int, Tuple[str, str]] = {}
        self._table_version = 0
        self._subscription_messages = 0
        self._subscription_bytes = 0
        self._events_published = 0
        self._deliveries = 0

    # -- subscriptions -------------------------------------------------------------

    @property
    def table_version(self) -> int:
        """Monotone counter bumped by every subscription churn operation.

        Subscribe, unsubscribe, and replace each increment it; applied
        *prunings* do not (they change trees, not which subscriptions
        exist).  Consumers that cache per-subscription plans — the
        adaptive pruning controller above all — compare versions to
        detect that their snapshot of the subscription set went stale.
        """
        return self._table_version

    def registered_subscriptions(self) -> Dict[int, Subscription]:
        """All live subscriptions with their exact *registered* trees.

        Read from each subscription's home-broker entry, which is never
        pruned, so the returned trees are the delivery-correct originals
        regardless of any pruning applied to forwarding tables.
        """
        subscriptions: Dict[int, Subscription] = {}
        for subscription_id, (broker_id, _client) in self._home.items():
            entry = self.brokers[broker_id].entries[subscription_id]
            subscriptions[subscription_id] = entry.original
        return subscriptions

    def allocate_subscription_id(self) -> int:
        """Reserve and return the next globally unique subscription id.

        This is the server-assigned identity path used by the service
        layer: the reserved id is accepted (exactly once) by
        :meth:`subscribe` without the deprecation warning that
        caller-chosen ids draw.
        """
        subscription_id = self._next_subscription_id
        self._next_subscription_id += 1
        self._reserved_ids.add(subscription_id)
        return subscription_id

    def subscribe(
        self,
        broker_id: str,
        client: str,
        tree: Node,
        subscription_id: Optional[int] = None,
    ) -> Subscription:
        """Register a subscription at a client's home broker and forward it.

        Returns the registered :class:`Subscription` (with its global id).
        Passing a caller-chosen ``subscription_id`` (one not reserved via
        :meth:`allocate_subscription_id`) is deprecated — use the service
        layer (:class:`repro.service.PubSubService`), which hands out
        opaque handles instead of global ints.
        """
        home = self._broker(broker_id)
        if subscription_id is None:
            subscription_id = self._next_subscription_id
            self._next_subscription_id += 1
        elif subscription_id in self._reserved_ids:
            self._reserved_ids.discard(subscription_id)
        elif subscription_id < self._next_subscription_id:
            raise RoutingError("subscription id %d already used" % subscription_id)
        else:
            warnings.warn(
                "caller-chosen subscription ids are deprecated; use "
                "repro.service.PubSubService sessions (server-assigned "
                "handles) or BrokerNetwork.allocate_subscription_id()",
                DeprecationWarning,
                stacklevel=2,
            )
            self._next_subscription_id = subscription_id + 1
        subscription = Subscription(subscription_id, tree, owner=client)
        home.add_entry(subscription, Interface.client(client))
        self._home[subscription.id] = (broker_id, client)
        self._table_version += 1
        wire_size = len(encode_node(subscription.tree)) + _SUBSCRIPTION_MESSAGE_OVERHEAD
        self._flood(
            broker_id,
            wire_size,
            lambda broker, sender: broker.add_entry(
                subscription, Interface.broker(sender)
            ),
        )
        return subscription

    def _flood(
        self,
        origin: str,
        wire_size: int,
        apply: Callable[[Broker, str], None],
    ) -> None:
        """Walk the tree away from ``origin``, applying a table change.

        Records one subscription-traffic message of ``wire_size`` bytes
        per traversed link and calls ``apply(broker, sender)`` at every
        broker reached.
        """
        queue: List[Tuple[str, str]] = [
            (neighbor, origin) for neighbor in self.brokers[origin].neighbors
        ]
        while queue:
            broker_id, sender = queue.pop()
            self._record_link(sender, broker_id, wire_size, subscription_traffic=True)
            broker = self.brokers[broker_id]
            apply(broker, sender)
            for neighbor in broker.neighbors:
                if neighbor != sender:
                    queue.append((neighbor, broker_id))

    def unsubscribe(self, subscription_id: int) -> None:
        """Remove a subscription from every broker's table."""
        if subscription_id not in self._home:
            raise RoutingError("unknown subscription id %d" % subscription_id)
        origin, _client = self._home.pop(subscription_id)
        self._table_version += 1
        self._broker(origin).remove_entry(subscription_id)
        self._flood(
            origin,
            _SUBSCRIPTION_MESSAGE_OVERHEAD,
            lambda broker, sender: broker.remove_entry(subscription_id),
        )

    def replace_subscription(self, subscription_id: int, tree: Node) -> Subscription:
        """Swap the tree of a live subscription everywhere, keeping its id.

        The new tree becomes the *registered* tree at every broker (any
        pruning applied to the old entries is dropped), and the change is
        flooded with the same subscription-traffic accounting as a fresh
        subscribe.  This is the substrate behind
        :meth:`repro.service.SubscriptionHandle.replace`.
        """
        home = self._home.get(subscription_id)
        if home is None:
            raise RoutingError("unknown subscription id %d" % subscription_id)
        origin, client = home
        subscription = Subscription(subscription_id, tree, owner=client)
        self._table_version += 1
        self.brokers[origin].replace_entry(subscription)
        wire_size = len(encode_node(subscription.tree)) + _SUBSCRIPTION_MESSAGE_OVERHEAD
        self._flood(
            origin,
            wire_size,
            lambda broker, sender: broker.replace_entry(subscription),
        )
        return subscription

    # -- events ----------------------------------------------------------------------

    def publish(self, broker_id: str, event: Event) -> PublishResult:
        """Publish one event and route it to all matching subscribers."""
        return self.publish_batch(broker_id, [event])[0]

    def publish_batch(
        self, broker_id: str, events: Union[Sequence[Event], EventBatch]
    ) -> List[PublishResult]:
        """Publish a whole event batch from one origin broker.

        The batch travels the topology *as a batch*: each broker filters
        the sub-batch of events that reached it with one vectorized
        ``route_batch`` call, and each link forwards the sub-batch of
        events routed over it.  The origin broker columnarizes the batch
        once; every downstream broker derives its sub-batch's columns by
        row selection from that shared columnar view.  Per-event message
        counts, deliveries, and link accounting are identical to
        publishing the events one by one; one :class:`PublishResult` is
        returned per event, in order.
        """
        batch = EventBatch.coerce(events)
        events = batch.events
        self._broker(broker_id)
        # Snapshot the hook before routing: a concurrent
        # set_delivery_hook(None) (a service detaching) must not turn
        # the hook into None between the routing work and the dispatch
        # of its results.
        hook = self._delivery_hook
        self._events_published += len(events)
        count = len(events)
        deliveries_per: List[List[Delivery]] = [[] for _ in range(count)]
        messages_per = [0] * count
        visited_per = [0] * count
        # Queue items carry the event positions still riding this branch.
        queue: List[Tuple[str, Optional[str], List[int]]] = [
            (broker_id, None, list(range(count)))
        ]
        while queue:
            current_id, sender, positions = queue.pop()
            broker = self.brokers[current_id]
            sub_batch = batch if len(positions) == count else batch.subset(positions)
            routed_batch = broker.route_batch(sub_batch, exclude=sender)
            forward: Dict[str, List[int]] = {}
            for position, routed in zip(positions, routed_batch):
                visited_per[position] += 1
                for interface in sorted(routed):
                    if interface.is_client:
                        for subscription_id in sorted(routed[interface]):
                            deliveries_per[position].append(
                                Delivery(interface.name, current_id, subscription_id)
                            )
                    else:
                        forward.setdefault(interface.name, []).append(position)
            for neighbor in sorted(forward):
                forwarded = forward[neighbor]
                for position in forwarded:
                    self._record_link(
                        current_id, neighbor, events[position].size_bytes
                    )
                    messages_per[position] += 1
                queue.append((neighbor, current_id, forwarded))
        total_deliveries = sum(len(d) for d in deliveries_per)
        self._deliveries += total_deliveries
        results = [
            PublishResult(deliveries_per[i], messages_per[i], visited_per[i])
            for i in range(count)
        ]
        if hook is not None:
            hook(events, results)
        return results

    def set_delivery_hook(self, hook: Optional[DeliveryHook]) -> None:
        """Install (or clear, with ``None``) the delivery hook.

        The hook observes every published batch with its per-event
        results, whatever entry point published it.  Only one hook may
        be installed at a time — the service layer owns it when a
        :class:`repro.service.PubSubService` wraps this network.

        Threading: the substrate itself takes no locks — the hook must
        be safe to call from whichever thread publishes (the service's
        dispatcher serializes internally on its publish lock).  Each
        ``publish_batch`` snapshots the hook before routing, so clearing
        it concurrently lets in-flight publishes finish their dispatch
        instead of silently dropping it.
        """
        if hook is not None and self._delivery_hook is not None:
            raise RoutingError("a delivery hook is already installed")
        self._delivery_hook = hook

    def publish_many(
        self, broker_ids: Iterable[str], events: Iterable[Event]
    ) -> List[PublishResult]:
        """Publish events round-robin over ``broker_ids``, one per event.

        Delegates to :meth:`publish_batch` per origin-broker group (the
        vectorized path) instead of looping :meth:`publish`; results,
        deliveries, and link accounting are identical to the sequential
        loop, and are returned in input-event order.
        """
        pairs = list(zip(broker_ids, events))
        if not pairs:
            return []
        origins = [origin for origin, _event in pairs]
        batch = EventBatch([event for _origin, event in pairs])
        return self._publish_grouped(origins, batch)

    def publish_round_robin(
        self, broker_ids: Sequence[str], events: Union[Sequence[Event], EventBatch]
    ) -> List[PublishResult]:
        """Batch equivalent of round-robin publishing.

        Events are grouped by their round-robin origin broker and each
        group is published with :meth:`publish_batch`; results are
        returned re-ordered to match the input event order.  Passing an
        :class:`~repro.events.EventBatch` columnarizes once and shares
        the columns across all origin groups (and across repeated calls
        with the same batch, e.g. an experiment's pruning grid).
        """
        batch = EventBatch.coerce(events)
        origins = [
            broker_ids[position % len(broker_ids)]
            for position in range(len(batch.events))
        ]
        return self._publish_grouped(origins, batch)

    def _publish_grouped(
        self, origins: Sequence[str], batch: EventBatch
    ) -> List[PublishResult]:
        """Publish ``batch`` with per-event origins, one sub-batch per origin.

        The batch is columnarized once and shared by every origin
        group's sub-batch; results are re-ordered to input-event order.
        """
        batch.columns()  # built once, shared by every subset below
        groups: Dict[str, List[int]] = {}
        for position, origin in enumerate(origins):
            groups.setdefault(origin, []).append(position)
        results: List[Optional[PublishResult]] = [None] * len(origins)
        for origin, positions in groups.items():
            sub_batch = (
                batch if len(positions) == len(origins) else batch.subset(positions)
            )
            for position, result in zip(positions, self.publish_batch(origin, sub_batch)):
                results[position] = result
        return results  # type: ignore[return-value]

    # -- pruning -----------------------------------------------------------------------

    def apply_pruned_tables(
        self, per_broker: Dict[str, Dict[int, Node]]
    ) -> None:
        """Replace non-local entry trees broker by broker.

        ``per_broker`` maps broker id → {subscription id → pruned tree};
        entries not mentioned keep their current tree.
        """
        for broker_id, trees in per_broker.items():
            broker = self._broker(broker_id)
            for subscription_id, tree in trees.items():
                broker.prune_entry(subscription_id, tree)

    def restore_all_entries(self) -> None:
        """Undo all pruning network-wide."""
        for broker in self.brokers.values():
            for entry in broker.non_local_entries():
                broker.restore_entry(entry.subscription_id)

    # -- accounting ---------------------------------------------------------------------

    def _broker(self, broker_id: str) -> Broker:
        try:
            return self.brokers[broker_id]
        except KeyError:
            raise RoutingError("unknown broker %r" % broker_id)

    def _record_link(
        self,
        sender: str,
        receiver: str,
        size_bytes: int,
        subscription_traffic: bool = False,
    ) -> None:
        link = self._links.get((sender, receiver))
        if link is None:
            raise RoutingError("no link %s->%s" % (sender, receiver))
        link.record(size_bytes)
        if subscription_traffic:
            self._subscription_messages += 1
            self._subscription_bytes += size_bytes

    def report(self) -> NetworkReport:
        """Snapshot of all counters since the last reset."""
        event_messages = 0
        event_bytes = 0
        per_link: Dict[Tuple[str, str], int] = {}
        per_link_bytes: Dict[Tuple[str, str], int] = {}
        for key, link in self._links.items():
            per_link[key] = link.messages
            per_link_bytes[key] = link.bytes
            event_messages += link.messages
            event_bytes += link.bytes
        event_messages -= self._subscription_messages
        event_bytes -= self._subscription_bytes
        filter_seconds = sum(
            broker.filter_seconds for broker in self.brokers.values()
        )
        return NetworkReport(
            event_messages=event_messages,
            event_bytes=event_bytes,
            subscription_messages=self._subscription_messages,
            subscription_bytes=self._subscription_bytes,
            per_link_messages=per_link,
            deliveries=self._deliveries,
            events_published=self._events_published,
            filter_seconds=filter_seconds,
            cost_model=self.cost_model,
            per_link_bytes=per_link_bytes,
        )

    def close(self) -> None:
        """Release every broker's matcher resources (shard worker pools).

        Idempotent; the network stays usable afterwards (sharded
        matchers rebuild their pools lazily on the next batch).  A
        no-op for unsharded networks.
        """
        for broker in self.brokers.values():
            broker.close()

    def __enter__(self) -> "BrokerNetwork":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def reset_statistics(self) -> None:
        """Zero link counters, broker matcher stats, and event counters.

        Routing tables (and applied prunings) are left untouched.
        """
        for link in self._links.values():
            link.reset()
        for broker in self.brokers.values():
            broker.reset_statistics()
        self._subscription_messages = 0
        self._subscription_bytes = 0
        self._events_published = 0
        self._deliveries = 0

    # -- table-wide metrics ----------------------------------------------------------------

    @property
    def association_count(self) -> int:
        """Predicate/subscription associations across all brokers."""
        return sum(broker.association_count for broker in self.brokers.values())

    @property
    def non_local_association_count(self) -> int:
        """Associations from non-local entries only (Fig. 1(f))."""
        return sum(
            broker.non_local_association_count for broker in self.brokers.values()
        )

    @property
    def table_size_bytes(self) -> int:
        """mem≈ of all routing tables."""
        return sum(broker.table_size_bytes for broker in self.brokers.values())
