"""The distributed publish/subscribe substrate: brokers and routing.

A distributed p/s system is a network of brokers with acyclic connections
(paper Sect. 2.1).  Subscribers register subscriptions with their local
broker; brokers exchange subscription information so events are routed
selectively (subscription forwarding).  Pruning is applied only to routing
entries from *non-local* clients — the subscriber's home broker always
filters with the exact subscription, so pruning can add forwarded traffic
but never wrong deliveries (post-filtering, Sect. 2.2).

* :mod:`repro.routing.topology` — acyclic broker graphs (line, star, tree),
* :mod:`repro.routing.broker` — per-broker routing tables and matching,
* :mod:`repro.routing.network` — in-process event/subscription propagation
  with per-link accounting,
* :mod:`repro.routing.metrics` — link counters and the transmission cost
  model standing in for the paper's 10 Mbps testbed.
"""

from repro.routing.broker import Broker, Interface, RoutingEntry
from repro.routing.metrics import CostModel, LinkStats, NetworkReport
from repro.routing.network import BrokerNetwork, Delivery, PublishResult
from repro.routing.topology import Topology, line_topology, star_topology, tree_topology

__all__ = [
    "Broker",
    "BrokerNetwork",
    "CostModel",
    "Delivery",
    "Interface",
    "LinkStats",
    "NetworkReport",
    "PublishResult",
    "RoutingEntry",
    "Topology",
    "line_topology",
    "star_topology",
    "tree_topology",
]
