"""Link accounting and the transmission cost model.

The paper's testbed connects brokers over a 10 Mbps network; extra
forwarded events cost real time to send, receive, and filter.  In this
in-process reproduction, link usage is *counted* exactly (messages and
bytes per directed link) and transmission time is *modelled*:

    seconds(message) = per_message_overhead + size_bytes * 8 / bandwidth

The per-message overhead stands in for serialization and protocol-stack
costs on both endpoints.  Filtering time is measured, not modelled — the
counting engine does real work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class CostModel:
    """Transmission cost of one message over one broker link."""

    def __init__(
        self,
        bandwidth_bps: float = 10e6,
        per_message_overhead_s: float = 100e-6,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if per_message_overhead_s < 0:
            raise ValueError("per-message overhead must be non-negative")
        self.bandwidth_bps = bandwidth_bps
        self.per_message_overhead_s = per_message_overhead_s

    def transmission_seconds(self, size_bytes: int) -> float:
        """Modelled wall-clock cost of moving one message over one hop."""
        return self.per_message_overhead_s + (size_bytes * 8.0) / self.bandwidth_bps


class LinkStats:
    """Counters of one directed broker link."""

    __slots__ = ("messages", "bytes")

    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0

    def record(self, size_bytes: int) -> None:
        """Count one message of ``size_bytes``."""
        self.messages += 1
        self.bytes += size_bytes

    def reset(self) -> None:
        """Zero the counters."""
        self.messages = 0
        self.bytes = 0


class NetworkReport:
    """A snapshot of network-wide routing activity.

    Built by :meth:`repro.routing.network.BrokerNetwork.report`; the
    distributed experiments read event-message counts (Fig. 1(e)) and the
    modelled transmission time share of per-event cost (Fig. 1(d)) from
    here.
    """

    def __init__(
        self,
        event_messages: int,
        event_bytes: int,
        subscription_messages: int,
        subscription_bytes: int,
        per_link_messages: Dict[Tuple[str, str], int],
        deliveries: int,
        events_published: int,
        filter_seconds: float,
        cost_model: CostModel,
        per_link_bytes: Optional[Dict[Tuple[str, str], int]] = None,
    ) -> None:
        self.event_messages = event_messages
        self.event_bytes = event_bytes
        self.subscription_messages = subscription_messages
        self.subscription_bytes = subscription_bytes
        self.per_link_messages = per_link_messages
        #: Directed-link byte counters (all traffic, events plus
        #: subscription forwarding); the adaptive probe derives busiest-
        #: link utilization from these.  Empty when a caller predating
        #: the field built the report by hand.
        self.per_link_bytes = per_link_bytes if per_link_bytes is not None else {}
        self.deliveries = deliveries
        self.events_published = events_published
        self.filter_seconds = filter_seconds
        self.cost_model = cost_model

    def link_busy_seconds(self, link: Tuple[str, str]) -> float:
        """Modelled seconds this directed link spent transmitting.

        ``messages × per-message overhead + bytes × 8 / bandwidth`` — the
        same model :meth:`transmission_seconds` applies network-wide,
        resolved per link so utilization can be read off the busiest one.
        """
        messages = self.per_link_messages.get(link, 0)
        link_bytes = self.per_link_bytes.get(link, 0)
        return (
            messages * self.cost_model.per_message_overhead_s
            + (link_bytes * 8.0) / self.cost_model.bandwidth_bps
        )

    @property
    def transmission_seconds(self) -> float:
        """Modelled time for all event messages (overhead + bandwidth)."""
        if not self.event_messages:
            return 0.0
        mean_size = self.event_bytes / self.event_messages
        return self.event_messages * self.cost_model.transmission_seconds(mean_size)

    @property
    def total_seconds(self) -> float:
        """Measured filtering plus modelled transmission."""
        return self.filter_seconds + self.transmission_seconds

    @property
    def seconds_per_event(self) -> float:
        """Total routing cost per published event — Fig. 1(d)'s metric."""
        if not self.events_published:
            return 0.0
        return self.total_seconds / self.events_published

    @property
    def messages_per_event(self) -> float:
        """Average broker-to-broker event messages per published event."""
        if not self.events_published:
            return 0.0
        return self.event_messages / self.events_published

    def busiest_links(self, count: int = 5) -> List[Tuple[Tuple[str, str], int]]:
        """The ``count`` most loaded directed links."""
        ranked = sorted(
            self.per_link_messages.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:count]

    def as_dict(self) -> dict:
        """Plain-dict snapshot for reports."""
        return {
            "event_messages": self.event_messages,
            "event_bytes": self.event_bytes,
            "subscription_messages": self.subscription_messages,
            "subscription_bytes": self.subscription_bytes,
            "deliveries": self.deliveries,
            "events_published": self.events_published,
            "filter_seconds": self.filter_seconds,
            "transmission_seconds": self.transmission_seconds,
            "seconds_per_event": self.seconds_per_event,
        }
