"""Acyclic broker topologies.

The paper assumes acyclic broker connections (Sect. 2.1) and evaluates on
five brokers connected as a line.  A :class:`Topology` is a validated
undirected tree over broker ids; builders for the common shapes are
provided.  networkx carries the graph mechanics.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import networkx as nx

from repro.errors import TopologyError


class Topology:
    """A connected acyclic broker graph (i.e. a tree)."""

    def __init__(self, edges: Iterable[Tuple[str, str]]) -> None:
        graph = nx.Graph()
        edge_list = list(edges)
        if not edge_list:
            raise TopologyError("topology needs at least one edge")
        for left, right in edge_list:
            if left == right:
                raise TopologyError("self-loop on broker %r" % left)
            if graph.has_edge(left, right):
                raise TopologyError("duplicate edge %r-%r" % (left, right))
            graph.add_edge(left, right)
        if not nx.is_connected(graph):
            raise TopologyError("topology must be connected")
        if graph.number_of_edges() != graph.number_of_nodes() - 1:
            raise TopologyError("topology must be acyclic (a tree)")
        self._graph = graph

    @classmethod
    def single_broker(cls, broker_id: str = "b0") -> "Topology":
        """The degenerate one-broker topology (centralized setting)."""
        topology = cls.__new__(cls)
        graph = nx.Graph()
        graph.add_node(broker_id)
        topology._graph = graph
        return topology

    @property
    def broker_ids(self) -> List[str]:
        """All broker ids, sorted for determinism."""
        return sorted(self._graph.nodes)

    @property
    def edges(self) -> List[Tuple[str, str]]:
        """All undirected edges as sorted pairs, sorted."""
        return sorted(tuple(sorted(edge)) for edge in self._graph.edges)

    def neighbors(self, broker_id: str) -> List[str]:
        """Sorted neighbor ids of one broker."""
        if broker_id not in self._graph:
            raise TopologyError("unknown broker %r" % broker_id)
        return sorted(self._graph.neighbors(broker_id))

    def path(self, source: str, target: str) -> List[str]:
        """The unique path between two brokers (inclusive)."""
        try:
            return nx.shortest_path(self._graph, source, target)
        except (nx.NodeNotFound, nx.NetworkXNoPath):
            raise TopologyError("no path between %r and %r" % (source, target))

    def diameter(self) -> int:
        """Longest shortest path (in hops)."""
        if self._graph.number_of_nodes() == 1:
            return 0
        return nx.diameter(self._graph)

    def __contains__(self, broker_id: object) -> bool:
        return broker_id in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()


def line_topology(count: int, prefix: str = "b") -> Topology:
    """``count`` brokers in a line — the paper's distributed setting
    (five brokers connected as a line)."""
    if count < 1:
        raise TopologyError("line topology needs at least one broker")
    if count == 1:
        return Topology.single_broker("%s0" % prefix)
    names = ["%s%d" % (prefix, index) for index in range(count)]
    return Topology(zip(names, names[1:]))


def star_topology(leaves: int, prefix: str = "b") -> Topology:
    """One hub broker with ``leaves`` spokes."""
    if leaves < 1:
        raise TopologyError("star topology needs at least one leaf")
    hub = "%s0" % prefix
    return Topology((hub, "%s%d" % (prefix, index + 1)) for index in range(leaves))


def tree_topology(branching: int, height: int, prefix: str = "b") -> Topology:
    """A balanced tree of brokers with the given branching and height."""
    if branching < 1 or height < 1:
        raise TopologyError("tree topology needs positive branching and height")
    edges: List[Tuple[str, str]] = []
    nodes = ["%s0" % prefix]
    frontier = [nodes[0]]
    counter = 1
    for _level in range(height):
        next_frontier = []
        for parent in frontier:
            for _child in range(branching):
                name = "%s%d" % (prefix, counter)
                counter += 1
                edges.append((parent, name))
                next_frontier.append(name)
        frontier = next_frontier
    return Topology(edges)
