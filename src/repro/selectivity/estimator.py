"""Tree-level selectivity estimation: ``(sel_min, sel_avg, sel_max)``.

The paper (Sect. 3.1) estimates the selectivity of a subscription with
three components — minimal, average, and maximal possible selectivity —
because the exact value depends on inter-predicate correlations the broker
cannot know.  We realize the three components as:

* ``avg`` — combination under an independence assumption
  (AND: product, OR: inclusion–exclusion),
* ``min``/``max`` — Fréchet–Hoeffding bounds, which hold under *any*
  correlation structure (AND: ``max(0, Σpᵢ − (k−1)) … min(pᵢ)``,
  OR: ``max(pᵢ) … min(1, Σpᵢ)``).

Both bound families are monotone, so ``sel_min ≤ sel_avg ≤ sel_max`` holds
structurally, and the true selectivity lies within ``[sel_min, sel_max]``
whenever the per-predicate probabilities are exact.

The *estimated selectivity degradation* of pruning ``s_x`` into ``s_y`` is
the maximum componentwise increase (paper's Δ≈sel):

    Δsel(s_x, s_y) = max(min_y − min_x, avg_y − avg_x, max_y − max_x)
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Sequence

from repro.errors import SelectivityError
from repro.events import Event
from repro.selectivity.statistics import EventStatistics
from repro.subscriptions.nodes import (
    AndNode,
    ConstNode,
    Node,
    OrNode,
    PredicateLeaf,
)


class SelectivityEstimate(NamedTuple):
    """Three-component selectivity estimate of a subscription tree.

    Components are probabilities in ``[0, 1]``; higher means the
    subscription matches more events (it is *less* selective).
    """

    min: float
    avg: float
    max: float

    @classmethod
    def exact(cls, probability: float) -> "SelectivityEstimate":
        """A point estimate (all three components equal)."""
        return cls(probability, probability, probability)

    def clamp(self) -> "SelectivityEstimate":
        """Clip all components into [0, 1] (guards float round-off)."""
        return SelectivityEstimate(
            min(1.0, max(0.0, self.min)),
            min(1.0, max(0.0, self.avg)),
            min(1.0, max(0.0, self.max)),
        )


#: Estimate of a constant-true tree: matches everything.
ALWAYS = SelectivityEstimate(1.0, 1.0, 1.0)
#: Estimate of a constant-false tree: matches nothing.
NEVER = SelectivityEstimate(0.0, 0.0, 0.0)


def _ordered(lower: float, avg: float, upper: float) -> SelectivityEstimate:
    """Clamp into [0, 1] and project avg into [lower, upper].

    The Fréchet bounds are ordered and the independence average lies
    between them analytically, but float round-off can break either
    invariant for extreme probabilities (``1 - (1 - 1e-300) == 0.0``;
    ``1.0 + (1 - 2**-53)`` rounds up to ``2.0``, pushing the AND lower
    bound above its upper bound); projecting restores both.
    """
    lower = min(1.0, max(0.0, lower))
    upper = min(1.0, max(0.0, upper))
    lower = min(lower, upper)
    avg = min(upper, max(lower, avg))
    return SelectivityEstimate(lower, avg, upper)


def combine_and(estimates: Sequence[SelectivityEstimate]) -> SelectivityEstimate:
    """Combine child estimates under a conjunction."""
    if not estimates:
        return ALWAYS
    lower = sum(e.min for e in estimates) - (len(estimates) - 1)
    avg = 1.0
    upper = 1.0
    for e in estimates:
        avg *= e.avg
        upper = min(upper, e.max)
    return _ordered(max(0.0, lower), avg, upper)


def combine_or(estimates: Sequence[SelectivityEstimate]) -> SelectivityEstimate:
    """Combine child estimates under a disjunction."""
    if not estimates:
        return NEVER
    lower = 0.0
    missing = 1.0
    upper = 0.0
    for e in estimates:
        lower = max(lower, e.min)
        missing *= 1.0 - e.avg
        upper += e.max
    return _ordered(lower, 1.0 - missing, min(1.0, upper))


def selectivity_degradation(
    original: SelectivityEstimate, pruned: SelectivityEstimate
) -> float:
    """The paper's Δ≈sel: maximal componentwise selectivity increase."""
    return max(
        pruned.min - original.min,
        pruned.avg - original.avg,
        pruned.max - original.max,
    )


class SelectivityEstimator:
    """Estimates subscription selectivities against event statistics.

    >>> from repro.selectivity.statistics import (
    ...     CategoricalStatistics, EventStatistics)
    >>> from repro.subscriptions import P, And
    >>> stats = EventStatistics({
    ...     "cat": CategoricalStatistics({"a": 0.25, "b": 0.75}),
    ...     "hot": CategoricalStatistics({True: 0.5, False: 0.5}),
    ... })
    >>> est = SelectivityEstimator(stats)
    >>> est.estimate(And(P("cat") == "a", P("hot") == True)).avg
    0.125
    """

    def __init__(self, statistics: EventStatistics) -> None:
        if not isinstance(statistics, EventStatistics):
            raise SelectivityError("SelectivityEstimator requires EventStatistics")
        self.statistics = statistics

    def estimate(self, tree: Node) -> SelectivityEstimate:
        """Estimate the (min, avg, max) selectivity of a normalized tree."""
        if isinstance(tree, PredicateLeaf):
            probability = self.statistics.predicate_probability(tree.predicate)
            return SelectivityEstimate.exact(probability)
        if isinstance(tree, ConstNode):
            return ALWAYS if tree.value else NEVER
        if isinstance(tree, AndNode):
            return combine_and([self.estimate(child) for child in tree.children])
        if isinstance(tree, OrNode):
            return combine_or([self.estimate(child) for child in tree.children])
        raise SelectivityError(
            "cannot estimate selectivity of %s (tree must be normalized)"
            % type(tree).__name__
        )

    def degradation(self, original: Node, pruned: Node) -> float:
        """Δ≈sel between two trees (convenience wrapper)."""
        return selectivity_degradation(self.estimate(original), self.estimate(pruned))

    @staticmethod
    def measure(tree: Node, events: Iterable[Event]) -> float:
        """Exact selectivity of ``tree`` over a concrete event sample."""
        total = 0
        matched = 0
        for event in events:
            total += 1
            if tree.evaluate(event):
                matched += 1
        if not total:
            raise SelectivityError("cannot measure selectivity on zero events")
        return matched / total
