"""Selectivity statistics and estimation.

The network dimension of pruning (paper Sect. 3.1) ranks candidate prunings
by their *estimated selectivity degradation*: how many more events the
pruned subscription will match.  This package provides

* :mod:`repro.selectivity.statistics` — per-attribute value distributions,
  either analytic (declared by a workload generator) or empirical (sampled
  from observed events), answering "what is the probability that a random
  event fulfils this predicate?";
* :mod:`repro.selectivity.estimator` — combination of predicate
  probabilities over a subscription tree into the paper's three-component
  estimate ``(sel_min, sel_avg, sel_max)`` using Fréchet bounds for the
  extremes and an independence assumption for the average.
"""

from repro.selectivity.estimator import (
    SelectivityEstimate,
    SelectivityEstimator,
    selectivity_degradation,
)
from repro.selectivity.statistics import (
    AttributeStatistics,
    CategoricalStatistics,
    ContinuousStatistics,
    EmpiricalStatistics,
    EventStatistics,
)

__all__ = [
    "AttributeStatistics",
    "CategoricalStatistics",
    "ContinuousStatistics",
    "EmpiricalStatistics",
    "EventStatistics",
    "SelectivityEstimate",
    "SelectivityEstimator",
    "selectivity_degradation",
]
