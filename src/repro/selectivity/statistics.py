"""Per-attribute value distributions for selectivity estimation.

An :class:`AttributeStatistics` answers one question: the probability that
a random event fulfils a given predicate on this attribute.  Presence is
part of the model — predicates on absent attributes are unfulfilled, so
every probability is bounded by the attribute's presence probability.

Three implementations cover the library's needs:

* :class:`CategoricalStatistics` — discrete value distributions declared
  analytically (used by workload generators for titles, categories, ...);
* :class:`ContinuousStatistics` — numeric distributions described by a CDF
  sampled at support points (prices, ratings, ...);
* :class:`EmpiricalStatistics` — built from observed events when no
  analytic model is available (the broker-side fallback).
"""

from __future__ import annotations

import bisect
from typing import (
    Dict,
    Iterable,
    List,
    Literal,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeGuard,
    Union,
)

import numpy as np

from repro.errors import SelectivityError
from repro.events import Event, Value
from repro.subscriptions.predicates import Operator, Predicate, PredicateValue


class AttributeStatistics:
    """Distribution model of one attribute."""

    #: Probability that an event carries this attribute at all.
    presence = 1.0

    def predicate_probability(self, operator: Operator, value: PredicateValue) -> float:
        """Probability that a random event fulfils ``attribute op value``."""
        positive = self._positive_probability(operator, value)
        if positive is not None:
            return min(positive, self.presence)
        # Negated operators: fulfilled iff present and positive form fails.
        complement = operator.complement
        positive = self._positive_probability(complement, value)
        if positive is None:
            raise SelectivityError("unsupported operator %r" % operator)
        return max(0.0, self.presence - min(positive, self.presence))

    def _positive_probability(
        self, operator: Operator, value: PredicateValue
    ) -> Optional[float]:
        """Probability for non-negated operators; ``None`` for negated ones."""
        if isinstance(value, frozenset):
            # Predicate validation pairs set values with the set operators
            # only; the negated one resolves through the complement above.
            if operator is Operator.IN_SET:
                return min(1.0, sum(self.prob_eq(member) for member in value))
            return None
        if operator is Operator.EQ:
            return self.prob_eq(value)
        if operator is Operator.LT:
            return self.prob_less(value, inclusive=False)
        if operator is Operator.LE:
            return self.prob_less(value, inclusive=True)
        if operator is Operator.GT:
            return max(0.0, self.presence - self.prob_less(value, inclusive=True))
        if operator is Operator.GE:
            return max(0.0, self.presence - self.prob_less(value, inclusive=False))
        if operator is Operator.PREFIX and isinstance(value, str):
            return self.prob_prefix(value)
        if operator is Operator.CONTAINS and isinstance(value, str):
            return self.prob_contains(value)
        return None

    # -- primitive probabilities (implemented by subclasses) -----------------

    def prob_eq(self, value: Value) -> float:
        raise NotImplementedError

    def prob_less(self, value: Value, inclusive: bool) -> float:
        """P(attribute present and attribute < value) (or <= when inclusive)."""
        raise NotImplementedError

    def prob_prefix(self, prefix: str) -> float:
        raise NotImplementedError

    def prob_contains(self, needle: str) -> float:
        raise NotImplementedError


def _is_numeric(value: object) -> TypeGuard[Union[int, float]]:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class CategoricalStatistics(AttributeStatistics):
    """Discrete distribution given as a value→probability mapping.

    >>> stats = CategoricalStatistics({"fiction": 0.6, "poetry": 0.4})
    >>> stats.prob_eq("fiction")
    0.6
    """

    def __init__(
        self, probabilities: Mapping[Value, float], presence: float = 1.0
    ) -> None:
        if not probabilities:
            raise SelectivityError("categorical statistics need at least one value")
        total = float(sum(probabilities.values()))
        if total <= 0:
            raise SelectivityError("probabilities must sum to a positive value")
        if not 0.0 <= presence <= 1.0:
            raise SelectivityError("presence must be within [0, 1]")
        self.presence = presence
        # Normalize to the presence mass: P(value) are conditional weights.
        self._probs: Dict[Value, float] = {
            value: presence * (probability / total)
            for value, probability in probabilities.items()
        }
        self._sorted_numeric: List[Tuple[Union[int, float], float]] = sorted(
            (value, probability)
            for value, probability in self._probs.items()
            if _is_numeric(value)
        )
        self._sorted_strings: List[Tuple[str, float]] = sorted(
            (value, probability)
            for value, probability in self._probs.items()
            if isinstance(value, str)
        )

    def prob_eq(self, value: Value) -> float:
        if isinstance(value, bool):
            return self._probs.get(value, 0.0) if isinstance(value, bool) else 0.0
        if _is_numeric(value):
            # ints and floats compare equal; probe both spellings.
            hit = self._probs.get(value)
            if hit is None and float(value).is_integer():
                hit = self._probs.get(int(value))
            return hit or 0.0
        return self._probs.get(value, 0.0)

    def prob_less(self, value: Value, inclusive: bool) -> float:
        total = 0.0
        if _is_numeric(value):
            for number, probability in self._sorted_numeric:
                if number < value or (inclusive and number == value):
                    total += probability
                else:
                    break
            return total
        if isinstance(value, str):
            for text, probability in self._sorted_strings:
                if text < value or (inclusive and text == value):
                    total += probability
                else:
                    break
            return total
        return 0.0

    def prob_prefix(self, prefix: str) -> float:
        return sum(
            probability
            for candidate, probability in self._sorted_strings
            if candidate.startswith(prefix)
        )

    def prob_contains(self, needle: str) -> float:
        return sum(
            probability
            for candidate, probability in self._sorted_strings
            if needle in candidate
        )


class ContinuousStatistics(AttributeStatistics):
    """Numeric distribution described by CDF samples at support points.

    ``support`` and ``cdf`` are parallel ascending sequences with
    ``cdf[i] = P(X <= support[i])``; probabilities between support points
    are linearly interpolated.  Point masses are assumed to be zero
    (``prob_eq`` is 0), which matches continuous quantities like prices.
    """

    def __init__(
        self,
        support: Sequence[float],
        cdf: Sequence[float],
        presence: float = 1.0,
    ) -> None:
        if len(support) != len(cdf) or len(support) < 2:
            raise SelectivityError("support and cdf must align (length >= 2)")
        support_array = np.asarray(support, dtype=np.float64)
        cdf_array = np.asarray(cdf, dtype=np.float64)
        if np.any(np.diff(support_array) <= 0):
            raise SelectivityError("support must be strictly increasing")
        if np.any(np.diff(cdf_array) < 0) or cdf_array[0] < 0 or cdf_array[-1] > 1 + 1e-9:
            raise SelectivityError("cdf must be non-decreasing within [0, 1]")
        if not 0.0 <= presence <= 1.0:
            raise SelectivityError("presence must be within [0, 1]")
        self.presence = presence
        self._support = support_array
        self._cdf = cdf_array

    def prob_eq(self, value: Value) -> float:
        return 0.0

    def prob_less(self, value: Value, inclusive: bool) -> float:
        if not _is_numeric(value):
            return 0.0
        x = float(value)
        if x <= self._support[0]:
            cdf = float(self._cdf[0]) if x == self._support[0] else 0.0
        elif x >= self._support[-1]:
            cdf = float(self._cdf[-1])
        else:
            cdf = float(np.interp(x, self._support, self._cdf))
        return self.presence * min(1.0, cdf)

    def prob_prefix(self, prefix: str) -> float:
        return 0.0

    def prob_contains(self, needle: str) -> float:
        return 0.0


class EmpiricalStatistics(AttributeStatistics):
    """Distribution estimated from observed attribute values.

    Keeps the exact value frequencies for discrete queries and sorted value
    arrays for range queries, so every probability is the sample fraction.
    """

    def __init__(self, values: Iterable[Value], total_events: int) -> None:
        values = list(values)
        if total_events <= 0:
            raise SelectivityError("total_events must be positive")
        if len(values) > total_events:
            raise SelectivityError("more values than events")
        self._total = total_events
        self.presence = len(values) / total_events
        self._frequency: Dict[Tuple[str, Value], int] = {}
        numeric: List[float] = []
        strings: List[str] = []
        self._string_counts: Dict[str, int] = {}
        for value in values:
            key = self._key(value)
            self._frequency[key] = self._frequency.get(key, 0) + 1
            if isinstance(value, bool):
                continue
            if _is_numeric(value):
                numeric.append(float(value))
            elif isinstance(value, str):
                strings.append(value)
                self._string_counts[value] = self._string_counts.get(value, 0) + 1
        self._numeric = np.sort(np.asarray(numeric, dtype=np.float64))
        self._strings = sorted(strings)

    @staticmethod
    def _key(value: Value) -> Tuple[str, Value]:
        if isinstance(value, bool):
            return ("b", value)
        if _is_numeric(value):
            return ("n", float(value))
        return ("s", value)

    def prob_eq(self, value: Value) -> float:
        return self._frequency.get(self._key(value), 0) / self._total

    def prob_less(self, value: Value, inclusive: bool) -> float:
        if _is_numeric(value):
            side: Literal["left", "right"] = "right" if inclusive else "left"
            count = int(np.searchsorted(self._numeric, float(value), side=side))
        elif isinstance(value, str):
            if inclusive:
                count = bisect.bisect_right(self._strings, value)
            else:
                count = bisect.bisect_left(self._strings, value)
        else:
            return 0.0
        return count / self._total

    def prob_prefix(self, prefix: str) -> float:
        count = sum(
            occurrences
            for candidate, occurrences in self._string_counts.items()
            if candidate.startswith(prefix)
        )
        return count / self._total

    def prob_contains(self, needle: str) -> float:
        count = sum(
            occurrences
            for candidate, occurrences in self._string_counts.items()
            if needle in candidate
        )
        return count / self._total


class EventStatistics:
    """Statistics for a whole event schema: one model per attribute.

    Unknown attributes fall back to a configurable default probability so
    estimation never fails on ad-hoc predicates (the paper's estimator is a
    heuristic, not an oracle).
    """

    def __init__(
        self,
        attributes: Mapping[str, AttributeStatistics],
        default_probability: float = 0.5,
    ) -> None:
        self._attributes = dict(attributes)
        if not 0.0 <= default_probability <= 1.0:
            raise SelectivityError("default_probability must be within [0, 1]")
        self.default_probability = default_probability

    @classmethod
    def from_events(
        cls, events: Sequence[Event], default_probability: float = 0.5
    ) -> "EventStatistics":
        """Build empirical statistics by observing a sample of events."""
        if not events:
            raise SelectivityError("cannot build statistics from zero events")
        values_by_attribute: Dict[str, List[Value]] = {}
        for event in events:
            for attribute, value in event.items():
                values_by_attribute.setdefault(attribute, []).append(value)
        models = {
            attribute: EmpiricalStatistics(values, total_events=len(events))
            for attribute, values in values_by_attribute.items()
        }
        return cls(models, default_probability=default_probability)

    def attribute(self, name: str) -> Optional[AttributeStatistics]:
        """The model for ``name``, or ``None`` when unknown."""
        return self._attributes.get(name)

    def predicate_probability(self, predicate: Predicate) -> float:
        """Probability that a random event fulfils ``predicate``."""
        model = self._attributes.get(predicate.attribute)
        if model is None:
            return self.default_probability
        probability = model.predicate_probability(predicate.operator, predicate.value)
        return min(1.0, max(0.0, probability))

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def attribute_names(self) -> List[str]:
        """Sorted names of modelled attributes."""
        return sorted(self._attributes)
