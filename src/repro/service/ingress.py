"""Micro-batching, thread-safe event admission for the service layer.

Single-event publishing through the substrate pays the per-call
overhead of :meth:`~repro.routing.network.BrokerNetwork.publish_batch`
once per event.  The :class:`Ingress` buffers submitted events and
drains them in micro-batches, so one-event-at-a-time callers ride the
columnar batch path (one index probe per bucket per *batch*, see
``docs/ARCHITECTURE.md``) for free.

The ingress is safe for **concurrent producers**: any number of threads
may :meth:`submit` at once.  Two locks split the work — a short-lived
buffer lock makes appends (and their sequence reservations) atomic, and
a re-entrant drain lock serializes flushes, so exactly one thread at a
time runs the publish/match/dispatch pipeline while the others keep
buffering behind the cheap buffer lock.  The drain lock is shared with
the owning service (see :class:`repro.service.PubSubService`), which
holds it across subscription churn: the flush-before-churn invariant
therefore survives concurrency — every event is matched against a table
that was live between its submission and its flush.

Draining groups pending events by their origin broker, preserving
submission order within each group, and publishes one
:class:`~repro.events.EventBatch` per origin.  Deliveries are observed
through the network's delivery hook (installed by
:class:`repro.service.PubSubService`), not through return values.
Sequence numbers are allocated at *submission* time (through the
service's sequencer callbacks), so the sequence a notification carries
identifies the event's submission position no matter how the ingress
grouped the stream.

Ordering contract: a flush happens when the buffer reaches
``max_batch``, on explicit :meth:`flush`, and — driven by the service
layer — before any subscription churn (subscribe/unsubscribe/replace),
so every event is matched against exactly the subscription table that
was live when it was submitted (under concurrency: a table live between
submission and flush, which is the strongest linearizable guarantee).
"""

from __future__ import annotations

import threading
from typing import Callable, ContextManager, Dict, List, Optional, Sequence, Tuple

from repro.errors import RoutingError, ServiceError
from repro.events import Event, EventBatch
from repro.routing.network import BrokerNetwork


class Ingress:
    """Buffers events per origin broker and drains them as batches.

    ``allocate_sequence``/``expect_sequences`` are the service layer's
    sequencer: the first reserves one submission-ordered sequence
    number per submitted event, the second announces each drained
    group's reserved numbers to the delivery dispatcher just before the
    group is published.  Standalone use (no service) leaves both unset.

    ``lock`` is the drain lock.  The service passes its own re-entrant
    publish lock so that flushes, delivery dispatch, and subscription
    churn all serialize on one lock; standalone ingresses create their
    own.  It must be re-entrant: sinks may trigger nested flushes.
    """

    def __init__(
        self,
        network: BrokerNetwork,
        max_batch: int = 64,
        allocate_sequence: Optional[Callable[[], int]] = None,
        expect_sequences: Optional[Callable[[Sequence[int]], None]] = None,
        lock: Optional[ContextManager[bool]] = None,
    ) -> None:
        if max_batch < 1:
            raise ServiceError("ingress max_batch must be >= 1, got %d" % max_batch)
        self.network = network
        self.max_batch = max_batch
        self._allocate_sequence = allocate_sequence
        self._expect_sequences = expect_sequences
        self._pending: List[Tuple[str, Event, Optional[int]]] = []
        #: Guards ``_pending`` appends/swaps only — held for nanoseconds,
        #: never while matching or delivering.
        self._buffer_lock = threading.Lock()
        #: Serializes drains (and, via the service, churn + dispatch).
        self._lock: ContextManager[bool] = (
            lock if lock is not None else threading.RLock()
        )

    @property
    def pending_count(self) -> int:
        """Events submitted but not yet drained."""
        with self._buffer_lock:
            return len(self._pending)

    def submit(self, broker_id: str, event: Event) -> bool:
        """Enqueue one event for publication from ``broker_id``.

        Thread-safe.  Returns ``True`` when the submission filled the
        buffer and this caller ran the resulting flush (unknown brokers
        are rejected at submit time, not at flush time).  The sequence
        reservation and the append happen atomically under the buffer
        lock, so buffer order and sequence order always agree.
        """
        if broker_id not in self.network.brokers:
            raise RoutingError("unknown broker %r" % broker_id)
        with self._buffer_lock:
            sequence = (
                self._allocate_sequence()
                if self._allocate_sequence is not None
                else None
            )
            self._pending.append((broker_id, event, sequence))
            should_flush = len(self._pending) >= self.max_batch
        # Flush outside the buffer lock: the drain takes buffer_lock
        # itself, and holding it here would invert the lock order against
        # a concurrent flusher.  A racing producer may drain our events
        # first; our flush then finds an empty (or refilled) buffer.
        if should_flush:
            self.flush()
            return True
        return False

    def flush(self) -> int:
        """Drain the buffer; returns the number of events published.

        Pending events are grouped by origin broker (groups in order of
        first submission, submission order preserved within each group)
        and each group goes out as one ``publish_batch`` call.  Drains
        are serialized on the drain lock; the buffer is snapshotted at
        entry, so events submitted concurrently with a drain wait for
        the next one (their submitting thread triggers it once the
        buffer refills to ``max_batch``).

        If a group's publication raises (a broker error, or a
        :class:`~repro.errors.DeliveryError` carrying contained sink
        failures), the groups not yet attempted are re-queued in
        submission order — with their already-reserved sequence
        numbers — before the exception propagates, so no buffered event
        is silently dropped, and any sequence announcement the failed
        group left behind is cleared so it cannot mis-sequence a later
        direct publish.
        """
        with self._lock:
            with self._buffer_lock:
                pending, self._pending = self._pending, []
            if not pending:
                return 0
            groups: Dict[str, List[Tuple[Event, Optional[int]]]] = {}
            for origin, event, sequence in pending:
                groups.setdefault(origin, []).append((event, sequence))
            remaining = list(groups)
            try:
                for origin in list(groups):
                    entries = groups[origin]
                    if self._expect_sequences is not None:
                        self._expect_sequences(
                            [
                                sequence
                                for _event, sequence in entries
                                if sequence is not None
                            ]
                        )
                    self.network.publish_batch(
                        origin, EventBatch([event for event, _sequence in entries])
                    )
                    remaining.remove(origin)
            except BaseException:
                unattempted = set(remaining) - {remaining[0]} if remaining else set()
                requeued = [entry for entry in pending if entry[0] in unattempted]
                with self._buffer_lock:
                    self._pending = requeued + self._pending
                if self._expect_sequences is not None:
                    self._expect_sequences([])
                raise
            return len(pending)
