"""Micro-batching event admission for the service layer.

Single-event publishing through the substrate pays the per-call
overhead of :meth:`~repro.routing.network.BrokerNetwork.publish_batch`
once per event.  The :class:`Ingress` buffers submitted events and
drains them in micro-batches, so one-event-at-a-time callers ride the
columnar batch path (one index probe per bucket per *batch*, see
``docs/ARCHITECTURE.md``) for free.

Draining groups pending events by their origin broker, preserving
submission order within each group, and publishes one
:class:`~repro.events.EventBatch` per origin.  Deliveries are observed
through the network's delivery hook (installed by
:class:`repro.service.PubSubService`), not through return values.
Sequence numbers are allocated at *submission* time (through the
service's sequencer callbacks), so the sequence a notification carries
identifies the event's submission position no matter how the ingress
grouped the stream.

Ordering contract: a flush happens when the buffer reaches
``max_batch``, on explicit :meth:`flush`, and — driven by the service
layer — before any subscription churn (subscribe/unsubscribe/replace),
so every event is matched against exactly the subscription table that
was live when it was submitted.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import RoutingError, ServiceError
from repro.events import Event, EventBatch
from repro.routing.network import BrokerNetwork


class Ingress:
    """Buffers events per origin broker and drains them as batches.

    ``allocate_sequence``/``expect_sequences`` are the service layer's
    sequencer: the first reserves one submission-ordered sequence
    number per submitted event, the second announces each drained
    group's reserved numbers to the delivery dispatcher just before the
    group is published.  Standalone use (no service) leaves both unset.
    """

    def __init__(
        self,
        network: BrokerNetwork,
        max_batch: int = 64,
        allocate_sequence: Optional[Callable[[], int]] = None,
        expect_sequences: Optional[Callable[[Sequence[int]], None]] = None,
    ) -> None:
        if max_batch < 1:
            raise ServiceError("ingress max_batch must be >= 1, got %d" % max_batch)
        self.network = network
        self.max_batch = max_batch
        self._allocate_sequence = allocate_sequence
        self._expect_sequences = expect_sequences
        self._pending: List[Tuple[str, Event, Optional[int]]] = []

    @property
    def pending_count(self) -> int:
        """Events submitted but not yet drained."""
        return len(self._pending)

    def submit(self, broker_id: str, event: Event) -> bool:
        """Enqueue one event for publication from ``broker_id``.

        Returns ``True`` when the submission filled the buffer and
        triggered a flush (unknown brokers are rejected at submit time,
        not at flush time).
        """
        if broker_id not in self.network.brokers:
            raise RoutingError("unknown broker %r" % broker_id)
        sequence = (
            self._allocate_sequence() if self._allocate_sequence is not None else None
        )
        self._pending.append((broker_id, event, sequence))
        if len(self._pending) >= self.max_batch:
            self.flush()
            return True
        return False

    def flush(self) -> int:
        """Drain the buffer; returns the number of events published.

        Pending events are grouped by origin broker (groups in order of
        first submission, submission order preserved within each group)
        and each group goes out as one ``publish_batch`` call.  If a
        group's publication raises (a broker error, a sink that
        raises), the groups not yet attempted are re-queued in
        submission order — with their already-reserved sequence
        numbers — before the exception propagates, so no buffered event
        is silently dropped.
        """
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        groups: Dict[str, List[Tuple[Event, Optional[int]]]] = {}
        for origin, event, sequence in pending:
            groups.setdefault(origin, []).append((event, sequence))
        remaining = list(groups)
        try:
            for origin in list(groups):
                entries = groups[origin]
                if self._expect_sequences is not None:
                    self._expect_sequences(
                        [sequence for _event, sequence in entries if sequence is not None]
                    )
                self.network.publish_batch(
                    origin, EventBatch([event for event, _sequence in entries])
                )
                remaining.remove(origin)
        except BaseException:
            unattempted = set(remaining) - {remaining[0]} if remaining else set()
            self._pending = [
                entry for entry in pending if entry[0] in unattempted
            ] + self._pending
            raise
        return len(pending)
