"""repro.service — the session/handle/sink API over the broker network.

This package is the primary public surface for *using* the pub/sub
system (as opposed to experimenting on its internals):

* :class:`PubSubService` wraps a :class:`~repro.routing.network.
  BrokerNetwork` (or builds one from a topology);
* :meth:`PubSubService.connect` opens a :class:`Session` for one client
  at one broker;
* :meth:`Session.subscribe` registers a filter tree and returns an
  opaque :class:`SubscriptionHandle` (server-assigned identity, with
  ``replace``/``unsubscribe``) — no caller-chosen global ids;
* deliveries are pushed into pluggable :class:`DeliverySink`\\ s
  (:class:`CollectingSink`, :class:`CallbackSink`,
  :class:`CountingSink`) as :class:`Notification` records;
* publishing rides the micro-batching :class:`Ingress`, so even
  one-event-at-a-time producers execute on the vectorized columnar
  batch path.

See ``docs/ARCHITECTURE.md`` ("Service layer") for the dataflow.
"""

from repro.service.ingress import Ingress
from repro.service.service import PubSubService
from repro.service.session import Session, SubscriptionHandle
from repro.service.sinks import (
    CallbackSink,
    CollectingSink,
    CountingSink,
    DeliverySink,
    Notification,
)

__all__ = [
    "CallbackSink",
    "CollectingSink",
    "CountingSink",
    "DeliverySink",
    "Ingress",
    "Notification",
    "PubSubService",
    "Session",
    "SubscriptionHandle",
]
