"""repro.service — the session/handle/sink API over the broker network.

This package is the primary public surface for *using* the pub/sub
system (as opposed to experimenting on its internals):

* :class:`PubSubService` wraps a :class:`~repro.routing.network.
  BrokerNetwork` (or builds one from a topology);
* :meth:`PubSubService.connect` opens a :class:`Session` for one client
  at one broker;
* :meth:`Session.subscribe` registers a filter tree and returns an
  opaque :class:`SubscriptionHandle` (server-assigned identity, with
  ``replace``/``unsubscribe``) — no caller-chosen global ids;
* deliveries are pushed into pluggable :class:`DeliverySink`\\ s
  (:class:`CollectingSink`, :class:`CallbackSink`,
  :class:`CountingSink`, and the loop-bridging
  :class:`AsyncDeliverySink`) as :class:`Notification` records;
* publishing rides the micro-batching :class:`Ingress` — thread-safe,
  so any number of concurrent producers execute on the vectorized
  columnar batch path;
* slow consumers get explicit backpressure: sessions connected with
  ``queue_capacity`` stage deliveries in a :class:`BoundedDeliveryQueue`
  with a ``block``/``drop_oldest``/``disconnect`` overflow policy, and
  everything refused is recorded in a :class:`DeadLetterSink`.

See ``docs/ARCHITECTURE.md`` ("Service layer" and "Concurrent ingress &
backpressure") for the dataflow and locking discipline.
"""

from repro.service.backpressure import (
    DEAD_LETTER_REASONS,
    POLICIES,
    BoundedDeliveryQueue,
    DeadLetter,
    DeadLetterSink,
)
from repro.service.ingress import Ingress
from repro.service.service import PubSubService
from repro.service.session import Session, SubscriptionHandle
from repro.service.sinks import (
    AsyncDeliverySink,
    CallbackSink,
    CollectingSink,
    CountingSink,
    DeliverySink,
    Notification,
)

__all__ = [
    "AsyncDeliverySink",
    "BoundedDeliveryQueue",
    "CallbackSink",
    "CollectingSink",
    "CountingSink",
    "DEAD_LETTER_REASONS",
    "DeadLetter",
    "DeadLetterSink",
    "DeliverySink",
    "Ingress",
    "Notification",
    "POLICIES",
    "PubSubService",
    "Session",
    "SubscriptionHandle",
]
