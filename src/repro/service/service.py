"""The public service facade: sessions over a broker-network substrate.

:class:`PubSubService` is the primary API of the library for clients of
the pub/sub system (the substrate, :class:`repro.routing.network.
BrokerNetwork`, stays directly usable for experiments and routing
research).  It owns

* a session registry — :meth:`connect` attaches one named client to one
  broker and returns a :class:`~repro.service.session.Session`;
* the service-wide micro-batching :class:`~repro.service.ingress.
  Ingress` every session publishes through;
* the network's delivery hook, through which every published batch's
  deliveries are fanned out to the subscribers' sinks.

Dataflow (see ``docs/ARCHITECTURE.md`` for the full diagram)::

    Session.publish ──▶ Ingress buffer ──(max_batch / flush / churn)──▶
      BrokerNetwork.publish_batch ──▶ delivery hook ──▶ DeliverySinks

The service is safe for **concurrent producers**: any number of threads
may publish at once (submissions batch under the ingress buffer lock),
and one re-entrant *publish lock* serializes the drain/dispatch pipeline
with subscription churn and session registry changes, so a flush still
runs matching to completion and sinks see their notifications before the
flush returns.  Slow consumers get explicit backpressure policy through
per-session :class:`~repro.service.backpressure.BoundedDeliveryQueue`\\ s
(``connect(queue_capacity=...)``); sink failures are contained per sink
and surfaced as :class:`~repro.errors.DeliveryError` (or routed to an
``on_sink_error`` handler).  See ``docs/ARCHITECTURE.md`` ("Concurrent
ingress & backpressure") for the locking discipline.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.adaptive.controller import AdaptiveConfig, AdaptiveController
from repro.errors import DeliveryError, RoutingError, ServiceError
from repro.events import Event, EventBatch
from repro.matching.sharded import ExecutorSpec
from repro.routing.metrics import CostModel
from repro.routing.network import BrokerNetwork, PublishResult
from repro.routing.topology import Topology
from repro.subscriptions.nodes import Node
from repro.subscriptions.subscription import Subscription

from repro.service.backpressure import BoundedDeliveryQueue, DeadLetterSink
from repro.service.ingress import Ingress
from repro.service.session import Session, SubscriptionHandle
from repro.service.sinks import CollectingSink, DeliverySink, Notification


class PubSubService:
    """Sessions, handles, and sinks over a broker network.

    Construct from a topology (the service builds the network) or wrap
    an existing :class:`BrokerNetwork`.  With a topology,
    ``shards=K`` builds every broker with a sharded matching engine —
    ``PubSubService(topology=..., shards=4)`` lets each broker's
    ``match_batch`` use up to four cores, and ``executor="processes"``
    moves each shard into a persistent worker process fed shared-memory
    batches (see :mod:`repro.matching.sharded`); results are identical
    to the unsharded default.  Use the service as a context manager (or
    call :meth:`close`) so worker pools are torn down.
    ``adaptive=AdaptiveConfig(...)`` switches on the runtime pruning
    loop (see :mod:`repro.adaptive`): the dispatch path feeds live event
    statistics, and every ``cycle_events`` events the controller —
    exposed as ``service.adaptive`` — re-prunes or un-prunes the
    inner-broker forwarding tables.  Delivery to subscribers is
    unaffected: home brokers always keep exact trees.

    >>> from repro.routing.topology import line_topology
    >>> from repro.subscriptions import P
    >>> service = PubSubService(topology=line_topology(2), max_batch=4)
    >>> alice = service.connect("b1", "alice")
    >>> handle = alice.subscribe(P("x") == 1)
    >>> publisher = service.connect("b0", "publisher")
    >>> publisher.publish(Event({"x": 1}))
    False
    >>> service.flush()
    1
    >>> [n.subscription_id for n in alice.sink.notifications]
    [0]
    """

    def __init__(
        self,
        network: Optional[BrokerNetwork] = None,
        *,
        topology: Optional[Topology] = None,
        cost_model: Optional[CostModel] = None,
        max_batch: int = 64,
        shards: Optional[int] = None,
        executor: Optional[ExecutorSpec] = None,
        on_sink_error: Optional[Callable[[Notification, BaseException], None]] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        if network is None:
            if topology is None:
                raise ServiceError(
                    "PubSubService needs a network or a topology to build one"
                )
            network = BrokerNetwork(
                topology,
                cost_model,
                shards=shards,
                executor="threads" if executor is None else executor,
            )
        elif (
            topology is not None
            or cost_model is not None
            or shards is not None
            or executor is not None
        ):
            raise ServiceError(
                "pass either an existing network or "
                "topology/cost_model/shards/executor, not both"
            )
        self._network = network
        # The publish lock serializes ingress drains, delivery dispatch,
        # subscription churn, and session-registry changes.  Re-entrant:
        # a flush dispatches under it, and churn flushes under it.
        self._publish_lock = threading.RLock()
        # Sequence allocation gets its own tiny lock so concurrent
        # producers can reserve numbers while a drain holds the publish
        # lock (lock order: buffer/publish -> sequence, never reversed).
        self._sequence_lock = threading.Lock()
        self.ingress = Ingress(
            network,
            max_batch=max_batch,
            allocate_sequence=self._allocate_sequence,
            expect_sequences=self._expect_sequences,
            lock=self._publish_lock,
        )
        self._sessions: Dict[Tuple[str, str], Session] = {}
        self._session_tokens: Dict[str, Session] = {}
        self._handle_sinks: Dict[int, DeliverySink] = {}
        self._on_sink_error = on_sink_error
        self._sequence = 0
        self._expected_sequences: Deque[int] = deque()
        self._closed = False
        #: The adaptive pruning loop (``None`` unless ``adaptive=`` was
        #: passed).  Fed from :meth:`_dispatch`; its cycles run under the
        #: publish lock, so they serialize with churn and flushes.
        self.adaptive: Optional[AdaptiveController] = (
            AdaptiveController(self, adaptive) if adaptive is not None else None
        )
        network.set_delivery_hook(self._dispatch)

    # -- introspection -------------------------------------------------------

    @property
    def network(self) -> BrokerNetwork:
        """The underlying broker-network substrate."""
        return self._network

    @property
    def publish_count(self) -> int:
        """Events sequenced by the service so far (the sequence number
        the *next* submitted or dispatched event will be assigned)."""
        return self._sequence

    @property
    def sessions(self) -> Tuple[Session, ...]:
        """All open sessions."""
        return tuple(self._sessions.values())

    # -- sessions ------------------------------------------------------------

    def connect(
        self,
        broker_id: str,
        client: str,
        sink: Optional[DeliverySink] = None,
        *,
        queue_capacity: Optional[int] = None,
        policy: str = "block",
        dead_letter: Optional[DeadLetterSink] = None,
        token: Optional[str] = None,
    ) -> Session:
        """Open a session for ``client`` at ``broker_id``.

        ``sink`` receives the session's deliveries; when omitted, a
        fresh :class:`CollectingSink` is attached.  At most one open
        session per ``(broker_id, client)`` pair — deliveries are
        addressed to that pair by the substrate.

        ``queue_capacity`` switches the session from direct (in-flush)
        delivery to a :class:`~repro.service.backpressure.
        BoundedDeliveryQueue` of that capacity: dispatch stages
        notifications, the consumer drives delivery with
        ``session.poll()``/``session.drain()``, and ``policy`` (one of
        ``"block"``/``"drop_oldest"``/``"disconnect"``) decides what an
        overflow does.  Everything refused lands in ``dead_letter`` (a
        fresh :class:`~repro.service.backpressure.DeadLetterSink` when
        omitted) — ``policy``/``dead_letter`` therefore require
        ``queue_capacity``.

        ``token`` registers the session in the service's resume
        registry: as long as the session stays open, :meth:`resume`
        returns it for that token.  This is the hook the network
        transport (:mod:`repro.transport`) uses to reattach a
        reconnecting client to its still-open session (and with it the
        bounded queue holding its undelivered tail).
        """
        self._require_open()
        if broker_id not in self._network.brokers:
            raise RoutingError("unknown broker %r" % broker_id)
        queue: Optional[BoundedDeliveryQueue] = None
        if queue_capacity is not None:
            queue = BoundedDeliveryQueue(
                queue_capacity, policy=policy, dead_letter=dead_letter
            )
        elif policy != "block" or dead_letter is not None:
            raise ServiceError(
                "policy/dead_letter only apply to bounded-queue sessions; "
                "pass queue_capacity as well"
            )
        with self._publish_lock:
            key = (broker_id, client)
            if key in self._sessions:
                raise ServiceError(
                    "client %r already has an open session at broker %s"
                    % (client, broker_id)
                )
            if token is not None and token in self._session_tokens:
                raise ServiceError(
                    "session token %r is already registered" % token
                )
            session = Session(
                self,
                broker_id,
                client,
                # ``is not None``, not truthiness: an empty CollectingSink
                # has len() == 0 and would be silently replaced.
                sink if sink is not None else CollectingSink(),
                queue=queue,
                token=token,
            )
            self._sessions[key] = session
            if token is not None:
                self._session_tokens[token] = session
        return session

    def resume(self, token: str) -> Session:
        """The still-open session registered under ``token``.

        The resume hook for reconnecting transports: a client that
        presents its session token gets its original :class:`Session`
        back — same subscriptions, same bounded queue (and therefore
        the undelivered tail staged in it), same ``delivery_seq``
        counter.  Raises :class:`~repro.errors.ServiceError` when the
        token is unknown or the session has since closed.
        """
        self._require_open()
        with self._publish_lock:
            session = self._session_tokens.get(token)
            if session is None or session.closed:
                raise ServiceError(
                    "no open session registered under token %r" % token
                )
            return session

    def _forget_session(self, session: Session) -> None:
        with self._publish_lock:
            self._sessions.pop((session.broker_id, session.client), None)
            if session.token is not None:
                self._session_tokens.pop(session.token, None)

    # -- publishing ----------------------------------------------------------

    def publish(self, broker_id: str, event: Event) -> bool:
        """Submit one event via the micro-batching ingress.

        Session-less publishing for producers that are not subscribers;
        equivalent to ``connect(...).publish(event)`` without the
        session.  Returns ``True`` when the submission triggered a
        flush.
        """
        self._require_open()
        return self.ingress.submit(broker_id, event)

    def publish_batch(
        self, broker_id: str, events: Union[Sequence[Event], EventBatch]
    ) -> List[PublishResult]:
        """Publish a pre-assembled batch immediately (no buffering).

        Pending ingress events are flushed first so ordering is
        preserved; deliveries flow to sinks *and* are returned.
        """
        self._require_open()
        with self._publish_lock:
            self.flush()
            return self._network.publish_batch(broker_id, events)

    def flush(self) -> int:
        """Drain the ingress; returns the number of events published."""
        return self.ingress.flush()

    # -- subscription plumbing (called by Session / SubscriptionHandle) ------

    def _subscribe(
        self, session: Session, tree: Node, sink: Optional[DeliverySink]
    ) -> SubscriptionHandle:
        # The publish lock is held across flush *and* table change, so a
        # concurrent producer's events land either wholly before or
        # wholly after the churn — never against a half-applied table.
        with self._publish_lock:
            self.flush()  # events already submitted must not see the new table
            subscription_id = self._network.allocate_subscription_id()
            subscription = self._network.subscribe(
                session.broker_id,
                session.client,
                tree,
                subscription_id=subscription_id,
            )
            handle = SubscriptionHandle(session, subscription)
            if sink is not None:
                self._handle_sinks[subscription.id] = sink
            return handle

    def _unsubscribe(self, handle: SubscriptionHandle) -> None:
        with self._publish_lock:
            self.flush()
            self._network.unsubscribe(handle.id)
            self._handle_sinks.pop(handle.id, None)

    def _replace(self, handle: SubscriptionHandle, tree: Node) -> Subscription:
        with self._publish_lock:
            self.flush()
            return self._network.replace_subscription(handle.id, tree)

    # -- delivery fan-out ----------------------------------------------------

    def _allocate_sequence(self) -> int:
        """Reserve the next service-wide event sequence number.

        The ingress calls this at *submission* time, so the sequence a
        notification carries identifies the event's submission position
        regardless of how the ingress grouped the stream into batches.
        Thread-safe: concurrent producers each get a distinct number.
        """
        with self._sequence_lock:
            sequence = self._sequence
            self._sequence += 1
            return sequence

    def _expect_sequences(self, sequences: Sequence[int]) -> None:
        """Announce the reserved sequences of the batch about to publish.

        The previous batch consumed its announcement in full unless its
        publication raised mid-dispatch; clearing first makes a failed
        batch's leftovers harmless instead of mis-sequencing this one.
        """
        self._expected_sequences.clear()
        self._expected_sequences.extend(sequences)

    def _sink_for(self, session: Session, subscription_id: int) -> DeliverySink:
        """The sink a (possibly queued) notification should reach.

        Per-handle sinks override the session sink; once a handle is
        unsubscribed, still-staged notifications fall back to the
        session sink.
        """
        return self._handle_sinks.get(subscription_id, session.sink)

    def _dispatch(
        self, events: Sequence[Event], results: Sequence[PublishResult]
    ) -> None:
        """The network delivery hook: route deliveries to sinks.

        Fires for *every* publish on the substrate, including direct
        ``BrokerNetwork`` calls, so substrate users and service sessions
        can coexist on one network.  Events arriving from the ingress
        carry their submission-time sequence numbers (announced via
        :meth:`_expect_sequences`); direct publishes are sequenced here.
        Deliveries addressed to a client without an open session are
        dropped (the publisher still sees them in its
        ``PublishResult``).

        Runs under the publish lock (re-entrantly when the publish came
        from our own flush), so dispatch — and therefore sink order and
        per-session ``delivery_seq`` stamping — is serialized even when
        the substrate is published directly from several threads.

        Sink failures are **contained**: a raising sink never stops the
        remaining deliveries of the batch.  Contained failures go to the
        service's ``on_sink_error`` handler, or — when none is set — are
        re-raised together as one :class:`~repro.errors.DeliveryError`
        after the batch fully dispatched.  Bounded-queue sessions never
        raise here at all: their queue applies its backpressure policy
        and dead-letters refusals.
        """
        with self._publish_lock:
            failures: List[Tuple[Notification, BaseException]] = []
            for event, result in zip(events, results):
                if self._expected_sequences:
                    sequence = self._expected_sequences.popleft()
                else:
                    sequence = self._allocate_sequence()
                for delivery in result.deliveries:
                    session = self._sessions.get(
                        (delivery.broker_id, delivery.client)
                    )
                    handle_sink = self._handle_sinks.get(delivery.subscription_id)
                    if session is None and handle_sink is None:
                        continue
                    notification = Notification(
                        event,
                        sequence,
                        delivery.client,
                        delivery.broker_id,
                        delivery.subscription_id,
                        session._next_delivery_seq() if session is not None else -1,
                    )
                    if session is not None and session.queue is not None:
                        session._enqueue(notification)
                        continue
                    if handle_sink is not None:
                        sink = handle_sink
                    else:
                        assert session is not None
                        sink = session.sink
                    try:
                        sink.deliver(notification)
                    except Exception as error:
                        failures.append((notification, error))
            if self.adaptive is not None:
                self.adaptive._after_dispatch(list(events))
            if failures:
                if self._on_sink_error is not None:
                    for notification, error in failures:
                        self._on_sink_error(notification, error)
                else:
                    raise DeliveryError(failures)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush, close every session, and release the delivery hook.

        The wrapped network remains usable as a plain substrate
        afterwards (a new service can be attached to it): broker shard
        pools are shut down here, but sharded matchers rebuild theirs
        lazily on the next batch.
        """
        if self._closed:
            return
        self.flush()
        for session in list(self._sessions.values()):
            session.close()
        self._network.set_delivery_hook(None)
        self._network.close()
        self._closed = True

    def __enter__(self) -> "PubSubService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    def __repr__(self) -> str:
        return "PubSubService(%d brokers, %d sessions, pending=%d%s)" % (
            len(self._network.brokers),
            len(self._sessions),
            self.ingress.pending_count,
            ", closed" if self._closed else "",
        )
