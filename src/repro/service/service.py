"""The public service facade: sessions over a broker-network substrate.

:class:`PubSubService` is the primary API of the library for clients of
the pub/sub system (the substrate, :class:`repro.routing.network.
BrokerNetwork`, stays directly usable for experiments and routing
research).  It owns

* a session registry — :meth:`connect` attaches one named client to one
  broker and returns a :class:`~repro.service.session.Session`;
* the service-wide micro-batching :class:`~repro.service.ingress.
  Ingress` every session publishes through;
* the network's delivery hook, through which every published batch's
  deliveries are fanned out to the subscribers' sinks.

Dataflow (see ``docs/ARCHITECTURE.md`` for the full diagram)::

    Session.publish ──▶ Ingress buffer ──(max_batch / flush / churn)──▶
      BrokerNetwork.publish_batch ──▶ delivery hook ──▶ DeliverySinks

The service is synchronous and single-threaded, like the substrate it
wraps: a flush runs matching to completion and sinks see their
notifications before the flush returns.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import RoutingError, ServiceError
from repro.events import Event, EventBatch
from repro.matching.sharded import ExecutorSpec
from repro.routing.metrics import CostModel
from repro.routing.network import BrokerNetwork, PublishResult
from repro.routing.topology import Topology
from repro.subscriptions.nodes import Node
from repro.subscriptions.subscription import Subscription

from repro.service.ingress import Ingress
from repro.service.session import Session, SubscriptionHandle
from repro.service.sinks import CollectingSink, DeliverySink, Notification


class PubSubService:
    """Sessions, handles, and sinks over a broker network.

    Construct from a topology (the service builds the network) or wrap
    an existing :class:`BrokerNetwork`.  With a topology,
    ``shards=K`` builds every broker with a sharded matching engine —
    ``PubSubService(topology=..., shards=4)`` lets each broker's
    ``match_batch`` use up to four cores, and ``executor="processes"``
    moves each shard into a persistent worker process fed shared-memory
    batches (see :mod:`repro.matching.sharded`); results are identical
    to the unsharded default.  Use the service as a context manager (or
    call :meth:`close`) so worker pools are torn down.

    >>> from repro.routing.topology import line_topology
    >>> from repro.subscriptions import P
    >>> service = PubSubService(topology=line_topology(2), max_batch=4)
    >>> alice = service.connect("b1", "alice")
    >>> handle = alice.subscribe(P("x") == 1)
    >>> publisher = service.connect("b0", "publisher")
    >>> publisher.publish(Event({"x": 1}))
    False
    >>> service.flush()
    1
    >>> [n.subscription_id for n in alice.sink.notifications]
    [0]
    """

    def __init__(
        self,
        network: Optional[BrokerNetwork] = None,
        *,
        topology: Optional[Topology] = None,
        cost_model: Optional[CostModel] = None,
        max_batch: int = 64,
        shards: Optional[int] = None,
        executor: Optional[ExecutorSpec] = None,
    ) -> None:
        if network is None:
            if topology is None:
                raise ServiceError(
                    "PubSubService needs a network or a topology to build one"
                )
            network = BrokerNetwork(
                topology,
                cost_model,
                shards=shards,
                executor="threads" if executor is None else executor,
            )
        elif (
            topology is not None
            or cost_model is not None
            or shards is not None
            or executor is not None
        ):
            raise ServiceError(
                "pass either an existing network or "
                "topology/cost_model/shards/executor, not both"
            )
        self._network = network
        self.ingress = Ingress(
            network,
            max_batch=max_batch,
            allocate_sequence=self._allocate_sequence,
            expect_sequences=self._expect_sequences,
        )
        self._sessions: Dict[Tuple[str, str], Session] = {}
        self._handle_sinks: Dict[int, DeliverySink] = {}
        self._sequence = 0
        self._expected_sequences: Deque[int] = deque()
        self._closed = False
        network.set_delivery_hook(self._dispatch)

    # -- introspection -------------------------------------------------------

    @property
    def network(self) -> BrokerNetwork:
        """The underlying broker-network substrate."""
        return self._network

    @property
    def publish_count(self) -> int:
        """Events sequenced by the service so far (the sequence number
        the *next* submitted or dispatched event will be assigned)."""
        return self._sequence

    @property
    def sessions(self) -> Tuple[Session, ...]:
        """All open sessions."""
        return tuple(self._sessions.values())

    # -- sessions ------------------------------------------------------------

    def connect(
        self,
        broker_id: str,
        client: str,
        sink: Optional[DeliverySink] = None,
    ) -> Session:
        """Open a session for ``client`` at ``broker_id``.

        ``sink`` receives the session's deliveries; when omitted, a
        fresh :class:`CollectingSink` is attached.  At most one open
        session per ``(broker_id, client)`` pair — deliveries are
        addressed to that pair by the substrate.
        """
        self._require_open()
        if broker_id not in self._network.brokers:
            raise RoutingError("unknown broker %r" % broker_id)
        key = (broker_id, client)
        if key in self._sessions:
            raise ServiceError(
                "client %r already has an open session at broker %s"
                % (client, broker_id)
            )
        session = Session(self, broker_id, client, sink or CollectingSink())
        self._sessions[key] = session
        return session

    def _forget_session(self, session: Session) -> None:
        self._sessions.pop((session.broker_id, session.client), None)

    # -- publishing ----------------------------------------------------------

    def publish(self, broker_id: str, event: Event) -> bool:
        """Submit one event via the micro-batching ingress.

        Session-less publishing for producers that are not subscribers;
        equivalent to ``connect(...).publish(event)`` without the
        session.  Returns ``True`` when the submission triggered a
        flush.
        """
        self._require_open()
        return self.ingress.submit(broker_id, event)

    def publish_batch(
        self, broker_id: str, events: Union[Sequence[Event], EventBatch]
    ) -> List[PublishResult]:
        """Publish a pre-assembled batch immediately (no buffering).

        Pending ingress events are flushed first so ordering is
        preserved; deliveries flow to sinks *and* are returned.
        """
        self._require_open()
        self.flush()
        return self._network.publish_batch(broker_id, events)

    def flush(self) -> int:
        """Drain the ingress; returns the number of events published."""
        return self.ingress.flush()

    # -- subscription plumbing (called by Session / SubscriptionHandle) ------

    def _subscribe(
        self, session: Session, tree: Node, sink: Optional[DeliverySink]
    ) -> SubscriptionHandle:
        self.flush()  # events already submitted must not see the new table
        subscription_id = self._network.allocate_subscription_id()
        subscription = self._network.subscribe(
            session.broker_id, session.client, tree, subscription_id=subscription_id
        )
        handle = SubscriptionHandle(session, subscription)
        if sink is not None:
            self._handle_sinks[subscription.id] = sink
        return handle

    def _unsubscribe(self, handle: SubscriptionHandle) -> None:
        self.flush()
        self._network.unsubscribe(handle.id)
        self._handle_sinks.pop(handle.id, None)

    def _replace(self, handle: SubscriptionHandle, tree: Node) -> Subscription:
        self.flush()
        return self._network.replace_subscription(handle.id, tree)

    # -- delivery fan-out ----------------------------------------------------

    def _allocate_sequence(self) -> int:
        """Reserve the next service-wide event sequence number.

        The ingress calls this at *submission* time, so the sequence a
        notification carries identifies the event's submission position
        regardless of how the ingress grouped the stream into batches.
        """
        sequence = self._sequence
        self._sequence += 1
        return sequence

    def _expect_sequences(self, sequences: Sequence[int]) -> None:
        """Announce the reserved sequences of the batch about to publish.

        The previous batch consumed its announcement in full unless its
        publication raised mid-dispatch; clearing first makes a failed
        batch's leftovers harmless instead of mis-sequencing this one.
        """
        self._expected_sequences.clear()
        self._expected_sequences.extend(sequences)

    def _dispatch(
        self, events: Sequence[Event], results: Sequence[PublishResult]
    ) -> None:
        """The network delivery hook: route deliveries to sinks.

        Fires for *every* publish on the substrate, including direct
        ``BrokerNetwork`` calls, so substrate users and service sessions
        can coexist on one network.  Events arriving from the ingress
        carry their submission-time sequence numbers (announced via
        :meth:`_expect_sequences`); direct publishes are sequenced here.
        Deliveries addressed to a client without an open session are
        dropped (the publisher still sees them in its
        ``PublishResult``).
        """
        for event, result in zip(events, results):
            if self._expected_sequences:
                sequence = self._expected_sequences.popleft()
            else:
                sequence = self._allocate_sequence()
            for delivery in result.deliveries:
                sink = self._handle_sinks.get(delivery.subscription_id)
                if sink is None:
                    session = self._sessions.get(
                        (delivery.broker_id, delivery.client)
                    )
                    if session is None:
                        continue
                    sink = session.sink
                sink.deliver(
                    Notification(
                        event,
                        sequence,
                        delivery.client,
                        delivery.broker_id,
                        delivery.subscription_id,
                    )
                )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush, close every session, and release the delivery hook.

        The wrapped network remains usable as a plain substrate
        afterwards (a new service can be attached to it): broker shard
        pools are shut down here, but sharded matchers rebuild theirs
        lazily on the next batch.
        """
        if self._closed:
            return
        self.flush()
        for session in list(self._sessions.values()):
            session.close()
        self._network.set_delivery_hook(None)
        self._network.close()
        self._closed = True

    def __enter__(self) -> "PubSubService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    def __repr__(self) -> str:
        return "PubSubService(%d brokers, %d sessions, pending=%d%s)" % (
            len(self._network.brokers),
            len(self._sessions),
            self.ingress.pending_count,
            ", closed" if self._closed else "",
        )
