"""Client sessions and opaque subscription handles.

A :class:`Session` is one client's attachment to one broker, created by
:meth:`repro.service.PubSubService.connect`.  Subscribing through a
session yields a :class:`SubscriptionHandle` — the service-layer
replacement for the substrate's caller-chosen global integer ids: the
id is allocated by the network, carried opaquely by the handle, and the
handle itself is the capability to :meth:`~SubscriptionHandle.replace`
or :meth:`~SubscriptionHandle.unsubscribe` the subscription.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, List, Optional, Tuple, Type

from repro.errors import ServiceError
from repro.events import Event
from repro.subscriptions.nodes import Node
from repro.subscriptions.subscription import Subscription

from repro.service.backpressure import BoundedDeliveryQueue
from repro.service.sinks import DeliverySink, Notification

if TYPE_CHECKING:
    from repro.service.service import PubSubService


class SubscriptionHandle:
    """An opaque, live reference to one registered subscription.

    Created by :meth:`Session.subscribe`; never constructed by callers.
    The underlying global id is exposed read-only (``handle.id``) for
    interoperability with the substrate (pruning schedules, routing
    tables), but service-layer code should treat handles as the
    identity.
    """

    __slots__ = ("_session", "_subscription", "_active")

    def __init__(self, session: "Session", subscription: Subscription) -> None:
        self._session = session
        self._subscription = subscription
        self._active = True

    @property
    def id(self) -> int:
        """The server-assigned global subscription id."""
        return self._subscription.id

    @property
    def tree(self) -> Node:
        """The currently registered (normalized) filter tree."""
        return self._subscription.tree

    @property
    def subscription(self) -> Subscription:
        """The registered :class:`Subscription` artifact."""
        return self._subscription

    @property
    def session(self) -> "Session":
        """The session that owns this handle."""
        return self._session

    @property
    def active(self) -> bool:
        """``False`` once unsubscribed (directly or via session close)."""
        return self._active

    def replace(self, tree: Node) -> None:
        """Swap the subscription's filter tree everywhere, keeping its id.

        Pending ingress events are flushed first, so the old tree sees
        exactly the events submitted while it was live.
        """
        self._require_active()
        self._subscription = self._session._service._replace(self, tree)

    def unsubscribe(self) -> None:
        """Withdraw the subscription from the whole network."""
        self._require_active()
        self._session._unsubscribe(self)

    def _require_active(self) -> None:
        if not self._active:
            raise ServiceError(
                "subscription handle %d is no longer active" % self._subscription.id
            )

    def __repr__(self) -> str:
        return "SubscriptionHandle(id=%d, client=%r, active=%s)" % (
            self._subscription.id,
            self._session.client,
            self._active,
        )


class Session:
    """One client's attachment to one broker of the service.

    Sessions publish through the service's micro-batching ingress and
    receive deliveries through their :class:`DeliverySink` — pushed
    synchronously from the flush by default, or staged in a
    :class:`~repro.service.backpressure.BoundedDeliveryQueue` when the
    session was connected with ``queue_capacity`` (the consumer then
    drives delivery with :meth:`poll`/:meth:`drain`, and the queue's
    backpressure policy decides what happens when it lags).  They are
    context managers: leaving the ``with`` block closes the session and
    withdraws all its subscriptions.
    """

    def __init__(
        self,
        service: "PubSubService",
        broker_id: str,
        client: str,
        sink: DeliverySink,
        queue: Optional[BoundedDeliveryQueue] = None,
        token: Optional[str] = None,
    ) -> None:
        self._service = service
        self._broker_id = broker_id
        self._client = client
        self._sink = sink
        self._queue = queue
        self._token = token
        self._handles: List[SubscriptionHandle] = []
        self._closed = False
        # close() must be idempotent under concurrency: a transport
        # tearing down a lost connection and a service-wide close may
        # race, and the loser must return instead of double-withdrawing
        # subscriptions.  check-and-set only — teardown runs outside
        # the lock so a sink that closes its own session re-entrantly
        # (during the unsubscribe flush) cannot deadlock.
        self._close_lock = threading.Lock()
        #: Next per-session delivery sequence number; bumped by the
        #: service's dispatcher (under its publish lock) for every
        #: notification addressed to this session.
        self._delivery_seq = 0

    @property
    def broker_id(self) -> str:
        """The broker this session is attached to."""
        return self._broker_id

    @property
    def client(self) -> str:
        """The client name deliveries are addressed to."""
        return self._client

    @property
    def sink(self) -> DeliverySink:
        """The session's delivery sink (per-handle sinks override it)."""
        return self._sink

    @property
    def queue(self) -> Optional[BoundedDeliveryQueue]:
        """The bounded delivery queue, or ``None`` for direct delivery."""
        return self._queue

    @property
    def token(self) -> Optional[str]:
        """The resume token this session is registered under, if any."""
        return self._token

    @property
    def disconnected(self) -> bool:
        """``True`` once the queue's ``disconnect`` policy dropped us."""
        return self._queue is not None and self._queue.disconnected

    @property
    def delivery_count(self) -> int:
        """Notifications addressed to this session so far (delivered,
        queued, or dead-lettered); also the next ``delivery_seq``."""
        return self._delivery_seq

    @property
    def handles(self) -> Tuple[SubscriptionHandle, ...]:
        """The session's active subscription handles."""
        return tuple(handle for handle in self._handles if handle.active)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- subscribing ---------------------------------------------------------

    def subscribe(
        self, tree: Node, sink: Optional[DeliverySink] = None
    ) -> SubscriptionHandle:
        """Register a subscription; the service assigns its identity.

        ``sink`` overrides the session sink for this subscription only.
        Pending ingress events are flushed first, so they are matched
        against the table without the new subscription.
        """
        self._require_open()
        handle = self._service._subscribe(self, tree, sink)
        self._handles.append(handle)
        return handle

    def _unsubscribe(self, handle: SubscriptionHandle) -> None:
        self._service._unsubscribe(handle)
        handle._active = False
        self._handles.remove(handle)

    # -- publishing ----------------------------------------------------------

    def publish(self, event: Event) -> bool:
        """Submit one event at this session's broker.

        The event rides the micro-batching ingress; returns ``True``
        when this submission triggered a flush.  Call
        :meth:`flush` (or :meth:`PubSubService.flush`) to force out a
        partial batch.
        """
        self._require_open()
        return self._service.ingress.submit(self._broker_id, event)

    def flush(self) -> int:
        """Flush the service-wide ingress; returns events published."""
        return self._service.flush()

    # -- consuming (bounded-queue sessions only) -----------------------------

    def poll(self, timeout: Optional[float] = None) -> Optional[Notification]:
        """Consume one staged notification and deliver it to its sink.

        Only meaningful for sessions connected with ``queue_capacity``.
        ``timeout=None`` waits for a notification (or queue close);
        ``timeout=0`` polls.  Returns the notification, or ``None`` when
        nothing arrived in time.
        """
        queue = self._require_queue()
        notification = queue.get(timeout)
        if notification is not None:
            self._deliver(notification)
        return notification

    def drain(self) -> List[Notification]:
        """Consume everything staged now, delivering each to its sink."""
        queue = self._require_queue()
        notifications = queue.drain()
        for notification in notifications:
            self._deliver(notification)
        return notifications

    def _deliver(self, notification: Notification) -> None:
        """Push one consumed notification into the right sink."""
        self._service._sink_for(self, notification.subscription_id).deliver(
            notification
        )

    def _enqueue(self, notification: Notification) -> None:
        """Stage one dispatched notification (called by the service).

        The queue applies its backpressure policy; refusals go to its
        dead-letter sink, never back to the dispatcher.
        """
        assert self._queue is not None
        self._queue.put(notification)

    def _next_delivery_seq(self) -> int:
        """Reserve this session's next gapless delivery sequence number.

        Called by the service's dispatcher under its publish lock, which
        is what makes the bare increment safe.
        """
        sequence = self._delivery_seq
        self._delivery_seq += 1
        return sequence

    def _require_queue(self) -> BoundedDeliveryQueue:
        if self._queue is None:
            raise ServiceError(
                "session %r@%s has no delivery queue (connect with "
                "queue_capacity=... to stage deliveries)"
                % (self._client, self._broker_id)
            )
        return self._queue

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush pending events and withdraw all subscriptions.

        The delivery queue (if any) is closed *first*, so a flusher
        blocked on this session's full queue wakes up (dead-lettering
        the notification) instead of deadlocking against the
        unsubscribe flush below; staged notifications stay drainable.
        Thread-safe and idempotent: concurrent closers race on an
        internal check-and-set and exactly one runs the teardown.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._queue is not None:
            self._queue.close()
        for handle in list(self._handles):
            self._unsubscribe(handle)
        self._service._forget_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        traceback: Optional[object],
    ) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError(
                "session %r@%s is closed" % (self._client, self._broker_id)
            )

    def __repr__(self) -> str:
        return "Session(client=%r, broker=%r, subscriptions=%d%s)" % (
            self._client,
            self._broker_id,
            len(self.handles),
            ", closed" if self._closed else "",
        )
