"""Bounded delivery queues: explicit policy for slow consumers.

The synchronous delivery path pushes notifications straight into a
session's :class:`~repro.service.sinks.DeliverySink` from whatever
thread drained the ingress — a slow consumer therefore slows every
producer behind the same flush.  A :class:`BoundedDeliveryQueue` breaks
that coupling and makes the trade-off explicit: deliveries are staged in
a bounded, thread-safe queue owned by the session, the consumer drains
it at its own pace (:meth:`repro.service.session.Session.poll` /
:meth:`~repro.service.session.Session.drain`), and when the queue is
full one of three **backpressure policies** decides who pays:

``block``
    The producing flush blocks until the consumer frees a slot — true
    backpressure, nothing is ever lost.  (An optional ``timeout`` on
    :meth:`BoundedDeliveryQueue.put` converts an over-long wait into a
    dead-lettered drop instead of an unbounded stall.)

``drop_oldest``
    The *oldest* staged notification is evicted to the dead-letter sink
    and the new one is queued — a lagging consumer sees the freshest
    window of traffic, like a bounded retention buffer.

``disconnect``
    The *incoming* notification is dead-lettered and the queue enters a
    terminal ``disconnected`` state: every later delivery is
    dead-lettered too (reason ``"disconnected"``), while whatever was
    already staged stays drainable.  This models the broker dropping a
    consumer that cannot keep up.

Everything a queue refuses — whatever the policy or the reason — lands
in its :class:`DeadLetterSink`, so ``delivered + dead-lettered`` is
always exactly the set of notifications dispatched to the session
(property-tested against a naive unbounded-queue model in
``tests/test_backpressure_property.py``).  Queue depth, high-water mark,
and drop counters are exposed for observability.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Tuple

from repro.errors import ServiceError
from repro.service.sinks import Notification

#: The overflow policies a :class:`BoundedDeliveryQueue` can apply.
POLICIES: Tuple[str, ...] = ("block", "drop_oldest", "disconnect")

#: Dead-letter reasons recorded by :class:`BoundedDeliveryQueue`.
REASON_DROP_OLDEST = "drop_oldest"       #: evicted to make room (``drop_oldest``)
REASON_DISCONNECT = "disconnect"         #: the overflow that disconnected the queue
REASON_DISCONNECTED = "disconnected"     #: arrived after the queue disconnected
REASON_CLOSED = "closed"                 #: arrived after (or while) the queue closed
REASON_BLOCK_TIMEOUT = "block_timeout"   #: a bounded ``block`` wait expired
REASON_SINK_CLOSED = "sink_closed"       #: delivered to an :class:`~repro.service.sinks.AsyncDeliverySink` after ``aclose``
REASON_LOOP_CLOSED = "loop_closed"       #: the async sink's event loop had shut down

#: The complete dead-letter reason taxonomy, in declaration order.
#: Every ``DeadLetterSink.record`` call site in the library passes one
#: of these constants (enforced by ``tests/test_backpressure.py``), so
#: dashboards and tests can switch on reasons without string drift;
#: :meth:`DeadLetterSink.counters` is keyed by it.
DEAD_LETTER_REASONS: Tuple[str, ...] = (
    REASON_DROP_OLDEST,
    REASON_DISCONNECT,
    REASON_DISCONNECTED,
    REASON_CLOSED,
    REASON_BLOCK_TIMEOUT,
    REASON_SINK_CLOSED,
    REASON_LOOP_CLOSED,
)


class DeadLetter(NamedTuple):
    """One refused delivery: ``notification`` was dropped for ``reason``."""

    notification: Notification
    reason: str


class DeadLetterSink:
    """Thread-safe record of everything a bounded queue refused.

    >>> from repro.events import Event
    >>> sink = DeadLetterSink()
    >>> sink.record(Notification(Event({"x": 1}), 0, "alice", "b0", 3),
    ...             REASON_DROP_OLDEST)
    >>> len(sink), sink.letters[0].reason
    (1, 'drop_oldest')
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._letters: List[DeadLetter] = []

    def record(self, notification: Notification, reason: str) -> None:
        """Append one dead letter (called by the queue, any thread)."""
        with self._lock:
            self._letters.append(DeadLetter(notification, reason))

    @property
    def letters(self) -> List[DeadLetter]:
        """A snapshot of all dead letters, in drop order."""
        with self._lock:
            return list(self._letters)

    @property
    def notifications(self) -> List[Notification]:
        """The dropped notifications only, in drop order."""
        return [letter.notification for letter in self.letters]

    def counters(self) -> Dict[str, int]:
        """Drop counts per reason, zero-filled over the full taxonomy.

        Every name in :data:`DEAD_LETTER_REASONS` is present (0 when
        nothing was dropped for it), so callers can difference two
        snapshots without key-existence bookkeeping.  Reasons outside
        the taxonomy (user code can pass any string) appear only when
        recorded.

        >>> DeadLetterSink().counters()[REASON_DROP_OLDEST]
        0
        """
        counts = {reason: 0 for reason in DEAD_LETTER_REASONS}
        with self._lock:
            for letter in self._letters:
                counts[letter.reason] = counts.get(letter.reason, 0) + 1
        return counts

    def clear(self) -> None:
        """Forget everything recorded so far."""
        with self._lock:
            self._letters.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._letters)


class BoundedDeliveryQueue:
    """A bounded, thread-safe staging queue between dispatch and consumer.

    Producers (the flush path) call :meth:`put`; the consumer calls
    :meth:`get` or :meth:`drain`.  ``capacity`` bounds the number of
    staged notifications; ``policy`` (one of :data:`POLICIES`) decides
    what happens to an overflowing delivery; everything refused is
    recorded in ``dead_letter`` with a reason.

    Counters: ``enqueued`` (accepted puts), ``delivered`` (consumed
    gets), ``dropped`` (dead-lettered puts/evictions), ``high_water``
    (maximum observed depth).  ``depth`` is the current staging count.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "block",
        dead_letter: Optional[DeadLetterSink] = None,
    ) -> None:
        if capacity < 1:
            raise ServiceError(
                "delivery queue capacity must be >= 1, got %d" % capacity
            )
        if policy not in POLICIES:
            raise ServiceError(
                "unknown backpressure policy %r (choose from %s)"
                % (policy, ", ".join(POLICIES))
            )
        self.capacity = capacity
        self.policy = policy
        self.dead_letter = dead_letter if dead_letter is not None else DeadLetterSink()
        self._items: Deque[Notification] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._disconnected = False
        self.enqueued = 0
        self.delivered = 0
        self.dropped = 0
        self.high_water = 0

    # -- producer side -------------------------------------------------------

    def put(self, notification: Notification, timeout: Optional[float] = None) -> bool:
        """Stage one notification; returns ``True`` iff it was queued.

        Applies the queue's policy when full.  ``timeout`` only matters
        under ``block``: ``None`` waits indefinitely (until the consumer
        frees a slot or the queue closes/disconnects), a number bounds
        the wait and dead-letters the notification (reason
        ``"block_timeout"``) when it expires.  Refused notifications are
        dead-lettered, never raised.
        """
        with self._lock:
            refusal = self._refusal_reason()
            if refusal is None and len(self._items) >= self.capacity:
                if self.policy == "drop_oldest":
                    evicted = self._items.popleft()
                    self.dead_letter.record(evicted, REASON_DROP_OLDEST)
                    self.dropped += 1
                elif self.policy == "disconnect":
                    self._disconnected = True
                    self._not_empty.notify_all()
                    self._not_full.notify_all()
                    refusal = REASON_DISCONNECT
                else:  # block
                    refusal = self._wait_not_full(timeout)
            if refusal is not None:
                self.dead_letter.record(notification, refusal)
                self.dropped += 1
                return False
            self._items.append(notification)
            self.enqueued += 1
            if len(self._items) > self.high_water:
                self.high_water = len(self._items)
            self._not_empty.notify()
            return True

    def _refusal_reason(self) -> Optional[str]:
        """Why a put must be refused outright, or ``None``.  Lock held."""
        if self._closed:
            return REASON_CLOSED
        if self._disconnected:
            return REASON_DISCONNECTED
        return None

    def _wait_not_full(self, timeout: Optional[float]) -> Optional[str]:
        """Block until a slot frees; returns a refusal reason or ``None``.

        Lock held on entry and exit (``Condition.wait`` releases it
        while waiting, so the consumer can drain concurrently).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while len(self._items) >= self.capacity:
            if self._closed:
                return REASON_CLOSED
            if self._disconnected:
                return REASON_DISCONNECTED
            if deadline is None:
                self._not_full.wait()
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._not_full.wait(remaining):
                    if len(self._items) >= self.capacity:
                        return REASON_BLOCK_TIMEOUT
        if self._closed:
            return REASON_CLOSED
        if self._disconnected:
            return REASON_DISCONNECTED
        return None

    # -- consumer side -------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Notification]:
        """Consume the oldest staged notification.

        ``timeout=None`` waits until one arrives (or the queue closes);
        ``timeout=0`` polls without waiting.  Returns ``None`` when
        nothing arrived in time.  A closed or disconnected queue still
        hands out whatever was staged before.
        """
        with self._lock:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._items:
                if self._closed or self._disconnected:
                    return None
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_empty.wait(remaining):
                        if not self._items:
                            return None
            notification = self._items.popleft()
            self.delivered += 1
            self._not_full.notify()
            return notification

    def drain(self) -> List[Notification]:
        """Consume everything currently staged, oldest first."""
        with self._lock:
            notifications = list(self._items)
            self._items.clear()
            self.delivered += len(notifications)
            self._not_full.notify_all()
            return notifications

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop accepting puts and release every blocked producer.

        Producers blocked in a ``block``-policy :meth:`put` wake up and
        dead-letter their notification (reason ``"closed"``); staged
        notifications remain drainable.  Idempotent.
        """
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def disconnect(self) -> None:
        """Force the terminal ``disconnected`` state (any policy)."""
        with self._lock:
            self._disconnected = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    # -- observability -------------------------------------------------------

    @property
    def depth(self) -> int:
        """Notifications currently staged."""
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def disconnected(self) -> bool:
        """``True`` once the ``disconnect`` policy fired (terminal)."""
        return self._disconnected

    def __repr__(self) -> str:
        return (
            "BoundedDeliveryQueue(capacity=%d, policy=%r, depth=%d, "
            "dropped=%d%s%s)"
            % (
                self.capacity,
                self.policy,
                self.depth,
                self.dropped,
                ", disconnected" if self._disconnected else "",
                ", closed" if self._closed else "",
            )
        )
