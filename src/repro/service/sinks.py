"""Delivery sinks: where the service layer pushes matched events.

The substrate (:class:`repro.routing.network.BrokerNetwork`) *returns*
match results as per-event id lists; the service layer inverts that into
push delivery: every notification flows into the
:class:`DeliverySink` attached to the subscriber's session (or to the
individual subscription).  Sinks are called synchronously, in publish
order, from whatever thread drained the ingress.

Three ready-made sinks cover the common shapes: :class:`CollectingSink`
(keep everything, for tests and interactive use), :class:`CallbackSink`
(invoke a function per notification), and :class:`CountingSink`
(accounting only, for high-volume measurement).
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Protocol, runtime_checkable

from repro.events import Event


class Notification(NamedTuple):
    """One delivery: ``event`` matched ``subscription_id`` of ``client``.

    ``sequence`` is the service-wide publish sequence number of the
    event (every event dispatched through the service's delivery hook
    gets one, matched or not), so per-event delivery sets can be
    reconstructed from a sink even when micro-batching reorders work.
    """

    event: Event
    sequence: int
    client: str
    broker_id: str
    subscription_id: int


@runtime_checkable
class DeliverySink(Protocol):
    """Anything that accepts notifications from the service layer.

    Implementations must not raise from :meth:`deliver`; the service
    dispatches synchronously and does not isolate sinks from each other.
    """

    def deliver(self, notification: Notification) -> None:
        """Accept one notification."""


class CollectingSink:
    """Keeps every notification, in delivery order.

    >>> sink = CollectingSink()
    >>> sink.deliver(Notification(Event({"x": 1}), 0, "alice", "b0", 3))
    >>> len(sink), sink.events
    (1, [Event(x=1)])
    """

    def __init__(self) -> None:
        self.notifications: List[Notification] = []

    def deliver(self, notification: Notification) -> None:
        self.notifications.append(notification)

    @property
    def events(self) -> List[Event]:
        """The delivered events, in delivery order (duplicates kept)."""
        return [notification.event for notification in self.notifications]

    def clear(self) -> None:
        """Forget everything collected so far."""
        self.notifications.clear()

    def __len__(self) -> int:
        return len(self.notifications)


class CallbackSink:
    """Invokes ``callback`` once per notification.

    >>> seen = []
    >>> sink = CallbackSink(seen.append)
    >>> sink.deliver(Notification(Event({"x": 1}), 0, "alice", "b0", 3))
    >>> seen[0].subscription_id
    3
    """

    def __init__(self, callback: Callable[[Notification], None]) -> None:
        self._callback = callback

    def deliver(self, notification: Notification) -> None:
        self._callback(notification)


class CountingSink:
    """Counts notifications without retaining them.

    ``total`` is the overall count; ``by_subscription`` breaks it down
    per subscription id.
    """

    def __init__(self) -> None:
        self.total = 0
        self.by_subscription: Dict[int, int] = {}

    def deliver(self, notification: Notification) -> None:
        self.total += 1
        self.by_subscription[notification.subscription_id] = (
            self.by_subscription.get(notification.subscription_id, 0) + 1
        )

    def clear(self) -> None:
        """Zero all counters."""
        self.total = 0
        self.by_subscription.clear()
