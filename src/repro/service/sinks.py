"""Delivery sinks: where the service layer pushes matched events.

The substrate (:class:`repro.routing.network.BrokerNetwork`) *returns*
match results as per-event id lists; the service layer inverts that into
push delivery: every notification flows into the
:class:`DeliverySink` attached to the subscriber's session (or to the
individual subscription).  Sinks are called synchronously, in publish
order, from whatever thread drained the ingress.

Three ready-made sinks cover the common shapes: :class:`CollectingSink`
(keep everything, for tests and interactive use), :class:`CallbackSink`
(invoke a function per notification), and :class:`CountingSink`
(accounting only, for high-volume measurement).  A fourth,
:class:`AsyncDeliverySink`, bridges the synchronous flush path into an
asyncio event loop: ``deliver`` hands the notification to the loop and
returns immediately, so an async consumer can fan out without ever
blocking the flusher.
"""

from __future__ import annotations

import asyncio
from typing import (
    TYPE_CHECKING,
    Awaitable,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.errors import ServiceError
from repro.events import Event

if TYPE_CHECKING:
    from repro.service.backpressure import DeadLetterSink


class Notification(NamedTuple):
    """One delivery: ``event`` matched ``subscription_id`` of ``client``.

    ``sequence`` is the service-wide publish sequence number of the
    event (every event dispatched through the service's delivery hook
    gets one, matched or not), so per-event delivery sets can be
    reconstructed from a sink even when micro-batching reorders work.

    ``delivery_seq`` is the recipient *session's* gapless delivery
    counter, stamped by the service at dispatch time — the n-th
    notification ever addressed to that session carries ``n`` (counting
    from 0), whether it was delivered, queued, or dead-lettered by a
    bounded queue.  ``delivered + dead-lettered`` therefore always
    covers a gapless ``delivery_seq`` range per session.  ``-1`` when
    constructed outside a service (tests, hand-fed sinks).
    """

    event: Event
    sequence: int
    client: str
    broker_id: str
    subscription_id: int
    delivery_seq: int = -1


@runtime_checkable
class DeliverySink(Protocol):
    """Anything that accepts notifications from the service layer.

    Implementations must not raise from :meth:`deliver`; the service
    dispatches synchronously and does not isolate sinks from each other.
    """

    def deliver(self, notification: Notification) -> None:
        """Accept one notification."""


class CollectingSink:
    """Keeps every notification, in delivery order.

    >>> sink = CollectingSink()
    >>> sink.deliver(Notification(Event({"x": 1}), 0, "alice", "b0", 3))
    >>> len(sink), sink.events
    (1, [Event(x=1)])
    """

    def __init__(self) -> None:
        self.notifications: List[Notification] = []

    def deliver(self, notification: Notification) -> None:
        self.notifications.append(notification)

    @property
    def events(self) -> List[Event]:
        """The delivered events, in delivery order (duplicates kept)."""
        return [notification.event for notification in self.notifications]

    def clear(self) -> None:
        """Forget everything collected so far."""
        self.notifications.clear()

    def __len__(self) -> int:
        return len(self.notifications)


class CallbackSink:
    """Invokes ``callback`` once per notification.

    >>> seen = []
    >>> sink = CallbackSink(seen.append)
    >>> sink.deliver(Notification(Event({"x": 1}), 0, "alice", "b0", 3))
    >>> seen[0].subscription_id
    3
    """

    def __init__(self, callback: Callable[[Notification], None]) -> None:
        self._callback = callback

    def deliver(self, notification: Notification) -> None:
        self._callback(notification)


class AsyncDeliverySink:
    """Bridges synchronous dispatch into an asyncio drain loop.

    The service calls :meth:`deliver` from whatever thread drained the
    ingress; the notification is handed to the event loop with
    ``call_soon_threadsafe`` and :meth:`deliver` returns immediately —
    the flush never waits on the async consumer.  A drain task (started
    with :meth:`start`, inside the loop) pops notifications off an
    ``asyncio.Queue`` and awaits ``handler`` once per notification, in
    delivery order.

    The staging queue is unbounded by design: *bounding* a slow async
    consumer is the job of a session-level
    :class:`~repro.service.backpressure.BoundedDeliveryQueue` (put one
    in front via ``connect(queue_capacity=...)``), while this sink's
    :attr:`pending` exposes the current lag for observability.  Stop
    with :meth:`aclose`, which drains everything already accepted
    through the handler before returning.

    Deliveries that arrive *after* :meth:`aclose` — or after the target
    loop itself has shut down — are recorded in :attr:`dead_letter`
    (reasons ``"sink_closed"``/``"loop_closed"``) instead of raising:
    a session torn down while a flush is still in flight must surface
    as a dead-letter record in the flusher, never as an exception (see
    ``tests/test_backpressure.py``).  Deliveries *before* :meth:`start`
    remain a programming error and raise.
    """

    def __init__(
        self,
        handler: Callable[[Notification], Awaitable[None]],
        dead_letter: Optional["DeadLetterSink"] = None,
    ) -> None:
        self._handler = handler
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional["asyncio.Queue[Optional[Notification]]"] = None
        self._task: Optional["asyncio.Task[None]"] = None
        self._dead_letter = dead_letter
        self._closed = False
        self.delivered = 0

    def start(
        self, loop: Optional[asyncio.AbstractEventLoop] = None
    ) -> "asyncio.Task[None]":
        """Create the staging queue and spawn the drain task.

        Must run inside the target loop unless ``loop`` is passed
        explicitly.  Returns the drain task (also awaited by
        :meth:`aclose`).  Restarting a sink closed by :meth:`aclose`
        resumes normal delivery.
        """
        if self._task is not None and not self._task.done():
            raise ServiceError("AsyncDeliverySink is already draining")
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._task = self._loop.create_task(self._drain())
        self._closed = False
        return self._task

    @property
    def pending(self) -> int:
        """Notifications accepted but not yet handled (consumer lag)."""
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def closed(self) -> bool:
        """``True`` between :meth:`aclose` and the next :meth:`start`."""
        return self._closed

    @property
    def dead_letter(self) -> "DeadLetterSink":
        """Deliveries refused because the sink or its loop had closed."""
        if self._dead_letter is None:
            # Imported lazily: backpressure imports this module for
            # Notification, so a module-level import would be circular.
            from repro.service.backpressure import DeadLetterSink

            self._dead_letter = DeadLetterSink()
        return self._dead_letter

    def deliver(self, notification: Notification) -> None:
        """Hand one notification to the loop; never blocks the caller."""
        loop, queue = self._loop, self._queue
        if loop is None or queue is None:
            raise ServiceError(
                "AsyncDeliverySink.start() must run before deliveries arrive"
            )
        from repro.service.backpressure import (
            REASON_LOOP_CLOSED,
            REASON_SINK_CLOSED,
        )

        if self._closed:
            self.dead_letter.record(notification, REASON_SINK_CLOSED)
            return
        try:
            loop.call_soon_threadsafe(queue.put_nowait, notification)
        except RuntimeError:
            # The loop shut down underneath a still-flushing producer.
            self.dead_letter.record(notification, REASON_LOOP_CLOSED)

    async def _drain(self) -> None:
        queue = self._queue
        assert queue is not None
        while True:
            notification = await queue.get()
            if notification is None:
                break
            await self._handler(notification)
            self.delivered += 1

    async def aclose(self) -> None:
        """Handle everything already accepted, then stop the drain task.

        Idempotent; safe to call even if :meth:`start` never ran.
        """
        if self._loop is None or self._queue is None or self._task is None:
            return
        # Refuse new deliveries first, so a flusher racing this close
        # dead-letters instead of queueing behind the sentinel (where
        # its notification would be silently discarded).
        self._closed = True
        # The sentinel queues *behind* every accepted notification, so
        # the drain task finishes the backlog before exiting.
        self._loop.call_soon_threadsafe(self._queue.put_nowait, None)
        await self._task
        self._task = None


class CountingSink:
    """Counts notifications without retaining them.

    ``total`` is the overall count; ``by_subscription`` breaks it down
    per subscription id.
    """

    def __init__(self) -> None:
        self.total = 0
        self.by_subscription: Dict[int, int] = {}

    def deliver(self, notification: Notification) -> None:
        self.total += 1
        self.by_subscription[notification.subscription_id] = (
            self.by_subscription.get(notification.subscription_id, 0) + 1
        )

    def clear(self) -> None:
        """Zero all counters."""
        self.total = 0
        self.by_subscription.clear()
