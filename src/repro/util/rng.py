"""Seeded random number generation helpers.

Every stochastic component of the library (workload generation, event
publication order, sampling) takes an explicit seed so whole experiments are
reproducible.  ``derive_seed`` deterministically fans a master seed out into
independent per-component seeds, so adding a new consumer never perturbs the
streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, *labels: object) -> int:
    """Derive a stable sub-seed from ``master_seed`` and a label path.

    The derivation hashes the master seed together with the labels, so each
    ``(master_seed, labels)`` combination maps to a fixed 63-bit seed that is
    independent of call order.

    >>> derive_seed(42, "events") == derive_seed(42, "events")
    True
    >>> derive_seed(42, "events") != derive_seed(42, "subscriptions")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(master_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> 1


def make_rng(master_seed: int, *labels: object) -> np.random.Generator:
    """Create a numpy ``Generator`` seeded via :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(master_seed, *labels))
