"""Small shared utilities: stable heaps, timers, seeded RNG, ASCII output."""

from repro.util.heap import StableHeap
from repro.util.rng import derive_seed, make_rng
from repro.util.tables import ascii_plot, format_table
from repro.util.timing import Stopwatch, time_call

__all__ = [
    "StableHeap",
    "Stopwatch",
    "ascii_plot",
    "derive_seed",
    "format_table",
    "make_rng",
    "time_call",
]
