"""A stable min-heap with deterministic tie-breaking.

The pruning engine needs a priority queue whose pop order is fully
deterministic: when two entries share the same priority key, the one
inserted first wins.  Python's :mod:`heapq` compares tuples element by
element, which would fall through to comparing payloads; payloads here are
arbitrary objects, so we interpose a monotonically increasing sequence
number instead.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generic, Iterator, Optional, Tuple, TypeVar

T = TypeVar("T")


class StableHeap(Generic[T]):
    """Min-heap of ``(key, payload)`` pairs with insertion-order stability.

    Keys may be any totally ordered value (numbers, tuples of numbers).
    Payloads are never compared.

    >>> heap = StableHeap()
    >>> heap.push((1, 0), "b")
    >>> heap.push((0, 5), "a")
    >>> heap.pop()
    ((0, 5), 'a')
    """

    def __init__(self) -> None:
        self._entries: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def push(self, key: Any, payload: T) -> None:
        """Insert ``payload`` with priority ``key``."""
        heapq.heappush(self._entries, (key, next(self._counter), payload))

    def pop(self) -> Tuple[Any, T]:
        """Remove and return the ``(key, payload)`` pair with minimal key.

        Raises :class:`IndexError` when the heap is empty.
        """
        key, _seq, payload = heapq.heappop(self._entries)
        return key, payload

    def peek(self) -> Tuple[Any, T]:
        """Return the minimal ``(key, payload)`` pair without removing it."""
        key, _seq, payload = self._entries[0]
        return key, payload

    def peek_key(self) -> Optional[Any]:
        """Return the minimal key, or ``None`` when the heap is empty."""
        if not self._entries:
            return None
        return self._entries[0][0]

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def items(self) -> Iterator[Tuple[Any, T]]:
        """Iterate over ``(key, payload)`` pairs in arbitrary (heap) order."""
        for key, _seq, payload in self._entries:
            yield key, payload
