"""Plain-text tables and plots for experiment reports.

The experiment harness renders each reproduced figure both as a CSV-ready
table and as an ASCII plot, so results are readable straight from a
terminal or a benchmark log without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.6g}",
) -> str:
    """Render ``rows`` as a fixed-width text table.

    >>> print(format_table(["x", "y"], [[0, 1.5], [1, 2.25]]))
    x  y
    -  ----
    0  1.5
    1  2.25
    """
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))).rstrip(),
    ]
    for cells in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
        )
    return "\n".join(lines)


def ascii_plot(
    series: Dict[str, Sequence[float]],
    xs: Sequence[float],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """Render one or more y-series over shared x values as an ASCII chart.

    Each series is drawn with its own marker character; a legend maps
    markers back to series names.  The plot is intentionally simple: its
    job is to make curve *shapes* (crossovers, sharp bends) visible in
    benchmark logs.
    """
    markers = "*o+x#@%&"
    all_values = [v for values in series.values() for v in values]
    if not all_values or not xs:
        return "(empty plot)"
    y_min = min(all_values)
    y_max = max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min = min(xs)
    x_max = max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for series_index, (_name, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        for x, y in zip(xs, values):
            col = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = "{:.4g}".format(y_max)
    bottom_label = "{:.4g}".format(y_min)
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(prefix + " |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + "  "
        + "{:<10.4g}".format(x_min)
        + " " * max(0, width - 20)
        + "{:>10.4g}".format(x_max)
    )
    legend = "   ".join(
        "{} {}".format(markers[i % len(markers)], name)
        for i, name in enumerate(series)
    )
    lines.append(" " * label_width + "  legend: " + legend)
    return "\n".join(lines)
