"""Timing helpers used by the experiment harness.

The paper reports *average filtering time per event*.  We measure wall-clock
time with :func:`time.perf_counter`, which has the best available resolution
and is monotonic.  The :class:`Stopwatch` accumulates across many start/stop
cycles so per-event costs far below timer resolution still aggregate into a
meaningful mean.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple


class Stopwatch:
    """Accumulating stopwatch.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     _ = sum(range(10))
    >>> watch.laps
    1
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps = 0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        """Begin a lap; nested starts are an error."""
        if self._started_at is not None:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """End the current lap and return its duration in seconds."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch is not running")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += lap
        self.laps += 1
        return lap

    def reset(self) -> None:
        """Zero the accumulated time and lap count."""
        self.elapsed = 0.0
        self.laps = 0
        self._started_at = None

    @property
    def mean(self) -> float:
        """Mean lap duration in seconds (0.0 before the first lap)."""
        if not self.laps:
            return 0.0
        return self.elapsed / self.laps


def time_call(func: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - started
