"""A small construction DSL for subscription trees.

Example
-------
>>> from repro.subscriptions.builder import P, And, Or, Not
>>> tree = And(
...     P("category") == "fiction",
...     Or(P("price") <= 20, P("seller_rating") >= 4.5),
...     Not(P("condition") == "poor"),
... )

``P("attr")`` is a builder handle; comparison operators and named methods on
it produce :class:`~repro.subscriptions.nodes.PredicateLeaf` nodes.  ``And``,
``Or`` and ``Not`` combine nodes (predicates and leaves are accepted
interchangeably).
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.errors import SubscriptionError
from repro.subscriptions.nodes import AndNode, Node, NotNode, OrNode, PredicateLeaf
from repro.subscriptions.predicates import Operator, Predicate, PredicateValue

NodeLike = Union[Node, Predicate]


def _as_node(value: NodeLike) -> Node:
    if isinstance(value, Node):
        return value
    if isinstance(value, Predicate):
        return PredicateLeaf(value)
    raise SubscriptionError(
        "expected a Node or Predicate, got %s" % type(value).__name__
    )


class P:
    """Builder handle for predicates on one attribute.

    Supports comparison operators (``==``, ``!=``, ``<``, ``<=``, ``>``,
    ``>=``) and named constructors for the remaining operators.
    """

    __slots__ = ("attribute",)

    def __init__(self, attribute: str) -> None:
        if not isinstance(attribute, str) or not attribute:
            raise SubscriptionError("P() requires a non-empty attribute name")
        self.attribute = attribute

    def _leaf(self, operator: Operator, value: PredicateValue) -> PredicateLeaf:
        return PredicateLeaf(Predicate(self.attribute, operator, value))

    # -- operator overloads -------------------------------------------------
    def __eq__(self, value: object) -> PredicateLeaf:  # type: ignore[override]
        return self._leaf(Operator.EQ, value)  # type: ignore[arg-type]

    def __ne__(self, value: object) -> PredicateLeaf:  # type: ignore[override]
        return self._leaf(Operator.NE, value)  # type: ignore[arg-type]

    def __lt__(self, value: PredicateValue) -> PredicateLeaf:
        return self._leaf(Operator.LT, value)

    def __le__(self, value: PredicateValue) -> PredicateLeaf:
        return self._leaf(Operator.LE, value)

    def __gt__(self, value: PredicateValue) -> PredicateLeaf:
        return self._leaf(Operator.GT, value)

    def __ge__(self, value: PredicateValue) -> PredicateLeaf:
        return self._leaf(Operator.GE, value)

    __hash__ = None  # builder handles are not hashable; they are transient

    # -- named constructors -------------------------------------------------
    def eq(self, value: PredicateValue) -> PredicateLeaf:
        """``attribute == value``"""
        return self._leaf(Operator.EQ, value)

    def ne(self, value: PredicateValue) -> PredicateLeaf:
        """``attribute != value`` (attribute must be present)"""
        return self._leaf(Operator.NE, value)

    def lt(self, value: PredicateValue) -> PredicateLeaf:
        """``attribute < value``"""
        return self._leaf(Operator.LT, value)

    def le(self, value: PredicateValue) -> PredicateLeaf:
        """``attribute <= value``"""
        return self._leaf(Operator.LE, value)

    def gt(self, value: PredicateValue) -> PredicateLeaf:
        """``attribute > value``"""
        return self._leaf(Operator.GT, value)

    def ge(self, value: PredicateValue) -> PredicateLeaf:
        """``attribute >= value``"""
        return self._leaf(Operator.GE, value)

    def in_(self, values: Iterable[PredicateValue]) -> PredicateLeaf:
        """``attribute in {values}``"""
        return self._leaf(Operator.IN_SET, frozenset(values))

    def not_in(self, values: Iterable[PredicateValue]) -> PredicateLeaf:
        """``attribute not in {values}`` (attribute must be present)"""
        return self._leaf(Operator.NOT_IN_SET, frozenset(values))

    def prefix(self, value: str) -> PredicateLeaf:
        """string attribute starts with ``value``"""
        return self._leaf(Operator.PREFIX, value)

    def contains(self, value: str) -> PredicateLeaf:
        """string attribute contains ``value`` as a substring"""
        return self._leaf(Operator.CONTAINS, value)

    def between(self, low: PredicateValue, high: PredicateValue) -> AndNode:
        """``low <= attribute <= high`` (sugar for a two-predicate AND)."""
        return AndNode([self.ge(low), self.le(high)])


def attr(attribute: str) -> P:
    """Alias of :class:`P` for callers who prefer a function spelling."""
    return P(attribute)


def And(*children: NodeLike) -> Node:
    """Conjunction of one or more nodes (a single child passes through)."""
    if not children:
        raise SubscriptionError("And() requires at least one child")
    nodes = [_as_node(child) for child in children]
    if len(nodes) == 1:
        return nodes[0]
    return AndNode(nodes)


def Or(*children: NodeLike) -> Node:
    """Disjunction of one or more nodes (a single child passes through)."""
    if not children:
        raise SubscriptionError("Or() requires at least one child")
    nodes = [_as_node(child) for child in children]
    if len(nodes) == 1:
        return nodes[0]
    return OrNode(nodes)


def Not(child: NodeLike) -> NotNode:
    """Negation (predicate-level semantics; see
    :class:`~repro.subscriptions.nodes.NotNode`)."""
    return NotNode(_as_node(child))
