"""Serialization of subscription trees.

Two codecs are provided:

* a JSON-compatible dict form (``node_to_dict`` / ``node_from_dict``) used
  for persistence, debugging, and test fixtures;
* a compact binary form (``encode_node`` / ``decode_node``) used by the
  broker substrate to charge realistic wire sizes when subscriptions are
  forwarded between brokers.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple, Union

from repro.errors import SubscriptionError
from repro.subscriptions.nodes import (
    AndNode,
    ConstNode,
    Node,
    NotNode,
    OrNode,
    PredicateLeaf,
)
from repro.subscriptions.predicates import Operator, Predicate

# ---------------------------------------------------------------------------
# dict codec
# ---------------------------------------------------------------------------


def _value_to_jsonable(value: Any) -> Any:
    if isinstance(value, frozenset):
        return {"set": sorted(value, key=lambda member: (str(type(member)), str(member)))}
    return value


def _value_from_jsonable(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"set"}:
        return frozenset(value["set"])
    if isinstance(value, list):
        return frozenset(value)
    return value


def node_to_dict(node: Node) -> Dict[str, Any]:
    """Convert a tree to a JSON-compatible nested dict."""
    if isinstance(node, PredicateLeaf):
        predicate = node.predicate
        return {
            "kind": "pred",
            "attribute": predicate.attribute,
            "operator": predicate.operator.value,
            "value": _value_to_jsonable(predicate.value),
        }
    if isinstance(node, ConstNode):
        return {"kind": "const", "value": node.value}
    if isinstance(node, NotNode):
        return {"kind": "not", "child": node_to_dict(node.child)}
    if isinstance(node, (AndNode, OrNode)):
        return {
            "kind": node.kind,
            "children": [node_to_dict(child) for child in node.children],
        }
    raise SubscriptionError("cannot serialize node of type %s" % type(node).__name__)


def node_from_dict(data: Dict[str, Any]) -> Node:
    """Inverse of :func:`node_to_dict`."""
    try:
        kind = data["kind"]
    except (TypeError, KeyError):
        raise SubscriptionError("node dict requires a 'kind' field")
    if kind == "pred":
        operator = Operator(data["operator"])
        value = _value_from_jsonable(data["value"])
        return PredicateLeaf(Predicate(data["attribute"], operator, value))
    if kind == "const":
        return ConstNode(bool(data["value"]))
    if kind == "not":
        return NotNode(node_from_dict(data["child"]))
    if kind == "and":
        return AndNode([node_from_dict(child) for child in data["children"]])
    if kind == "or":
        return OrNode([node_from_dict(child) for child in data["children"]])
    raise SubscriptionError("unknown node kind %r" % (kind,))


def subscription_to_dict(subscription: "Subscription") -> Dict[str, Any]:
    """Serialize a registered subscription (id, owner, normalized tree)."""
    return {
        "id": subscription.id,
        "owner": subscription.owner,
        "tree": node_to_dict(subscription.tree),
    }


def subscription_from_dict(data: Dict[str, Any]) -> "Subscription":
    """Inverse of :func:`subscription_to_dict`."""
    from repro.subscriptions.subscription import Subscription

    return Subscription(
        data["id"], node_from_dict(data["tree"]), owner=data.get("owner")
    )


# ---------------------------------------------------------------------------
# subscription-log ops
# ---------------------------------------------------------------------------

#: Actions a subscription-log operation may carry.  ``register``,
#: ``replace``, and ``unregister`` mirror the :class:`~repro.matching.
#: interfaces.Matcher` mutators; ``rebuild`` requests table compaction.
OP_ACTIONS = ("register", "replace", "unregister", "rebuild")


def op_to_dict(action: str, payload: Union["Subscription", int, None] = None) -> Dict[str, Any]:
    """One subscription-log operation as a JSON-compatible dict.

    The log is how replicated matcher state stays in sync without
    re-shipping whole tables: every table mutation appends one compact
    op (riding :func:`subscription_to_dict` for the tree-carrying
    actions), and a replica that drains the log in order reaches
    exactly the table of the writer — which is also what replays a
    table into a restarted or migrated broker shard
    (:mod:`repro.matching.process_pool`).

    ``payload`` is the :class:`Subscription` for ``register``/
    ``replace``, the subscription id for ``unregister``, and omitted
    for ``rebuild``.
    """
    if action in ("register", "replace"):
        from repro.subscriptions.subscription import Subscription

        if not isinstance(payload, Subscription):
            raise SubscriptionError(
                "%s op needs a Subscription payload, got %r" % (action, payload)
            )
        return {"op": action, "subscription": subscription_to_dict(payload)}
    if action == "unregister":
        if not isinstance(payload, int) or isinstance(payload, bool):
            raise SubscriptionError(
                "unregister op needs a subscription id, got %r" % (payload,)
            )
        return {"op": action, "id": payload}
    if action == "rebuild":
        return {"op": action}
    raise SubscriptionError("unknown subscription-log action %r" % (action,))


def op_from_dict(data: Dict[str, Any]) -> Tuple[str, Union["Subscription", int, None]]:
    """Inverse of :func:`op_to_dict`: ``(action, payload)``."""
    try:
        action = data["op"]
    except (TypeError, KeyError):
        raise SubscriptionError("subscription-log op requires an 'op' field")
    if action in ("register", "replace"):
        return action, subscription_from_dict(data["subscription"])
    if action == "unregister":
        return action, data["id"]
    if action == "rebuild":
        return action, None
    raise SubscriptionError("unknown subscription-log action %r" % (action,))


# ---------------------------------------------------------------------------
# binary codec
# ---------------------------------------------------------------------------

_TAG_PRED = 0
_TAG_CONST = 1
_TAG_NOT = 2
_TAG_AND = 3
_TAG_OR = 4

_VTAG_STR = 0
_VTAG_INT = 1
_VTAG_FLOAT = 2
_VTAG_BOOL = 3
_VTAG_SET = 4

_OPERATOR_CODES = {operator: index for index, operator in enumerate(Operator)}
_OPERATORS_BY_CODE = {index: operator for operator, index in _OPERATOR_CODES.items()}


def _encode_scalar(value: Union[str, int, float, bool], out: List[bytes]) -> None:
    if isinstance(value, bool):
        out.append(struct.pack("<BB", _VTAG_BOOL, int(value)))
    elif isinstance(value, int):
        out.append(struct.pack("<Bq", _VTAG_INT, value))
    elif isinstance(value, float):
        out.append(struct.pack("<Bd", _VTAG_FLOAT, value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(struct.pack("<BI", _VTAG_STR, len(raw)))
        out.append(raw)
    else:
        raise SubscriptionError("cannot encode value of type %s" % type(value).__name__)


def _decode_scalar(buffer: bytes, offset: int) -> Tuple[Any, int]:
    (vtag,) = struct.unpack_from("<B", buffer, offset)
    offset += 1
    if vtag == _VTAG_BOOL:
        (raw,) = struct.unpack_from("<B", buffer, offset)
        return bool(raw), offset + 1
    if vtag == _VTAG_INT:
        (raw,) = struct.unpack_from("<q", buffer, offset)
        return raw, offset + 8
    if vtag == _VTAG_FLOAT:
        (raw,) = struct.unpack_from("<d", buffer, offset)
        return raw, offset + 8
    if vtag == _VTAG_STR:
        (length,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        return buffer[offset : offset + length].decode("utf-8"), offset + length
    raise SubscriptionError("corrupt value tag %d" % vtag)


def encode_node(node: Node) -> bytes:
    """Encode a tree into a compact binary representation."""
    out: List[bytes] = []
    _encode_node(node, out)
    return b"".join(out)


def _encode_node(node: Node, out: List[bytes]) -> None:
    if isinstance(node, PredicateLeaf):
        predicate = node.predicate
        attribute = predicate.attribute.encode("utf-8")
        out.append(
            struct.pack(
                "<BBH", _TAG_PRED, _OPERATOR_CODES[predicate.operator], len(attribute)
            )
        )
        out.append(attribute)
        if isinstance(predicate.value, frozenset):
            members = sorted(
                predicate.value, key=lambda member: (str(type(member)), str(member))
            )
            out.append(struct.pack("<BI", _VTAG_SET, len(members)))
            for member in members:
                _encode_scalar(member, out)
        else:
            _encode_scalar(predicate.value, out)
        return
    if isinstance(node, ConstNode):
        out.append(struct.pack("<BB", _TAG_CONST, int(node.value)))
        return
    if isinstance(node, NotNode):
        out.append(struct.pack("<B", _TAG_NOT))
        _encode_node(node.child, out)
        return
    if isinstance(node, (AndNode, OrNode)):
        tag = _TAG_AND if isinstance(node, AndNode) else _TAG_OR
        out.append(struct.pack("<BI", tag, len(node.children)))
        for child in node.children:
            _encode_node(child, out)
        return
    raise SubscriptionError("cannot encode node of type %s" % type(node).__name__)


def decode_node(buffer: bytes) -> Node:
    """Inverse of :func:`encode_node`."""
    node, offset = _decode_node(buffer, 0)
    if offset != len(buffer):
        raise SubscriptionError("trailing bytes after decoded subscription tree")
    return node


def _decode_node(buffer: bytes, offset: int) -> Tuple[Node, int]:
    (tag,) = struct.unpack_from("<B", buffer, offset)
    offset += 1
    if tag == _TAG_PRED:
        operator_code, attribute_length = struct.unpack_from("<BH", buffer, offset)
        offset += 3
        attribute = buffer[offset : offset + attribute_length].decode("utf-8")
        offset += attribute_length
        (peek,) = struct.unpack_from("<B", buffer, offset)
        if peek == _VTAG_SET:
            (count,) = struct.unpack_from("<I", buffer, offset + 1)
            offset += 5
            members = []
            for _ in range(count):
                member, offset = _decode_scalar(buffer, offset)
                members.append(member)
            value: Any = frozenset(members)
        else:
            value, offset = _decode_scalar(buffer, offset)
        operator = _OPERATORS_BY_CODE[operator_code]
        return PredicateLeaf(Predicate(attribute, operator, value)), offset
    if tag == _TAG_CONST:
        (raw,) = struct.unpack_from("<B", buffer, offset)
        return ConstNode(bool(raw)), offset + 1
    if tag == _TAG_NOT:
        child, offset = _decode_node(buffer, offset)
        return NotNode(child), offset
    if tag in (_TAG_AND, _TAG_OR):
        (count,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        children = []
        for _ in range(count):
            child, offset = _decode_node(buffer, offset)
            children.append(child)
        if tag == _TAG_AND:
            return AndNode(children), offset
        return OrNode(children), offset
    raise SubscriptionError("corrupt node tag %d" % tag)
