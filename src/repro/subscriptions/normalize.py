"""Negation normal form and constant folding for subscription trees.

Registered subscriptions are normalized once, which gives every downstream
component (matcher, selectivity estimator, pruning engine) a tree with
strong structural invariants:

1. no :class:`~repro.subscriptions.nodes.NotNode` (negation is pushed into
   predicate operators via their complements),
2. no :class:`~repro.subscriptions.nodes.ConstNode` below the root (constant
   children are folded away; a whole-tree constant stays a single node),
3. AND/OR nodes have at least two children,
4. no AND directly below an AND, no OR directly below an OR (flattening),
5. duplicate children of a connective are removed,
6. children appear in a canonical deterministic order.

Normalization is exactly semantics-preserving because negation has
predicate-level semantics (see :mod:`repro.subscriptions.predicates`).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import NormalizationError
from repro.subscriptions.nodes import (
    FALSE,
    TRUE,
    AndNode,
    ConstNode,
    Node,
    NotNode,
    OrNode,
    PredicateLeaf,
)


def normalize(tree: Node) -> Node:
    """Return the negation normal form of ``tree`` with folding applied."""
    return _normalize(tree, negated=False)


def _normalize(node: Node, negated: bool) -> Node:
    if isinstance(node, PredicateLeaf):
        if negated:
            return PredicateLeaf(node.predicate.complemented)
        return node
    if isinstance(node, ConstNode):
        return FALSE if (node.value == negated) else TRUE
    if isinstance(node, NotNode):
        return _normalize(node.child, not negated)
    if isinstance(node, AndNode):
        children = node.children
        # De Morgan: NOT(a AND b) == NOT a OR NOT b.
        make_or = negated
    elif isinstance(node, OrNode):
        children = node.children
        make_or = not negated
    else:
        raise NormalizationError(
            "cannot normalize node of type %s" % type(node).__name__
        )
    normalized = [_normalize(child, negated) for child in children]
    if make_or:
        return _fold_or(normalized)
    return _fold_and(normalized)


def _fold_and(children: List[Node]) -> Node:
    """Build a folded, flattened, deduplicated, sorted AND."""
    flat: List[Node] = []
    for child in children:
        if isinstance(child, ConstNode):
            if not child.value:
                return FALSE
            continue  # drop neutral element
        if isinstance(child, AndNode):
            flat.extend(child.children)
        else:
            flat.append(child)
    unique = _dedupe(flat)
    if not unique:
        return TRUE
    if len(unique) == 1:
        return unique[0]
    return AndNode(sorted(unique, key=_sort_key))


def _fold_or(children: List[Node]) -> Node:
    """Build a folded, flattened, deduplicated, sorted OR."""
    flat: List[Node] = []
    for child in children:
        if isinstance(child, ConstNode):
            if child.value:
                return TRUE
            continue  # drop neutral element
        if isinstance(child, OrNode):
            flat.extend(child.children)
        else:
            flat.append(child)
    unique = _dedupe(flat)
    if not unique:
        return FALSE
    if len(unique) == 1:
        return unique[0]
    return OrNode(sorted(unique, key=_sort_key))


def _dedupe(children: List[Node]) -> List[Node]:
    seen = set()
    unique: List[Node] = []
    for child in children:
        if child in seen:
            continue
        seen.add(child)
        unique.append(child)
    return unique


def _sort_key(node: Node) -> Tuple:
    """Deterministic total order over normalized nodes.

    Leaves sort before connectives; connectives sort by kind, child count,
    then recursively by children.  The order is arbitrary but stable, which
    is all canonicalization needs.
    """
    if isinstance(node, PredicateLeaf):
        return (0,) + node.predicate.sort_key()
    if isinstance(node, ConstNode):
        return (1, node.value)
    tag = 2 if isinstance(node, AndNode) else 3
    return (tag, len(node.children)) + tuple(
        _sort_key(child) for child in node.children
    )


def fold_constants(tree: Node) -> Node:
    """Re-fold a *normalized* tree that may contain constants.

    Pruning replaces subtrees with ``true``; this pass removes the constant
    and restores the normalization invariants (it never needs to handle
    :class:`NotNode`, which normalization already eliminated).  Children are
    **not** re-sorted: pruning-relative node paths inside untouched siblings
    stay meaningful for replay and debugging.
    """
    if isinstance(tree, (PredicateLeaf, ConstNode)):
        return tree
    if isinstance(tree, AndNode):
        folded = [fold_constants(child) for child in tree.children]
        kept: List[Node] = []
        for child in folded:
            if isinstance(child, ConstNode):
                if not child.value:
                    return FALSE
                continue
            if isinstance(child, AndNode):
                kept.extend(child.children)
            else:
                kept.append(child)
        kept = _dedupe(kept)
        if not kept:
            return TRUE
        if len(kept) == 1:
            return kept[0]
        return AndNode(kept)
    if isinstance(tree, OrNode):
        folded = [fold_constants(child) for child in tree.children]
        kept = []
        for child in folded:
            if isinstance(child, ConstNode):
                if child.value:
                    return TRUE
                continue
            if isinstance(child, OrNode):
                kept.extend(child.children)
            else:
                kept.append(child)
        kept = _dedupe(kept)
        if not kept:
            return FALSE
        if len(kept) == 1:
            return kept[0]
        return OrNode(kept)
    raise NormalizationError(
        "fold_constants expects a normalized tree, found %s" % type(tree).__name__
    )


def is_normalized(tree: Node) -> bool:
    """Check the normalization invariants listed in the module docstring."""
    if isinstance(tree, ConstNode):
        return True  # a whole-tree constant is allowed
    return _check(tree, parent_kind=None)


def _check(node: Node, parent_kind) -> bool:
    if isinstance(node, PredicateLeaf):
        return True
    if isinstance(node, (NotNode, ConstNode)):
        return False
    if isinstance(node, (AndNode, OrNode)):
        if len(node.children) < 2:
            return False
        if parent_kind is type(node):
            return False
        seen = set()
        for child in node.children:
            if child in seen:
                return False
            seen.add(child)
            if not _check(child, parent_kind=type(node)):
                return False
        return True
    return False
