"""Immutable Boolean subscription tree nodes.

Subscriptions are trees whose internal nodes are Boolean connectives and
whose leaves are predicates (paper Sect. 2.1).  Nodes are immutable;
operations that change a tree (normalization, pruning) build new trees that
share unchanged subtrees.  Immutability is what lets the pruning engine keep
the *originally registered* tree around for its Δsel/Δeff reference points
at zero copying cost.

Node addressing
---------------
Several components need to point at a node inside a tree (for example a
pruning operation names the AND child it removes).  A *path* is a tuple of
child indexes from the root; ``()`` is the root itself.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import SubscriptionError
from repro.events import Event
from repro.subscriptions.predicates import Predicate

Path = Tuple[int, ...]

#: Byte-size model: fixed overhead per tree node (type tag + child count /
#: pointer bookkeeping in a compact encoding).
NODE_OVERHEAD_BYTES = 8


class Node:
    """Abstract base class of subscription tree nodes."""

    __slots__ = ()

    #: Short type tag used by serialization and ``repr``.
    kind = "node"

    @property
    def children(self) -> Tuple["Node", ...]:
        """Child nodes (empty for leaves)."""
        return ()

    def evaluate(self, event: Event) -> bool:
        """Evaluate the Boolean expression rooted here against ``event``."""
        raise NotImplementedError

    def iter_nodes(self) -> Iterator[Tuple[Path, "Node"]]:
        """Yield ``(path, node)`` pairs in preorder."""
        stack: List[Tuple[Path, Node]] = [((), self)]
        while stack:
            path, node = stack.pop()
            yield path, node
            for index in range(len(node.children) - 1, -1, -1):
                stack.append((path + (index,), node.children[index]))

    def node_at(self, path: Path) -> "Node":
        """Return the node addressed by ``path``.

        Raises :class:`~repro.errors.SubscriptionError` for invalid paths.
        """
        node: Node = self
        for index in path:
            children = node.children
            if index < 0 or index >= len(children):
                raise SubscriptionError("invalid node path %r" % (path,))
            node = children[index]
        return node

    def replace_at(self, path: Path, replacement: "Node") -> "Node":
        """Return a new tree with the node at ``path`` replaced.

        Shares every subtree not on the path.
        """
        if not path:
            return replacement
        children = self.children
        index = path[0]
        if index < 0 or index >= len(children):
            raise SubscriptionError("invalid node path %r" % (path,))
        new_child = children[index].replace_at(path[1:], replacement)
        new_children = children[:index] + (new_child,) + children[index + 1 :]
        return self.with_children(new_children)

    def with_children(self, children: Sequence["Node"]) -> "Node":
        """Return a copy of this node with different children."""
        raise NotImplementedError

    def predicates(self) -> List[Predicate]:
        """All predicates at the leaves, in left-to-right order."""
        return [node.predicate for _path, node in self.iter_nodes()
                if isinstance(node, PredicateLeaf)]

    def __eq__(self, other: object) -> bool:  # structural equality
        if type(self) is not type(other):
            return NotImplemented
        return self._identity() == other._identity()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._identity()))

    def _identity(self) -> object:
        raise NotImplementedError


class PredicateLeaf(Node):
    """A leaf node carrying a single predicate."""

    __slots__ = ("predicate",)
    kind = "pred"

    def __init__(self, predicate: Predicate) -> None:
        if not isinstance(predicate, Predicate):
            raise SubscriptionError("PredicateLeaf requires a Predicate")
        self.predicate = predicate

    def evaluate(self, event: Event) -> bool:
        return self.predicate.evaluate(event)

    def with_children(self, children: Sequence[Node]) -> Node:
        if children:
            raise SubscriptionError("predicate leaves have no children")
        return self

    def _identity(self) -> object:
        return self.predicate

    def __repr__(self) -> str:
        return "Leaf(%r)" % (self.predicate,)


class ConstNode(Node):
    """A constant ``true`` or ``false`` leaf.

    Constants appear transiently during folding and as the degenerate form
    of a fully pruned subscription.
    """

    __slots__ = ("value",)
    kind = "const"

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def evaluate(self, event: Event) -> bool:
        return self.value

    def with_children(self, children: Sequence[Node]) -> Node:
        if children:
            raise SubscriptionError("constant nodes have no children")
        return self

    def _identity(self) -> object:
        return self.value

    def __repr__(self) -> str:
        return "Const(%s)" % self.value


#: Shared singletons; ConstNode remains instantiable for deserialization.
TRUE = ConstNode(True)
FALSE = ConstNode(False)


class _Connective(Node):
    """Common base of AND/OR nodes."""

    __slots__ = ("_children", "_hash")

    def __init__(self, children: Sequence[Node]) -> None:
        children = tuple(children)
        for child in children:
            if not isinstance(child, Node):
                raise SubscriptionError("children must be Node instances")
        self._children = children
        self._hash: Optional[int] = None

    @property
    def children(self) -> Tuple[Node, ...]:
        return self._children

    def with_children(self, children: Sequence[Node]) -> Node:
        return type(self)(children)

    def _identity(self) -> object:
        return self._children

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((type(self).__name__, self._children))
        return self._hash


class AndNode(_Connective):
    """Conjunction: fulfilled when every child is fulfilled."""

    __slots__ = ()
    kind = "and"

    def evaluate(self, event: Event) -> bool:
        return all(child.evaluate(event) for child in self._children)

    def __repr__(self) -> str:
        return "And(%s)" % ", ".join(repr(child) for child in self._children)


class OrNode(_Connective):
    """Disjunction: fulfilled when at least one child is fulfilled."""

    __slots__ = ()
    kind = "or"

    def evaluate(self, event: Event) -> bool:
        return any(child.evaluate(event) for child in self._children)

    def __repr__(self) -> str:
        return "Or(%s)" % ", ".join(repr(child) for child in self._children)


class NotNode(Node):
    """Negation, with predicate-level semantics.

    ``NOT`` complements the predicates beneath it: ``NOT (price < 10)``
    means ``price >= 10`` and still requires the attribute to be present.
    Evaluation therefore delegates to the complemented subtree, which keeps
    raw trees and their negation normal form exactly equivalent.
    ``NotNode`` never survives normalization.
    """

    __slots__ = ("child",)
    kind = "not"

    def __init__(self, child: Node) -> None:
        if not isinstance(child, Node):
            raise SubscriptionError("NotNode requires a Node child")
        self.child = child

    @property
    def children(self) -> Tuple[Node, ...]:
        return (self.child,)

    def evaluate(self, event: Event) -> bool:
        return _evaluate_negated(self.child, event)

    def with_children(self, children: Sequence[Node]) -> Node:
        if len(children) != 1:
            raise SubscriptionError("NotNode has exactly one child")
        return NotNode(children[0])

    def _identity(self) -> object:
        return self.child

    def __repr__(self) -> str:
        return "Not(%r)" % (self.child,)


def _evaluate_negated(node: Node, event: Event) -> bool:
    """Evaluate the logical negation of ``node`` with predicate-level
    semantics (De Morgan over connectives, operator complement at leaves)."""
    if isinstance(node, PredicateLeaf):
        return node.predicate.complemented.evaluate(event)
    if isinstance(node, ConstNode):
        return not node.value
    if isinstance(node, AndNode):
        return any(_evaluate_negated(child, event) for child in node.children)
    if isinstance(node, OrNode):
        return all(_evaluate_negated(child, event) for child in node.children)
    if isinstance(node, NotNode):
        return node.child.evaluate(event)
    raise SubscriptionError("cannot negate node of type %s" % type(node).__name__)
