"""Subscription model: predicates, Boolean filter trees, and metrics.

A subscription is an arbitrary Boolean expression over predicates
(attribute-operator-value triples), represented as a tree (paper Sect. 2.1).
This package provides:

* :mod:`repro.subscriptions.predicates` — operators and predicate semantics,
* :mod:`repro.subscriptions.nodes` — immutable tree nodes,
* :mod:`repro.subscriptions.builder` — a small construction DSL,
* :mod:`repro.subscriptions.normalize` — negation normal form + folding,
* :mod:`repro.subscriptions.metrics` — pmin, byte sizes, node counts,
* :mod:`repro.subscriptions.serialize` — dict/JSON and binary encodings,
* :mod:`repro.subscriptions.subscription` — the registered artifact.
"""

from repro.subscriptions.builder import And, Not, Or, P, attr
from repro.subscriptions.nodes import (
    AndNode,
    ConstNode,
    Node,
    NotNode,
    OrNode,
    PredicateLeaf,
)
from repro.subscriptions.metrics import (
    count_leaves,
    count_nodes,
    memory_bytes,
    pmin,
    tree_depth,
)
from repro.subscriptions.normalize import is_normalized, normalize
from repro.subscriptions.predicates import Operator, Predicate
from repro.subscriptions.serialize import (
    node_from_dict,
    node_to_dict,
    subscription_from_dict,
    subscription_to_dict,
)
from repro.subscriptions.subscription import Subscription

__all__ = [
    "And",
    "AndNode",
    "ConstNode",
    "Node",
    "Not",
    "NotNode",
    "Operator",
    "Or",
    "OrNode",
    "P",
    "Predicate",
    "PredicateLeaf",
    "Subscription",
    "attr",
    "count_leaves",
    "count_nodes",
    "is_normalized",
    "memory_bytes",
    "node_from_dict",
    "node_to_dict",
    "normalize",
    "pmin",
    "subscription_from_dict",
    "subscription_to_dict",
    "tree_depth",
]
