"""Predicates: attribute-operator-value conditions on event messages.

A predicate is the variable of a Boolean subscription expression (paper
Sect. 2.1): an ``attribute operator value`` triple that evaluates to true or
false on an event message.

Semantics
---------
* A predicate on an attribute the event does not carry is **unfulfilled**,
  for every operator.  This is the standard content-based semantics and it
  makes negation predicate-level: ``NOT (price < 10)`` is the complemented
  predicate ``price >= 10`` and still requires ``price`` to be present.
  Negation normal form (:mod:`repro.subscriptions.normalize`) is therefore
  exactly semantics-preserving.
* Ordered comparisons apply to numbers and to strings (lexicographically),
  but never across the two kinds; a kind mismatch is unfulfilled.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Optional, Tuple, Union

from repro.errors import SubscriptionError
from repro.events import Event, Value

PredicateValue = Union[str, int, float, bool, FrozenSet[Value]]

#: Byte-size model constants for :meth:`Predicate.size_bytes`.
_PREDICATE_OVERHEAD_BYTES = 8
_NUMERIC_BYTES = 8


class Operator(enum.Enum):
    """Comparison operators supported in predicates.

    Each operator knows its complement, which is used to push negations
    down to the predicate level during normalization.
    """

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN_SET = "in"
    NOT_IN_SET = "not-in"
    PREFIX = "prefix"
    NOT_PREFIX = "not-prefix"
    CONTAINS = "contains"
    NOT_CONTAINS = "not-contains"

    @property
    def complement(self) -> "Operator":
        """The operator matching exactly the events this one rejects
        (among events that carry the attribute)."""
        return _COMPLEMENTS[self]

    @property
    def is_ordered(self) -> bool:
        """True for the four range comparisons (<, <=, >, >=)."""
        return self in (Operator.LT, Operator.LE, Operator.GT, Operator.GE)

    @property
    def is_string_only(self) -> bool:
        """True for operators defined only on string values."""
        return self in (
            Operator.PREFIX,
            Operator.NOT_PREFIX,
            Operator.CONTAINS,
            Operator.NOT_CONTAINS,
        )

    @property
    def is_negated(self) -> bool:
        """True for the negated operators, which the predicate indexes
        answer as *all entries* minus a small excluded set."""
        return self in (
            Operator.NE,
            Operator.NOT_IN_SET,
            Operator.NOT_PREFIX,
            Operator.NOT_CONTAINS,
        )


_COMPLEMENTS = {
    Operator.EQ: Operator.NE,
    Operator.NE: Operator.EQ,
    Operator.LT: Operator.GE,
    Operator.GE: Operator.LT,
    Operator.LE: Operator.GT,
    Operator.GT: Operator.LE,
    Operator.IN_SET: Operator.NOT_IN_SET,
    Operator.NOT_IN_SET: Operator.IN_SET,
    Operator.PREFIX: Operator.NOT_PREFIX,
    Operator.NOT_PREFIX: Operator.PREFIX,
    Operator.CONTAINS: Operator.NOT_CONTAINS,
    Operator.NOT_CONTAINS: Operator.CONTAINS,
}


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _comparable(event_value: Value, constant: Value) -> bool:
    """Whether an ordered comparison between the two values is defined."""
    if _is_numeric(event_value) and _is_numeric(constant):
        return True
    if isinstance(event_value, str) and isinstance(constant, str):
        return True
    return False


class Predicate:
    """An immutable attribute-operator-value condition.

    >>> from repro.events import Event
    >>> pred = Predicate("price", Operator.LE, 20)
    >>> pred.evaluate(Event({"price": 15}))
    True
    >>> pred.evaluate(Event({"title": "Dune"}))
    False
    """

    __slots__ = ("attribute", "operator", "value", "_hash")

    def __init__(self, attribute: str, operator: Operator, value: PredicateValue) -> None:
        if not isinstance(attribute, str) or not attribute:
            raise SubscriptionError("predicate attribute must be a non-empty string")
        if not isinstance(operator, Operator):
            raise SubscriptionError("predicate operator must be an Operator")
        value = self._validate_value(operator, value)
        self.attribute = attribute
        self.operator = operator
        self.value = value
        self._hash: Optional[int] = None

    @staticmethod
    def _validate_value(operator: Operator, value: PredicateValue) -> PredicateValue:
        if operator in (Operator.IN_SET, Operator.NOT_IN_SET):
            if isinstance(value, (set, frozenset, list, tuple)):
                value = frozenset(value)
            else:
                raise SubscriptionError("set-membership predicates need a collection value")
            if not value:
                raise SubscriptionError("set-membership predicates need a non-empty set")
            for member in value:
                if not isinstance(member, (str, int, float, bool)):
                    raise SubscriptionError("unsupported set member type")
            return value
        if operator.is_string_only and not isinstance(value, str):
            raise SubscriptionError(
                "%s predicates require a string value" % operator.value
            )
        if not isinstance(value, (str, int, float, bool)):
            raise SubscriptionError("unsupported predicate value type")
        if operator.is_ordered and isinstance(value, bool):
            raise SubscriptionError("ordered comparisons are undefined for booleans")
        return value

    def evaluate(self, event: Event) -> bool:
        """Evaluate this predicate against ``event``.

        Missing attributes and kind mismatches are unfulfilled.
        """
        if self.attribute not in event:
            return False
        return self.test(event[self.attribute])

    def test(self, event_value: Value) -> bool:
        """Evaluate this predicate against a raw attribute value."""
        op = self.operator
        constant = self.value
        if op is Operator.EQ:
            return self._values_equal(event_value, constant)
        if op is Operator.NE:
            return not self._values_equal(event_value, constant)
        if op.is_ordered:
            if not _comparable(event_value, constant):
                return False
            if op is Operator.LT:
                return event_value < constant
            if op is Operator.LE:
                return event_value <= constant
            if op is Operator.GT:
                return event_value > constant
            return event_value >= constant
        if op is Operator.IN_SET:
            return any(self._values_equal(event_value, member) for member in constant)
        if op is Operator.NOT_IN_SET:
            return not any(
                self._values_equal(event_value, member) for member in constant
            )
        if not isinstance(event_value, str):
            return False
        if op is Operator.PREFIX:
            return event_value.startswith(constant)
        if op is Operator.NOT_PREFIX:
            return not event_value.startswith(constant)
        if op is Operator.CONTAINS:
            return constant in event_value
        return constant not in event_value

    @staticmethod
    def _values_equal(left: Value, right: Value) -> bool:
        """Equality that never equates across string/number/bool kinds."""
        if isinstance(left, bool) or isinstance(right, bool):
            return isinstance(left, bool) and isinstance(right, bool) and left == right
        if _is_numeric(left) and _is_numeric(right):
            return left == right
        if isinstance(left, str) and isinstance(right, str):
            return left == right
        return False

    @property
    def complemented(self) -> "Predicate":
        """The predicate accepting exactly the events this one rejects
        (among events carrying the attribute)."""
        return Predicate(self.attribute, self.operator.complement, self.value)

    @property
    def size_bytes(self) -> int:
        """Approximate storage size of this predicate in bytes.

        This is the per-predicate component of the paper's ``mem``
        estimation: attribute name, operator tag, and value encoding.
        """
        total = _PREDICATE_OVERHEAD_BYTES + len(self.attribute.encode("utf-8"))
        if isinstance(self.value, frozenset):
            for member in self.value:
                if isinstance(member, str):
                    total += len(member.encode("utf-8")) + 1
                else:
                    total += _NUMERIC_BYTES
        elif isinstance(self.value, str):
            total += len(self.value.encode("utf-8"))
        else:
            total += _NUMERIC_BYTES
        return total

    def sort_key(self) -> Tuple[str, str, str]:
        """A deterministic total order over predicates (for canonical trees)."""
        if isinstance(self.value, frozenset):
            value_repr = "|".join(sorted(repr(member) for member in self.value))
        else:
            value_repr = repr(self.value)
        return (self.attribute, self.operator.value, value_repr)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return (
            self.attribute == other.attribute
            and self.operator is other.operator
            and self.value == other.value
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.attribute, self.operator, self.value))
        return self._hash

    def __repr__(self) -> str:
        if isinstance(self.value, frozenset):
            value_repr = "{%s}" % ", ".join(sorted(repr(v) for v in self.value))
        else:
            value_repr = repr(self.value)
        return "Predicate(%s %s %s)" % (self.attribute, self.operator.value, value_repr)
