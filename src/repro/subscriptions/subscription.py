"""The registered subscription artifact.

A :class:`Subscription` binds an id and an owner (client name) to a
*normalized* filter tree.  It is immutable: pruning never modifies a
``Subscription`` — brokers keep separate routing-entry state holding the
current pruned tree next to the original (see :mod:`repro.core.ops`).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SubscriptionError
from repro.events import Event
from repro.subscriptions.metrics import count_leaves, memory_bytes, pmin
from repro.subscriptions.nodes import Node
from repro.subscriptions.normalize import is_normalized, normalize


class Subscription:
    """An immutable registered subscription.

    Parameters
    ----------
    subscription_id:
        Integer id, unique within the registering system.
    tree:
        Filter tree; normalized on construction unless it already is.
    owner:
        Name of the subscribing client (used by brokers for delivery).

    >>> from repro.subscriptions.builder import P, And
    >>> sub = Subscription(1, And(P("price") <= 20, P("category") == "fiction"))
    >>> sub.pmin
    2
    """

    __slots__ = ("id", "tree", "owner", "_pmin", "_size_bytes", "_leaf_count")

    def __init__(
        self,
        subscription_id: int,
        tree: Node,
        owner: Optional[str] = None,
    ) -> None:
        if not isinstance(subscription_id, int):
            raise SubscriptionError("subscription id must be an int")
        if not isinstance(tree, Node):
            raise SubscriptionError("subscription tree must be a Node")
        if not is_normalized(tree):
            tree = normalize(tree)
        self.id = subscription_id
        self.tree = tree
        self.owner = owner
        self._pmin: Optional[int] = None
        self._size_bytes: Optional[int] = None
        self._leaf_count: Optional[int] = None

    def matches(self, event: Event) -> bool:
        """Evaluate the subscription against an event."""
        return self.tree.evaluate(event)

    @property
    def pmin(self) -> int:
        """Minimal number of fulfilled predicates required (cached)."""
        if self._pmin is None:
            self._pmin = pmin(self.tree)
        return self._pmin

    @property
    def size_bytes(self) -> int:
        """``mem≈`` byte-size estimate of the tree (cached)."""
        if self._size_bytes is None:
            self._size_bytes = memory_bytes(self.tree)
        return self._size_bytes

    @property
    def leaf_count(self) -> int:
        """Number of predicate/subscription associations (cached)."""
        if self._leaf_count is None:
            self._leaf_count = count_leaves(self.tree)
        return self._leaf_count

    def with_tree(self, tree: Node) -> "Subscription":
        """A copy of this subscription carrying a different (pruned) tree."""
        return Subscription(self.id, tree, owner=self.owner)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subscription):
            return NotImplemented
        return (
            self.id == other.id
            and self.owner == other.owner
            and self.tree == other.tree
        )

    def __hash__(self) -> int:
        return hash((self.id, self.owner, self.tree))

    def __repr__(self) -> str:
        return "Subscription(id=%d, owner=%r, tree=%r)" % (
            self.id,
            self.owner,
            self.tree,
        )
