"""Structural metrics of subscription trees.

These metrics are the raw material of the paper's three pruning heuristics:

* ``pmin`` (Sect. 3.3) — the minimal number of fulfilled predicates required
  for the subscription to be fulfilled; the counting-based filtering engine
  evaluates a subscription only once that many of its predicates matched.
* ``memory_bytes`` (Sect. 3.2) — the ``mem≈`` size model for subscription
  trees (node overheads plus predicate encodings).
* ``count_leaves`` — the number of predicate/subscription associations this
  tree contributes to a routing table, the memory unit reported by the
  paper's Fig. 1(c)/(f).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SubscriptionError
from repro.subscriptions.nodes import (
    NODE_OVERHEAD_BYTES,
    AndNode,
    ConstNode,
    Node,
    NotNode,
    OrNode,
    PredicateLeaf,
)

#: pmin sentinel for unsatisfiable (constant-false) subscriptions: no number
#: of fulfilled predicates can ever fulfil them.  Kept as an int so pmin
#: vectors stay integer-typed.
PMIN_UNSATISFIABLE = 2 ** 31


def pmin(tree: Node) -> int:
    """Minimal number of fulfilled predicates required to fulfil ``tree``.

    AND sums its children (every branch must be fulfilled); OR takes the
    cheapest child; a predicate needs itself; constant ``true`` needs
    nothing and constant ``false`` can never be fulfilled.

    Raises on non-normalized trees (``NotNode``): pmin is defined for the
    negation normal form the matcher actually indexes.
    """
    if isinstance(tree, PredicateLeaf):
        return 1
    if isinstance(tree, ConstNode):
        return 0 if tree.value else PMIN_UNSATISFIABLE
    if isinstance(tree, AndNode):
        total = 0
        for child in tree.children:
            total += pmin(child)
        return min(total, PMIN_UNSATISFIABLE)
    if isinstance(tree, OrNode):
        return min(pmin(child) for child in tree.children)
    if isinstance(tree, NotNode):
        raise SubscriptionError("pmin is undefined for non-normalized trees")
    raise SubscriptionError("unknown node type %s" % type(tree).__name__)


def memory_bytes(tree: Node) -> int:
    """The ``mem≈`` byte-size estimate of a subscription tree.

    Charges a fixed overhead per node plus each predicate's encoding size.
    This mirrors the paper's estimation, which "only considers the sizes of
    subscriptions themselves" (index structures shrink on top of it).
    """
    total = 0
    for _path, node in tree.iter_nodes():
        total += NODE_OVERHEAD_BYTES
        if isinstance(node, PredicateLeaf):
            total += node.predicate.size_bytes
    return total


def count_leaves(tree: Node) -> int:
    """Number of predicate leaves (predicate/subscription associations)."""
    return sum(
        1 for _path, node in tree.iter_nodes() if isinstance(node, PredicateLeaf)
    )


def count_nodes(tree: Node) -> int:
    """Total number of tree nodes."""
    return sum(1 for _ in tree.iter_nodes())


def tree_depth(tree: Node) -> int:
    """Depth of the tree (a lone leaf or constant has depth 1)."""
    children = tree.children
    if not children:
        return 1
    return 1 + max(tree_depth(child) for child in children)


def attribute_histogram(tree: Node) -> Dict[str, int]:
    """Count predicate leaves per attribute name."""
    histogram: Dict[str, int] = {}
    for _path, node in tree.iter_nodes():
        if isinstance(node, PredicateLeaf):
            name = node.predicate.attribute
            histogram[name] = histogram.get(name, 0) + 1
    return histogram


def and_arities(tree: Node) -> List[int]:
    """Arities of all AND nodes (each AND with arity k offers k pruning
    candidates; useful for sizing pruning schedules)."""
    return [
        len(node.children)
        for _path, node in tree.iter_nodes()
        if isinstance(node, AndNode)
    ]
