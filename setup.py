"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so that offline
environments without the `wheel` package can still `pip install -e .`
through the legacy `setup.py develop` code path.
"""

from setuptools import setup

setup()
