"""Shared hypothesis strategies: random predicates, trees, and events.

The strategies draw attributes from a small closed universe so random
events actually exercise the predicates (matching is not vanishingly
rare), and they generate every operator the library supports.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.events import Event
from repro.matching.counting import CountingMatcher
from repro.matching.sharded import ShardedMatcher
from repro.subscriptions.nodes import (
    AndNode,
    NotNode,
    OrNode,
    PredicateLeaf,
)
from repro.subscriptions.predicates import Operator, Predicate

NUMERIC_ATTRIBUTES = ["na", "nb", "nc"]
STRING_ATTRIBUTES = ["sa", "sb"]
BOOL_ATTRIBUTES = ["ba"]
ALL_ATTRIBUTES = NUMERIC_ATTRIBUTES + STRING_ATTRIBUTES + BOOL_ATTRIBUTES

STRING_VALUES = ["alpha", "alphabet", "beta", "gamma", "delta", "al", ""]
NUMERIC_VALUES = [-5, -1, 0, 1, 2, 3, 5, 10, 2.5, -0.5]


def numeric_predicates() -> st.SearchStrategy[Predicate]:
    """Predicates over the numeric attribute universe."""
    scalar_ops = st.sampled_from(
        [Operator.EQ, Operator.NE, Operator.LT, Operator.LE, Operator.GT, Operator.GE]
    )
    scalar = st.builds(
        Predicate,
        st.sampled_from(NUMERIC_ATTRIBUTES),
        scalar_ops,
        st.sampled_from(NUMERIC_VALUES),
    )
    sets = st.builds(
        Predicate,
        st.sampled_from(NUMERIC_ATTRIBUTES),
        st.sampled_from([Operator.IN_SET, Operator.NOT_IN_SET]),
        st.frozensets(st.sampled_from(NUMERIC_VALUES), min_size=1, max_size=4),
    )
    return st.one_of(scalar, sets)


def string_predicates() -> st.SearchStrategy[Predicate]:
    """Predicates over the string attribute universe."""
    nonempty = [value for value in STRING_VALUES if value]
    scalar = st.builds(
        Predicate,
        st.sampled_from(STRING_ATTRIBUTES),
        st.sampled_from(
            [
                Operator.EQ,
                Operator.NE,
                Operator.LT,
                Operator.LE,
                Operator.GT,
                Operator.GE,
                Operator.PREFIX,
                Operator.NOT_PREFIX,
                Operator.CONTAINS,
                Operator.NOT_CONTAINS,
            ]
        ),
        st.sampled_from(nonempty),
    )
    sets = st.builds(
        Predicate,
        st.sampled_from(STRING_ATTRIBUTES),
        st.sampled_from([Operator.IN_SET, Operator.NOT_IN_SET]),
        st.frozensets(st.sampled_from(nonempty), min_size=1, max_size=3),
    )
    return st.one_of(scalar, sets)


def bool_predicates() -> st.SearchStrategy[Predicate]:
    """Predicates over the boolean attribute universe."""
    return st.builds(
        Predicate,
        st.sampled_from(BOOL_ATTRIBUTES),
        st.sampled_from([Operator.EQ, Operator.NE]),
        st.booleans(),
    )


def predicates() -> st.SearchStrategy[Predicate]:
    """Any predicate over the shared attribute universe."""
    return st.one_of(numeric_predicates(), string_predicates(), bool_predicates())


def leaves() -> st.SearchStrategy[PredicateLeaf]:
    """Predicate leaf nodes."""
    return st.builds(PredicateLeaf, predicates())


def trees(max_leaves: int = 8) -> st.SearchStrategy:
    """Random Boolean trees (possibly with NOT nodes, non-normalized).

    ``max_leaves`` bounds the recursion; raise it to draw the deeper,
    wider general trees that exercise the compiled-tree program.
    """
    return st.recursive(
        leaves(),
        lambda children: st.one_of(
            st.builds(lambda kids: AndNode(kids), st.lists(children, min_size=2, max_size=4)),
            st.builds(lambda kids: OrNode(kids), st.lists(children, min_size=2, max_size=4)),
            st.builds(NotNode, children),
        ),
        max_leaves=max_leaves,
    )


#: Matcher construction recipes for equivalence suites that should run
#: their corpus against both the unsharded engine and the sharded path
#: (serial for shrinkability, threaded for the production fan-out).
#: Usable as ``@pytest.mark.parametrize("make_matcher", MATCHER_FACTORIES,
#: ids=MATCHER_FACTORY_IDS)``.
MATCHER_FACTORIES = [
    CountingMatcher,
    lambda: ShardedMatcher(3, executor="serial"),
    lambda: ShardedMatcher(2, executor="threads"),
    lambda: ShardedMatcher(2, executor="processes"),
]
MATCHER_FACTORY_IDS = [
    "counting",
    "sharded-serial-3",
    "sharded-threads-2",
    "sharded-processes-2",
]


def events() -> st.SearchStrategy[Event]:
    """Random events over the shared attribute universe.

    Each attribute is present with ~80% probability, so missing-attribute
    semantics are exercised too.
    """
    numeric_slots = st.fixed_dictionaries(
        {},
        optional={
            name: st.sampled_from(NUMERIC_VALUES) for name in NUMERIC_ATTRIBUTES
        },
    )
    string_slots = st.fixed_dictionaries(
        {},
        optional={name: st.sampled_from(STRING_VALUES) for name in STRING_ATTRIBUTES},
    )
    bool_slots = st.fixed_dictionaries(
        {}, optional={name: st.booleans() for name in BOOL_ATTRIBUTES}
    )
    return st.builds(
        lambda a, b, c: Event({**a, **b, **c}),
        numeric_slots,
        string_slots,
        bool_slots,
    )
