"""Tests for single-broker routing tables."""

import pytest

from repro.errors import RoutingError
from repro.events import Event
from repro.routing.broker import Broker, Interface
from repro.subscriptions.builder import And, P
from repro.subscriptions.normalize import normalize
from repro.subscriptions.subscription import Subscription


@pytest.fixture()
def broker():
    broker = Broker("b0")
    broker.connect("b1")
    broker.connect("b2")
    return broker


def sub(sub_id, tree, owner=None):
    return Subscription(sub_id, tree, owner=owner)


class TestWiring:
    def test_connect_sorted(self, broker):
        assert broker.neighbors == ["b1", "b2"]

    def test_reject_self_neighbor(self):
        with pytest.raises(RoutingError):
            Broker("x").connect("x")

    def test_reject_duplicate_neighbor(self, broker):
        with pytest.raises(RoutingError):
            broker.connect("b1")


class TestEntries:
    def test_add_and_route_client_entry(self, broker):
        broker.add_entry(sub(1, P("a") == 1), Interface.client("alice"))
        routed = broker.route(Event({"a": 1}))
        assert routed == {Interface.client("alice"): [1]}

    def test_add_broker_entry_requires_neighbor(self, broker):
        with pytest.raises(RoutingError):
            broker.add_entry(sub(1, P("a") == 1), Interface.broker("zz"))

    def test_duplicate_entry_rejected(self, broker):
        broker.add_entry(sub(1, P("a") == 1), Interface.client("alice"))
        with pytest.raises(RoutingError):
            broker.add_entry(sub(1, P("a") == 2), Interface.client("bob"))

    def test_remove_entry(self, broker):
        broker.add_entry(sub(1, P("a") == 1), Interface.client("alice"))
        interface = broker.remove_entry(1)
        assert interface == Interface.client("alice")
        assert broker.route(Event({"a": 1})) == {}

    def test_remove_unknown_rejected(self, broker):
        with pytest.raises(RoutingError):
            broker.remove_entry(9)

    def test_route_excludes_origin_interface(self, broker):
        broker.add_entry(sub(1, P("a") == 1), Interface.broker("b1"))
        broker.add_entry(sub(2, P("a") == 1), Interface.broker("b2"))
        routed = broker.route(Event({"a": 1}), exclude="b1")
        assert Interface.broker("b1") not in routed
        assert routed[Interface.broker("b2")] == [2]

    def test_local_clients_listed(self, broker):
        broker.add_entry(sub(1, P("a") == 1), Interface.client("alice"))
        broker.add_entry(sub(2, P("a") == 1), Interface.broker("b1"))
        assert broker.local_clients() == ["alice"]


class TestPruning:
    def test_prune_non_local_entry(self, broker):
        original = sub(1, And(P("a") == 1, P("b") == 2))
        broker.add_entry(original, Interface.broker("b1"))
        broker.prune_entry(1, normalize(P("a") == 1))
        assert broker.route(Event({"a": 1}))[Interface.broker("b1")] == [1]
        entry = broker.entries[1]
        assert entry.is_pruned
        assert entry.original is original

    def test_prune_local_entry_rejected(self, broker):
        broker.add_entry(sub(1, And(P("a") == 1, P("b") == 2)), Interface.client("c"))
        with pytest.raises(RoutingError):
            broker.prune_entry(1, normalize(P("a") == 1))

    def test_prune_unknown_rejected(self, broker):
        with pytest.raises(RoutingError):
            broker.prune_entry(9, normalize(P("a") == 1))

    def test_restore_entry(self, broker):
        broker.add_entry(sub(1, And(P("a") == 1, P("b") == 2)), Interface.broker("b1"))
        broker.prune_entry(1, normalize(P("a") == 1))
        broker.restore_entry(1)
        assert not broker.entries[1].is_pruned
        assert broker.route(Event({"a": 1})) == {}

    def test_non_local_entries(self, broker):
        broker.add_entry(sub(1, P("a") == 1), Interface.client("alice"))
        broker.add_entry(sub(2, P("a") == 1), Interface.broker("b1"))
        non_local = broker.non_local_entries()
        assert [entry.subscription_id for entry in non_local] == [2]


class TestAccounting:
    def test_association_counts(self, broker):
        broker.add_entry(sub(1, And(P("a") == 1, P("b") == 2)), Interface.client("c"))
        broker.add_entry(sub(2, And(P("a") == 1, P("b") == 2)), Interface.broker("b1"))
        assert broker.association_count == 4
        assert broker.non_local_association_count == 2
        broker.prune_entry(2, normalize(P("a") == 1))
        assert broker.association_count == 3
        assert broker.non_local_association_count == 1

    def test_table_size_shrinks_with_pruning(self, broker):
        broker.add_entry(sub(1, And(P("a") == 1, P("b") == 2)), Interface.broker("b1"))
        before = broker.table_size_bytes
        broker.prune_entry(1, normalize(P("a") == 1))
        assert broker.table_size_bytes < before

    def test_filter_seconds_accumulate(self, broker):
        broker.add_entry(sub(1, P("a") == 1), Interface.client("c"))
        broker.route(Event({"a": 1}))
        assert broker.filter_seconds > 0
        broker.reset_statistics()
        assert broker.filter_seconds == 0
