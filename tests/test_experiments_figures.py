"""Unit tests for figure construction, analysis helpers, and reporting."""

import os

import pytest

from repro.core.heuristics import Dimension
from repro.errors import ExperimentError
from repro.experiments.figures import (
    DIMENSION_LABELS,
    FigureSeries,
    centralized_figures,
    crossover_proportion,
    distributed_figures,
    render_figure,
    sharp_bend,
)
from repro.experiments.measurements import CentralizedPoint, DistributedPoint
from repro.experiments.report import (
    PAPER_EXPECTATIONS,
    figure_to_csv,
    figures_to_markdown,
    summarize,
    write_figures,
)


def central_point(proportion, seconds=1e-3, fraction=0.1, reduction=0.0):
    return CentralizedPoint(
        proportion=proportion,
        prunings=int(proportion * 100),
        seconds_per_event=seconds,
        matching_fraction=fraction,
        association_reduction=reduction,
        candidates_per_event=1.0,
        evaluations_per_event=0.5,
    )


def distributed_point(proportion, seconds=1e-3, increase=0.0, reduction=0.0):
    return DistributedPoint(
        proportion=proportion,
        prunings=int(proportion * 100),
        seconds_per_event=seconds,
        filter_seconds_per_event=seconds / 2,
        network_increase=increase,
        messages_per_event=1.0,
        association_reduction=reduction,
        deliveries=10,
    )


@pytest.fixture()
def synthetic_centralized():
    xs = [0.0, 0.5, 1.0]
    return {
        dimension: [central_point(x, seconds=1e-3 * (i + 1)) for x in xs]
        for i, dimension in enumerate(Dimension)
    }


class TestFigureConstruction:
    def test_labels_follow_paper(self):
        assert DIMENSION_LABELS[Dimension.NETWORK] == "sel"
        assert DIMENSION_LABELS[Dimension.THROUGHPUT] == "eff"
        assert DIMENSION_LABELS[Dimension.MEMORY] == "mem"

    def test_centralized_figures_extract_metrics(self, synthetic_centralized):
        figures = centralized_figures(synthetic_centralized)
        assert figures["1a"].series["sel"] == [1e-3, 1e-3, 1e-3]
        assert figures["1b"].xs == [0.0, 0.5, 1.0]

    def test_distributed_figures_extract_metrics(self):
        results = {
            dimension: [distributed_point(x, increase=x) for x in (0.0, 1.0)]
            for dimension in Dimension
        }
        figures = distributed_figures(results)
        assert figures["1e"].series["mem"] == [0.0, 1.0]

    def test_mismatched_grids_rejected(self):
        results = {
            Dimension.NETWORK: [central_point(0.0), central_point(1.0)],
            Dimension.MEMORY: [central_point(0.0), central_point(0.7)],
        }
        with pytest.raises(ExperimentError):
            centralized_figures(results)

    def test_rows_and_headers_align(self, synthetic_centralized):
        figure = centralized_figures(synthetic_centralized)["1a"]
        rows = figure.rows()
        assert len(rows) == 3
        assert len(rows[0]) == len(figure.headers())


class TestAnalysisHelpers:
    def test_crossover_found(self):
        xs = [0.0, 0.25, 0.5, 0.75, 1.0]
        first = [1.0, 1.0, 1.0, 1.0, 1.0]
        second = [2.0, 1.5, 0.9, 0.8, 0.7]
        assert crossover_proportion(xs, first, second) == 0.5

    def test_crossover_absent(self):
        xs = [0.0, 1.0]
        assert crossover_proportion(xs, [1.0, 1.0], [2.0, 2.0]) is None

    def test_crossover_from_start_is_not_a_crossover(self):
        xs = [0.0, 0.5, 1.0]
        assert crossover_proportion(xs, [2.0, 2.0, 2.0], [1.0, 1.0, 1.0]) is None

    def test_sharp_bend_finds_knee(self):
        xs = [0.0, 0.25, 0.5, 0.75, 1.0]
        ys = [0.0, 0.01, 0.02, 0.5, 1.5]
        assert sharp_bend(xs, ys) == 0.75

    def test_sharp_bend_needs_three_points(self):
        assert sharp_bend([0.0, 1.0], [0.0, 1.0]) is None


class TestReporting:
    def test_csv_roundtrip_shape(self, synthetic_centralized):
        figure = centralized_figures(synthetic_centralized)["1a"]
        csv_text = figure_to_csv(figure)
        lines = csv_text.strip().splitlines()
        assert len(lines) == 4  # header + 3 rows
        assert lines[0].count(",") == 3

    def test_write_figures_creates_files(self, synthetic_centralized, tmp_path):
        figures = centralized_figures(synthetic_centralized)
        paths = write_figures(figures, str(tmp_path))
        for path in paths.values():
            assert os.path.exists(path)

    def test_summarize_mentions_paper_expectations(self, synthetic_centralized):
        figures = centralized_figures(synthetic_centralized)
        text = summarize(figures)
        assert "paper:" in text
        assert "measured" in text

    def test_markdown_rendering(self, synthetic_centralized):
        figures = centralized_figures(synthetic_centralized)
        text = figures_to_markdown(figures)
        assert "| proportion_of_prunings" in text
        assert "*Paper:*" in text

    def test_expectations_cover_all_figures(self):
        assert set(PAPER_EXPECTATIONS) == {"1a", "1b", "1c", "1d", "1e", "1f"}

    def test_render_without_plot(self, synthetic_centralized):
        figure = centralized_figures(synthetic_centralized)["1c"]
        text = render_figure(figure, plot=False)
        assert "legend" not in text
