"""Tests for broker topologies."""

import pytest

from repro.errors import TopologyError
from repro.routing.topology import (
    Topology,
    line_topology,
    star_topology,
    tree_topology,
)


class TestValidation:
    def test_accepts_tree(self):
        topology = Topology([("a", "b"), ("b", "c")])
        assert len(topology) == 3

    def test_rejects_cycle(self):
        with pytest.raises(TopologyError):
            Topology([("a", "b"), ("b", "c"), ("c", "a")])

    def test_rejects_disconnected(self):
        with pytest.raises(TopologyError):
            Topology([("a", "b"), ("c", "d")])

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Topology([("a", "a")])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(TopologyError):
            Topology([("a", "b"), ("b", "a")])

    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            Topology([])

    def test_single_broker(self):
        topology = Topology.single_broker("solo")
        assert topology.broker_ids == ["solo"]
        assert topology.diameter() == 0


class TestQueries:
    def test_neighbors_sorted(self):
        topology = Topology([("b", "a"), ("b", "c")])
        assert topology.neighbors("b") == ["a", "c"]

    def test_neighbors_unknown_broker(self):
        with pytest.raises(TopologyError):
            Topology([("a", "b")]).neighbors("z")

    def test_path_unique(self):
        topology = line_topology(4)
        assert topology.path("b0", "b3") == ["b0", "b1", "b2", "b3"]

    def test_path_unknown(self):
        with pytest.raises(TopologyError):
            line_topology(2).path("b0", "zz")

    def test_contains(self):
        topology = line_topology(2)
        assert "b0" in topology
        assert "zz" not in topology


class TestBuilders:
    def test_line_matches_paper_setting(self):
        topology = line_topology(5)
        assert len(topology) == 5
        assert topology.diameter() == 4
        assert topology.neighbors("b2") == ["b1", "b3"]

    def test_line_single(self):
        assert len(line_topology(1)) == 1

    def test_line_validation(self):
        with pytest.raises(TopologyError):
            line_topology(0)

    def test_star(self):
        topology = star_topology(4)
        assert len(topology) == 5
        assert len(topology.neighbors("b0")) == 4
        assert topology.diameter() == 2

    def test_tree(self):
        topology = tree_topology(branching=2, height=2)
        assert len(topology) == 7
        assert topology.diameter() == 4

    def test_tree_validation(self):
        with pytest.raises(TopologyError):
            tree_topology(0, 1)
