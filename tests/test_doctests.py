"""Run the doctests embedded in public modules.

Docstring examples are part of the documented API surface; this test
keeps them honest.
"""

import doctest

import pytest

import repro
import repro.adaptive.statistics
import repro.core.engine
import repro.events
import repro.matching.batch
import repro.matching.counting
import repro.matching.predicate_index
import repro.matching.sharded
import repro.matching.treeval
import repro.routing.network
import repro.selectivity.estimator
import repro.service.service
import repro.service.sinks
import repro.subscriptions.predicates
import repro.subscriptions.subscription
import repro.util.heap
import repro.util.rng
import repro.util.tables
import repro.util.timing
import repro.workloads.auction
import repro.workloads.distributions
import repro.workloads.tree_heavy
import repro.baselines.covering

MODULES = [
    repro,
    repro.adaptive.statistics,
    repro.core.engine,
    repro.events,
    repro.matching.batch,
    repro.matching.counting,
    repro.matching.predicate_index,
    repro.matching.sharded,
    repro.matching.treeval,
    repro.routing.network,
    repro.selectivity.estimator,
    repro.service.service,
    repro.service.sinks,
    repro.subscriptions.predicates,
    repro.subscriptions.subscription,
    repro.util.heap,
    repro.util.rng,
    repro.util.tables,
    repro.util.timing,
    repro.workloads.auction,
    repro.workloads.distributions,
    repro.workloads.tree_heavy,
    repro.baselines.covering,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, "%d doctest failure(s) in %s" % (
        result.failed,
        module.__name__,
    )
