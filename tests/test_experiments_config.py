"""Tests for experiment configuration and context."""

import pytest

from repro.core.heuristics import Dimension
from repro.errors import ExperimentError
from repro.experiments.config import SCALES, ExperimentConfig, config_for_scale
from repro.experiments.context import ExperimentContext


class TestConfig:
    def test_defaults_are_valid(self):
        config = ExperimentConfig()
        assert config.subscription_count > 0
        assert config.workload is not None
        assert config.workload.seed == config.seed

    def test_proportions_grid(self):
        config = ExperimentConfig(grid_points=5)
        assert config.proportions == (0.0, 0.25, 0.5, 0.75, 1.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("subscription_count", 0),
            ("event_count", 0),
            ("grid_points", 1),
            ("broker_count", 0),
            ("clients_per_broker", 0),
            ("dimensions", ()),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ExperimentError):
            ExperimentConfig(**{field: value})

    def test_scales_exist(self):
        assert {"tiny", "small", "default", "large", "paper"} <= set(SCALES)
        assert SCALES["paper"][0] == 200000
        assert SCALES["paper"][1] == 100000

    def test_config_for_scale(self):
        config = config_for_scale("tiny", seed=7)
        assert config.subscription_count == SCALES["tiny"][0]
        assert config.seed == 7

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError):
            config_for_scale("galactic")


class TestContext:
    @pytest.fixture(scope="class")
    def context(self):
        config = ExperimentConfig(
            seed=3, subscription_count=40, event_count=30, grid_points=3
        )
        return ExperimentContext(config)

    def test_subscription_ids_are_dense(self, context):
        ids = [s.id for s in context.subscriptions]
        assert ids == list(range(40))

    def test_events_generated_once(self, context):
        assert context.events is context.events
        assert len(context.events) == 30

    def test_schedules_cached(self, context):
        first = context.schedule(Dimension.NETWORK)
        second = context.schedule(Dimension.NETWORK)
        assert first is second

    def test_grid_counts_monotone(self, context):
        counts = context.grid_counts(Dimension.NETWORK)
        assert counts[0] == 0
        assert counts == sorted(counts)
        assert counts[-1] == context.schedule(Dimension.NETWORK).total

    def test_initial_associations_positive(self, context):
        assert context.initial_association_count > 0
