"""Tests for the shared-memory columnar batch transport (`matching/shm`).

Round-trips hypothesis-generated event batches through both header
modes (inline and segment-backed), proves the creator-side registry
releases segments leak-free — including the ``atexit`` last-chance
hook for aborted runs — and covers the lazy ``EventBatch.from_columns``
view workers match over.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import Event, EventBatch, EventColumns
from repro.matching.counting import CountingMatcher
from repro.matching.shm import (
    INLINE_MAX_BYTES,
    PackedColumns,
    _release_leaked_segments,
    live_segment_names,
    pack_columns,
    release_columns,
    unpack_columns,
)
from repro.subscriptions.builder import P
from repro.subscriptions.subscription import Subscription

from tests import strategies


def assert_columns_equal(left: EventColumns, right: EventColumns) -> None:
    """Field-for-field equality of two columnar views."""
    assert left.row_count == right.row_count
    assert left.attribute_names == right.attribute_names
    for name in left.attribute_names:
        a, b = left.column(name), right.column(name)
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.numeric_rows, b.numeric_rows)
        assert np.array_equal(a.numeric_values, b.numeric_values)
        assert np.array_equal(a.string_rows, b.string_rows)
        assert list(a.string_values) == list(b.string_values)
        assert np.array_equal(a.bool_rows, b.bool_rows)
        assert np.array_equal(a.bool_values, b.bool_values)


def roundtrip(columns: EventColumns, **kwargs) -> EventColumns:
    """pack → pickle → unpack → release; returns the rebuilt columns."""
    packed = pack_columns(columns, **kwargs)
    try:
        revived = pickle.loads(pickle.dumps(packed))
        rebuilt, segment = unpack_columns(revived)
        assert_columns_equal(columns, rebuilt)
        # Copy out before the segment goes away so the caller can keep
        # using the result (mirrors what a worker's reply forces too).
        detached = EventColumns.from_events(
            [rebuilt.event_at(row) for row in range(rebuilt.row_count)]
        )
        if segment is not None:
            rebuilt = None
            segment.close()
        return detached
    finally:
        release_columns(packed)


@given(events=st.lists(strategies.events(), max_size=12))
@settings(max_examples=40, deadline=None)
def test_roundtrip_segment_and_inline_agree(events):
    columns = EventBatch(events).columns()
    # Force both representations regardless of payload size.
    segment_backed = pack_columns(columns, inline_max_bytes=0)
    inlined = pack_columns(columns, inline_max_bytes=1 << 30)
    try:
        assert inlined.inline
        rebuilt_inline, no_segment = unpack_columns(inlined)
        assert no_segment is None
        assert_columns_equal(columns, rebuilt_inline)
        if segment_backed.inline:
            # Only an attribute-free batch has zero fixed-width bytes.
            assert segment_backed.nbytes == 0
        else:
            rebuilt, segment = unpack_columns(segment_backed)
            assert_columns_equal(columns, rebuilt)
            rebuilt = None
            segment.close()
    finally:
        release_columns(segment_backed)
        release_columns(inlined)
    assert live_segment_names() == ()


@given(events=st.lists(strategies.events(), min_size=1, max_size=10))
@settings(max_examples=25, deadline=None)
def test_matching_over_rebuilt_columns_is_identical(events):
    """A matcher fed the reconstructed batch answers exactly the same."""
    matcher = CountingMatcher()
    for sub_id, attribute in enumerate(strategies.ALL_ATTRIBUTES):
        matcher.register(Subscription(sub_id, P(attribute) != "nope"))
    batch = EventBatch(events)
    packed = pack_columns(batch.columns(), inline_max_bytes=0)
    try:
        rebuilt, segment = unpack_columns(packed)
        lazy = EventBatch.from_columns(rebuilt)
        assert matcher.match_batch(lazy) == matcher.match_batch(batch)
        lazy = rebuilt = None
        if segment is not None:
            segment.close()
    finally:
        release_columns(packed)


def _price_batch(rows: int) -> EventBatch:
    return EventBatch(
        [Event({"price": row, "tag": "t%d" % (row % 3)}) for row in range(rows)]
    )


def test_large_batch_uses_a_segment_and_small_stays_inline():
    small = pack_columns(_price_batch(4).columns())
    large = pack_columns(_price_batch(4096).columns())
    try:
        assert small.inline
        assert not large.inline
        assert large.nbytes > INLINE_MAX_BYTES
        assert large.segment_name in live_segment_names()
    finally:
        release_columns(small)
        release_columns(large)
    assert live_segment_names() == ()


def test_segment_views_are_read_only():
    packed = pack_columns(_price_batch(4096).columns())
    try:
        rebuilt, segment = unpack_columns(packed)
        column = rebuilt.column("price")
        with pytest.raises(ValueError):
            column.numeric_values[0] = 99.0
        column = rebuilt = None
        segment.close()
    finally:
        release_columns(packed)


def test_release_is_idempotent_and_unlinks_the_segment():
    packed = pack_columns(_price_batch(4096).columns())
    name = packed.segment_name
    assert name in live_segment_names()
    release_columns(packed)
    release_columns(packed)  # second release: no-op
    assert live_segment_names() == ()
    if os.path.isdir("/dev/shm"):  # Linux: the backing file is gone
        assert not os.path.exists("/dev/shm/" + name.lstrip("/"))


def test_atexit_hook_releases_leaked_segments():
    """An aborted run's segments are unlinked by the last-chance hook."""
    leaked = pack_columns(_price_batch(4096).columns())
    assert leaked.segment_name in live_segment_names()
    _release_leaked_segments()
    assert live_segment_names() == ()
    # The hook must also cope with nothing to do.
    _release_leaked_segments()
    # And a stale header pointing at the released segment stays a no-op.
    release_columns(leaked)


def test_packed_header_repr_and_empty_batch():
    empty = pack_columns(EventBatch([]).columns())
    try:
        assert empty.inline
        assert empty.row_count == 0
        assert "inline" in repr(empty)
        rebuilt, segment = unpack_columns(empty)
        assert segment is None
        assert rebuilt.row_count == 0
    finally:
        release_columns(empty)
    named = PackedColumns("psm_test", 3, {}, 64)
    assert "psm_test" in repr(named)


# -- the lazy worker-side batch view ------------------------------------------


def test_event_at_materializes_rows():
    batch = EventBatch(
        [
            Event({"price": 3, "tag": "book", "hot": True}),
            Event({"other": 1.5}),
            Event({}),
        ]
    )
    columns = batch.columns()
    first = columns.event_at(0)
    # Numeric values come back from the float64 column: ints turn float.
    assert first == Event({"price": 3.0, "tag": "book", "hot": True})
    assert columns.event_at(1) == Event({"other": 1.5})
    assert columns.event_at(2) == Event({})
    with pytest.raises(IndexError):
        columns.event_at(3)


def test_from_columns_batch_behaves_like_a_sequence():
    source = _price_batch(5)
    lazy = EventBatch.from_columns(source.columns(), label="lazy")
    assert len(lazy.events) == 5
    assert lazy.label == "lazy"
    assert lazy.events[0]["tag"] == "t0"
    assert lazy.events[-1]["tag"] == "t1"
    assert [event["price"] for event in lazy.events] == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert [event["price"] for event in lazy.events[1:3]] == [1.0, 2.0]
    with pytest.raises(IndexError):
        lazy.events[5]
    # The lazy batch reuses the existing columns object as its cache.
    assert lazy.columns() is source.columns()
