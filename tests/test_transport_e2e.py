"""End-to-end transport integration: remote clients vs in-process oracle.

Every scenario runs a :class:`PubSubServer` on a loopback socket and —
for each remote subscriber — an **oracle**: an in-process session at
the same broker carrying the same filter trees.  Both see the same
dispatches under the service's publish lock, so after each quiesced
phase the remote client's delivered multiset must be *bit-identical*
to the oracle's (same events, same service-wide sequence numbers, same
per-subscription counts) and its ``delivery_seq`` log must be gapless
``0..n-1`` — including across a kill-and-reconnect resume mid-stream.

The service is built with ``max_batch=1`` so every acknowledged
``publish`` has fully flushed by the time its response arrives; phases
therefore quiesce by awaiting their publishes.
"""

import asyncio

import pytest

from repro.errors import TransportError
from repro.events import Event
from repro.routing.topology import line_topology
from repro.service import CollectingSink, PubSubService
from repro.subscriptions.builder import P
from repro.transport import PubSubClient, PubSubServer


def fingerprint(notifications):
    """Order-independent identity of a delivered set: the event payload
    plus the service-wide publish sequence (subscription ids differ
    between a remote session and its oracle)."""
    return sorted(
        (n.sequence, tuple(sorted(n.event.to_dict().items())))
        for n in notifications
    )


def assert_gapless(client):
    assert [n.delivery_seq for n in client.notifications] == list(
        range(len(client.notifications))
    )


class _Oracle:
    """The in-process twin of one remote subscriber."""

    def __init__(self, service, broker_id, name):
        self.sink = CollectingSink()
        self.session = service.connect(broker_id, name, self.sink)
        self.handles = []

    def subscribe(self, tree):
        self.handles.append(self.session.subscribe(tree))
        return self.handles[-1]

    @property
    def notifications(self):
        return self.sink.notifications


async def _pump_until(predicate, timeout=10.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        assert loop.time() < deadline, "condition not reached in time"
        await asyncio.sleep(0.01)


class TestTransportE2E:
    @pytest.mark.timeout(120)
    def test_multi_client_matches_oracle_through_churn_and_reconnect(self):
        async def main():
            service = PubSubService(topology=line_topology(3), max_batch=1)
            async with PubSubServer(service, "b0") as server:
                alice = PubSubClient(
                    "127.0.0.1", server.port, "alice", broker="b2"
                )
                bob = PubSubClient(
                    "127.0.0.1", server.port, "bob", broker="b1"
                )
                await alice.connect()
                await bob.connect()
                oracle_alice = _Oracle(service, "b2", "oracle-alice")
                oracle_bob = _Oracle(service, "b1", "oracle-bob")

                a_cheap = await alice.subscribe(P("price") <= 10.0)
                a_fiction = await alice.subscribe(P("category") == "fiction")
                b_all = await bob.subscribe(P("price") >= 0.0)
                oracle_alice.subscribe(P("price") <= 10.0)
                oracle_alice.subscribe(P("category") == "fiction")
                oracle_bob.subscribe(P("price") >= 0.0)

                publisher = PubSubClient(
                    "127.0.0.1", server.port, "publisher"
                )
                await publisher.connect()

                # Phase 1: concurrent publishers, stable subscriptions.
                async def publish_range(client, start, count):
                    for i in range(start, start + count):
                        await client.publish(
                            Event(
                                {
                                    "price": float(i % 20),
                                    "category": (
                                        "fiction" if i % 3 == 0 else "tech"
                                    ),
                                    "i": i,
                                }
                            )
                        )

                second = PubSubClient(
                    "127.0.0.1", server.port, "publisher-2", broker="b1"
                )
                await second.connect()
                await asyncio.gather(
                    publish_range(publisher, 0, 30),
                    publish_range(second, 100, 30),
                )
                await _pump_until(
                    lambda: len(alice.notifications)
                    == len(oracle_alice.notifications)
                    and len(bob.notifications)
                    == len(oracle_bob.notifications)
                )
                assert len(bob.notifications) == 60
                assert fingerprint(alice.notifications) == fingerprint(
                    oracle_alice.notifications
                )
                assert fingerprint(bob.notifications) == fingerprint(
                    oracle_bob.notifications
                )
                assert_gapless(alice)
                assert_gapless(bob)

                # Phase 2: churn — replace one tree, withdraw another —
                # mirrored on the oracles at the same quiesced point.
                await a_cheap.replace(P("price") >= 15.0)
                oracle_alice.handles[0].replace(P("price") >= 15.0)
                await b_all.unsubscribe()
                oracle_bob.handles[0].unsubscribe()
                assert not b_all.active
                await publish_range(publisher, 200, 30)
                await _pump_until(
                    lambda: len(alice.notifications)
                    == len(oracle_alice.notifications)
                )
                assert fingerprint(alice.notifications) == fingerprint(
                    oracle_alice.notifications
                )
                assert len(bob.notifications) == 60  # nothing since churn
                assert_gapless(alice)

                # Phase 3: kill alice mid-stream, keep publishing, then
                # reconnect with the token and resume without loss.
                await alice.abort()
                await _pump_until(lambda: server.resumable_tokens)
                assert server.resumable_tokens == (alice.token,)
                await publish_range(publisher, 300, 30)
                replayed = await alice.reconnect()
                assert replayed >= 0
                await _pump_until(
                    lambda: len(alice.notifications)
                    == len(oracle_alice.notifications)
                )
                assert fingerprint(alice.notifications) == fingerprint(
                    oracle_alice.notifications
                )
                assert_gapless(alice)
                # Replay overlap (if any) was deduplicated, not logged.
                assert alice.duplicates >= 0
                per_sub = {}
                for n in alice.notifications:
                    per_sub[n.subscription_id] = (
                        per_sub.get(n.subscription_id, 0) + 1
                    )
                oracle_per_sub = {}
                for n in oracle_alice.notifications:
                    oracle_per_sub[n.subscription_id] = (
                        oracle_per_sub.get(n.subscription_id, 0) + 1
                    )
                assert per_sub[a_cheap.id] == oracle_per_sub[
                    oracle_alice.handles[0].id
                ]
                assert per_sub[a_fiction.id] == oracle_per_sub[
                    oracle_alice.handles[1].id
                ]

                for client in (alice, bob, publisher, second):
                    await client.close()
            service.close()

        asyncio.run(main())

    @pytest.mark.timeout(120)
    def test_graceful_goodbye_retires_the_session(self):
        async def main():
            service = PubSubService(topology=line_topology(1), max_batch=1)
            async with PubSubServer(service, "b0") as server:
                client = PubSubClient("127.0.0.1", server.port, "alice")
                await client.connect()
                await client.subscribe(P("x") == 1)
                assert server.session_count == 1
                await client.close()
                await _pump_until(lambda: server.session_count == 0)
                # The token is gone for good: resume must be refused.
                with pytest.raises(TransportError) as info:
                    await client.reconnect()
                assert info.value.code == "unknown-token"
                # The in-process registry agrees.
                assert service.sessions == ()
            service.close()

        asyncio.run(main())

    @pytest.mark.timeout(120)
    def test_resume_replays_exactly_the_unseen_tail(self):
        async def main():
            service = PubSubService(topology=line_topology(1), max_batch=1)
            async with PubSubServer(service, "b0") as server:
                subscriber = PubSubClient(
                    "127.0.0.1", server.port, "alice", queue_capacity=64
                )
                await subscriber.connect()
                await subscriber.subscribe(P("x") >= 0)
                publisher = PubSubClient("127.0.0.1", server.port, "pub")
                await publisher.connect()

                for i in range(10):
                    await publisher.publish(Event({"x": i}))
                await subscriber.wait_for_notifications(10)
                await subscriber.abort()

                # 15 more while the subscriber is gone: they stage in
                # the session's bounded queue server-side.
                for i in range(10, 25):
                    await publisher.publish(Event({"x": i}))

                replayed = await subscriber.reconnect()
                notes = await subscriber.wait_for_notifications(25)
                assert [n.event["x"] for n in notes] == list(range(25))
                assert_gapless(subscriber)
                # Nothing was lost, nothing was double-logged; any
                # replay overlap is visible only in the dedup counter.
                assert replayed + subscriber.duplicates >= 0
                assert len(subscriber.notifications) == 25

                # Server-side accounting: everything dispatched to the
                # session was delivered (block policy, nothing dropped).
                (session,) = [
                    s for s in service.sessions if s.client == "alice"
                ]
                assert session.delivery_count == 25
                assert len(session.queue.dead_letter) == 0

                await publisher.close()
                await subscriber.close()
            service.close()

        asyncio.run(main())

    @pytest.mark.timeout(120)
    def test_auth_tokens_gate_the_handshake(self):
        async def main():
            service = PubSubService(topology=line_topology(1), max_batch=1)
            async with PubSubServer(
                service, "b0", auth_tokens={"alice": "sesame"}
            ) as server:
                wrong = PubSubClient(
                    "127.0.0.1", server.port, "alice", auth="plugh"
                )
                with pytest.raises(TransportError) as info:
                    await wrong.connect()
                assert info.value.code == "auth"

                unknown = PubSubClient("127.0.0.1", server.port, "mallory")
                with pytest.raises(TransportError) as info:
                    await unknown.connect()
                assert info.value.code == "auth"

                right = PubSubClient(
                    "127.0.0.1", server.port, "alice", auth="sesame"
                )
                welcome = await right.connect()
                assert welcome["client"] == "alice"
                await right.close()
            service.close()

        asyncio.run(main())

    @pytest.mark.timeout(120)
    def test_linger_flush_delivers_the_partial_batch_tail(self):
        """A remote publisher can't call ``service.flush()``: a publish
        burst smaller than ``max_batch`` must still be delivered, via
        the server's linger flush, without any other wire activity."""

        async def main():
            # max_batch far above the burst size: nothing fills a batch.
            service = PubSubService(topology=line_topology(1), max_batch=64)
            async with PubSubServer(
                service, "b0", flush_linger=0.01
            ) as server:
                subscriber = PubSubClient("127.0.0.1", server.port, "alice")
                await subscriber.connect()
                await subscriber.subscribe(P("x") >= 0)
                publisher = PubSubClient("127.0.0.1", server.port, "pub")
                await publisher.connect()
                for i in range(3):
                    assert not (await publisher.publish(Event({"x": i})))
                # No churn, no more publishes, no explicit flush — the
                # linger timer is the only thing that can deliver these.
                await subscriber.wait_for_notifications(3)
                assert [n.event["x"] for n in subscriber.notifications] == [
                    0,
                    1,
                    2,
                ]
                assert_gapless(subscriber)
                await publisher.close()
                await subscriber.close()
            service.close()

        asyncio.run(main())

    @pytest.mark.timeout(120)
    def test_disconnect_policy_accounting_survives_the_transport(self):
        """delivered + dead-lettered == dispatched, even when the
        ``disconnect`` policy fires while the client is detached."""

        async def main():
            service = PubSubService(topology=line_topology(1), max_batch=1)
            async with PubSubServer(service, "b0") as server:
                subscriber = PubSubClient(
                    "127.0.0.1",
                    server.port,
                    "alice",
                    queue_capacity=4,
                    policy="disconnect",
                )
                await subscriber.connect()
                await subscriber.subscribe(P("x") >= 0)
                (session,) = [
                    s for s in service.sessions if s.client == "alice"
                ]
                await subscriber.abort()  # stop consuming entirely
                # Wait for the server to notice and stop the pump, so
                # nothing else leaves the queue for the dead socket.
                await _pump_until(lambda: server.resumable_tokens)

                publisher = PubSubClient("127.0.0.1", server.port, "pub")
                await publisher.connect()
                for i in range(12):  # overflows the capacity-4 queue
                    await publisher.publish(Event({"x": i}))

                assert session.queue.disconnected
                dispatched = session.delivery_count
                dead = len(session.queue.dead_letter)
                staged = session.queue.depth
                pumped = session.queue.delivered
                assert dispatched == 12
                assert pumped + dead + staged == 12
                assert staged <= 4  # bounded: never beyond capacity
                await publisher.close()
            service.close()

        asyncio.run(main())
