"""The fundamental pruning invariant: pruning only generalizes.

Every event fulfilled by the original subscription must be fulfilled by
the pruned subscription, after any sequence of pruning operations.  This
is what makes pruned routing correct (no lost deliveries, paper Sect. 2.2).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import apply_pruning, enumerate_prunings
from repro.subscriptions.metrics import count_leaves, memory_bytes, pmin
from repro.subscriptions.normalize import normalize

from tests import strategies


@given(strategies.trees(), strategies.events(), st.randoms(use_true_random=False))
@settings(max_examples=200, deadline=None)
def test_any_pruning_sequence_generalizes(tree, event, rng):
    current = normalize(tree)
    original = current
    while True:
        ops = enumerate_prunings(current)
        if not ops:
            break
        current = apply_pruning(current, rng.choice(ops))
        if original.evaluate(event):
            assert current.evaluate(event), (
                "pruned tree lost an event: %r -> %r" % (original, current)
            )


@given(strategies.trees(), st.randoms(use_true_random=False))
@settings(max_examples=150, deadline=None)
def test_pruning_monotonically_shrinks_metrics(tree, rng):
    """Every pruning strictly shrinks the tree and never raises pmin."""
    current = normalize(tree)
    while True:
        ops = enumerate_prunings(current)
        if not ops:
            break
        nxt = apply_pruning(current, rng.choice(ops))
        assert count_leaves(nxt) < count_leaves(current)
        assert memory_bytes(nxt) < memory_bytes(current)
        assert pmin(nxt) <= pmin(current)
        current = nxt


@given(strategies.trees())
@settings(max_examples=150, deadline=None)
def test_exhaustive_pruning_terminates(tree):
    """Pruning to exhaustion terminates and never produces a constant."""
    current = normalize(tree)
    steps = 0
    limit = count_leaves(current) * 4 + 8
    while True:
        ops = enumerate_prunings(current)
        if not ops:
            break
        current = apply_pruning(current, ops[0])
        steps += 1
        assert steps <= limit, "pruning did not terminate"
    assert current.kind in ("pred", "or", "const") or current.kind == "and"
    # a fully pruned tree offers no AND nodes with removable children
    assert not enumerate_prunings(current)


def test_generalization_on_auction_workload(workload, auction_events):
    """Spot-check the invariant on realistic subscriptions and events."""
    subscriptions = workload.generate_subscriptions(40)
    events = auction_events.events[:120]
    for subscription in subscriptions:
        current = subscription.tree
        matched_before = [e for e in events if current.evaluate(e)]
        while True:
            ops = enumerate_prunings(current)
            if not ops:
                break
            current = apply_pruning(current, ops[len(ops) // 2])
        for event in matched_before:
            assert current.evaluate(event)
