"""Tests for the priority-queue pruning engine."""

import pytest

from repro.core.engine import PruningEngine
from repro.core.heuristics import Dimension
from repro.core.ops import apply_pruning
from repro.errors import PruningError
from repro.subscriptions.builder import And, Or, P
from repro.subscriptions.metrics import count_leaves
from repro.subscriptions.subscription import Subscription


def build_engine(estimator, trees, dimension=Dimension.NETWORK, **kwargs):
    subscriptions = [Subscription(i, tree) for i, tree in enumerate(trees)]
    return PruningEngine(subscriptions, estimator, dimension, **kwargs)


class TestStepping:
    def test_runs_to_exhaustion(self, simple_estimator):
        engine = build_engine(
            simple_estimator,
            [And(P("cat") == "a", P("price") <= 10.0, P("flag") == True)],  # noqa: E712
        )
        records = engine.run()
        assert len(records) == 2  # 3 predicates -> 1 predicate
        assert engine.exhausted
        assert engine.step() is None

    def test_step_returns_record_with_metrics(self, simple_estimator):
        engine = build_engine(
            simple_estimator, [And(P("cat") == "a", P("price") <= 10.0)]
        )
        record = engine.step()
        assert record.subscription_id == 0
        assert record.leaf_count_after == 1
        assert record.pmin_after == 1
        assert record.vector.mem > 0

    def test_max_steps_bounds_run(self, simple_estimator):
        engine = build_engine(
            simple_estimator,
            [And(P("cat") == "a", P("price") <= 10.0, P("flag") == True)] * 1,  # noqa: E712
        )
        assert len(engine.run(max_steps=1)) == 1
        assert engine.total_prunings == 1

    def test_duplicate_subscription_ids_rejected(self, simple_estimator):
        subs = [Subscription(1, P("cat") == "a"), Subscription(1, P("cat") == "b")]
        with pytest.raises(PruningError):
            PruningEngine(subs, simple_estimator)

    def test_unknown_state_rejected(self, simple_estimator):
        engine = build_engine(simple_estimator, [And(P("cat") == "a", P("flag") == True)])  # noqa: E712
        with pytest.raises(PruningError):
            engine.state(42)


class TestOrdering:
    def test_network_dimension_prefers_low_degradation(self, simple_estimator):
        # sub 0: removing "price <= 100" (sel 1.0) costs nothing;
        # sub 1: removals cost much more.
        cheap = And(P("cat") == "a", P("price") <= 100.0)
        costly = And(P("cat") == "a", P("flag") == True)  # noqa: E712
        engine = build_engine(simple_estimator, [cheap, costly], Dimension.NETWORK)
        first = engine.step()
        assert first.subscription_id == 0
        assert first.vector.sel == pytest.approx(0.0)

    def test_memory_dimension_prefers_big_subtrees(self, simple_estimator):
        small = And(P("cat") == "a", P("flag") == True)  # noqa: E712
        big = And(
            P("cat") == "a",
            Or(P("price") <= 10.0, P("price") >= 90.0, P("flag") == True),  # noqa: E712
        )
        engine = build_engine(simple_estimator, [small, big], Dimension.MEMORY)
        first = engine.step()
        assert first.subscription_id == 1  # the big OR child saves the most bytes

    def test_throughput_dimension_keeps_pmin(self, simple_estimator):
        # sub 0 offers a Δeff = 0 pruning (inside the OR); sub 1 only Δeff = -1.
        with_or = And(
            P("cat") == "a",
            Or(And(P("price") <= 10.0, P("flag") == True), P("price") >= 90.0),  # noqa: E712
        )
        flat = And(P("cat") == "b", P("price") <= 20.0)
        engine = build_engine(simple_estimator, [with_or, flat], Dimension.THROUGHPUT)
        first = engine.step()
        assert first.subscription_id == 0
        assert first.vector.eff == 0

    def test_records_replay_to_engine_state(self, simple_estimator):
        trees = [
            And(P("cat") == "a", P("price") <= 10.0, P("flag") == True),  # noqa: E712
            And(P("cat") == "b", Or(P("price") <= 5.0, P("price") >= 95.0), P("flag") == False),  # noqa: E712
        ]
        engine = build_engine(simple_estimator, trees)
        engine.run()
        replayed = {i: Subscription(i, t).tree for i, t in enumerate(trees)}
        for record in engine.records:
            replayed[record.subscription_id] = apply_pruning(
                replayed[record.subscription_id], record.op
            )
        for sub_id, tree in replayed.items():
            assert tree == engine.state(sub_id).current

    def test_determinism(self, simple_estimator):
        trees = [
            And(P("cat") == "a", P("price") <= 10.0, P("flag") == True),  # noqa: E712
            And(P("cat") == "b", P("price") >= 5.0),
            Or(And(P("cat") == "c", P("flag") == False), And(P("price") <= 1.0, P("flag") == True)),  # noqa: E712
        ]
        runs = []
        for _ in range(2):
            engine = build_engine(simple_estimator, trees)
            engine.run()
            runs.append([(r.subscription_id, r.op) for r in engine.records])
        assert runs[0] == runs[1]


class TestStoppingRules:
    def test_stop_before_inspects_next_vector(self, simple_estimator):
        engine = build_engine(
            simple_estimator,
            [And(P("cat") == "a", P("price") <= 10.0, P("flag") == True)],  # noqa: E712
        )
        records = engine.run(stop_before=lambda vector: True)
        assert records == []
        assert not engine.exhausted

    def test_prune_until_selectivity(self, simple_estimator):
        engine = build_engine(
            simple_estimator,
            [And(P("cat") == "a", P("price") <= 100.0, P("flag") == True)],  # noqa: E712
        )
        engine.prune_until_selectivity(0.05)
        # every executed pruning stayed within the budget
        assert all(record.vector.sel <= 0.05 for record in engine.records)
        remaining = engine.peek_vector()
        if remaining is not None:
            assert remaining.sel > 0.05

    def test_prune_until_memory_saved(self, simple_estimator):
        engine = build_engine(
            simple_estimator,
            [And(P("cat") == "a", P("price") <= 10.0, P("flag") == True)],  # noqa: E712
            Dimension.MEMORY,
        )
        engine.prune_until_memory_saved(10)
        assert sum(record.vector.mem for record in engine.records) >= 10


class TestSwitching:
    def test_switch_dimension_reorders_queue(self, simple_estimator):
        trees = [
            And(P("cat") == "a", P("price") <= 100.0),
            And(
                P("cat") == "b",
                Or(P("price") <= 10.0, P("flag") == True, P("price") >= 90.0),  # noqa: E712
            ),
        ]
        engine = build_engine(simple_estimator, trees, Dimension.NETWORK)
        engine.switch_dimension(Dimension.MEMORY)
        assert engine.dimension is Dimension.MEMORY
        assert engine.bottom_up_only  # memory default restriction
        first = engine.step()
        assert first.subscription_id == 1

    def test_bottom_up_default_by_dimension(self, simple_estimator):
        for dimension, expected in [
            (Dimension.NETWORK, False),
            (Dimension.THROUGHPUT, False),
            (Dimension.MEMORY, True),
        ]:
            engine = build_engine(
                simple_estimator, [And(P("cat") == "a", P("flag") == True)], dimension  # noqa: E712
            )
            assert engine.bottom_up_only is expected

    def test_results_accessors(self, simple_estimator):
        engine = build_engine(
            simple_estimator, [And(P("cat") == "a", P("price") <= 10.0)]
        )
        before = engine.association_count
        engine.run()
        assert engine.association_count < before
        pruned = engine.pruned_subscriptions()
        assert count_leaves(pruned[0].tree) == 1
        assert engine.total_size_bytes > 0
