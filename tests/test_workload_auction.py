"""Tests for the auction workload generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.subscriptions.nodes import AndNode, OrNode
from repro.subscriptions.normalize import is_normalized
from repro.workloads.auction import (
    AuctionWorkload,
    AuctionWorkloadConfig,
    SubscriptionClassMix,
)
from repro.workloads.schema import AuctionSchema


class TestSchema:
    def test_attribute_names_cover_the_domain(self):
        schema = AuctionSchema()
        names = set(schema.attribute_names)
        assert {"title", "author", "category", "price", "condition"} <= names

    def test_events_carry_every_attribute(self, workload):
        events = workload.generate_events(5)
        for event in events:
            assert set(event) == set(workload.schema.attribute_names)

    def test_titles_include_series(self):
        schema = AuctionSchema(n_titles=100, n_series=10)
        series_titles = [t for t in schema.titles if t.startswith("series-")]
        assert len(series_titles) == 30  # 30% of titles

    def test_unknown_attribute_rejected(self):
        with pytest.raises(WorkloadError):
            AuctionSchema().spec("nope")

    def test_validation(self):
        with pytest.raises(WorkloadError):
            AuctionSchema(n_titles=1)
        with pytest.raises(WorkloadError):
            AuctionSchema(n_titles=10, n_series=20)


class TestDeterminism:
    def test_same_seed_same_events(self):
        a = AuctionWorkload(AuctionWorkloadConfig(seed=9)).generate_events(20)
        b = AuctionWorkload(AuctionWorkloadConfig(seed=9)).generate_events(20)
        assert list(a) == list(b)

    def test_different_seed_different_events(self):
        a = AuctionWorkload(AuctionWorkloadConfig(seed=9)).generate_events(20)
        b = AuctionWorkload(AuctionWorkloadConfig(seed=10)).generate_events(20)
        assert list(a) != list(b)

    def test_same_seed_same_subscriptions(self):
        a = AuctionWorkload(AuctionWorkloadConfig(seed=9)).generate_subscriptions(20)
        b = AuctionWorkload(AuctionWorkloadConfig(seed=9)).generate_subscriptions(20)
        assert [s.tree for s in a] == [s.tree for s in b]

    def test_streams_are_independent(self, workload):
        a = workload.generate_events(10, stream=0)
        b = workload.generate_events(10, stream=1)
        assert list(a) != list(b)


class TestSubscriptions:
    def test_ids_and_owners_assigned(self, workload):
        subs = workload.generate_subscriptions(6, id_start=100, owners=["x", "y"])
        assert [s.id for s in subs] == list(range(100, 106))
        assert [s.owner for s in subs] == ["x", "y", "x", "y", "x", "y"]

    def test_trees_are_normalized(self, auction_subscriptions):
        for subscription in auction_subscriptions:
            assert is_normalized(subscription.tree)

    def test_all_three_classes_present(self, auction_subscriptions):
        """Heuristic class detection: specific-item subs reference title,
        category subs reference category, collector subs contain an OR of
        conjunctions."""
        has_title_anchor = 0
        has_category = 0
        has_or_of_ands = 0
        for subscription in auction_subscriptions:
            attributes = {p.attribute for p in subscription.tree.predicates()}
            if "title" in attributes and "category" not in attributes:
                has_title_anchor += 1
            if "category" in attributes:
                has_category += 1
            for _path, node in subscription.tree.iter_nodes():
                if isinstance(node, OrNode) and any(
                    isinstance(child, AndNode) for child in node.children
                ):
                    has_or_of_ands += 1
                    break
        assert has_title_anchor > 10
        assert has_category > 10
        assert has_or_of_ands > 5

    def test_class_mix_normalization(self):
        mix = SubscriptionClassMix(2, 2, 4).normalized()
        assert mix.specific_item == pytest.approx(0.25)
        assert mix.collector == pytest.approx(0.5)

    def test_degenerate_mix_rejected(self):
        with pytest.raises(WorkloadError):
            SubscriptionClassMix(0, 0, 0).normalized()

    def test_class_mix_respected_roughly(self):
        config = AuctionWorkloadConfig(
            seed=5, class_mix=SubscriptionClassMix(1.0, 0.0, 0.0)
        )
        subs = AuctionWorkload(config).generate_subscriptions(30)
        for subscription in subs:
            attributes = {p.attribute for p in subscription.tree.predicates()}
            assert "title" in attributes

    def test_subscription_sizes_in_expected_band(self, auction_subscriptions):
        leaves = [s.leaf_count for s in auction_subscriptions]
        assert 2 <= min(leaves)
        assert max(leaves) <= 25
        assert 4.0 <= float(np.mean(leaves)) <= 9.0


class TestStatisticsExactness:
    def test_analytic_statistics_match_generated_events(self, workload):
        """Per-predicate probabilities from the analytic statistics agree
        with empirical frequencies on a large sample."""
        from repro.selectivity.statistics import EventStatistics
        from repro.subscriptions.predicates import Operator, Predicate

        events = workload.generate_events(4000, stream=7).events
        analytic = workload.statistics()
        empirical = EventStatistics.from_events(events)

        probes = [
            Predicate("category", Operator.EQ, workload.schema.categories[0]),
            Predicate("price", Operator.LE, 12.0),
            Predicate("seller_rating", Operator.GE, 4.0),
            Predicate("condition", Operator.NE, "poor"),
            Predicate("format", Operator.IN_SET, frozenset({"hardcover", "ebook"})),
            Predicate("buy_now", Operator.EQ, True),
        ]
        for probe in probes:
            expected = analytic.predicate_probability(probe)
            observed = empirical.predicate_probability(probe)
            assert observed == pytest.approx(expected, abs=0.03), probe

    def test_mean_subscription_selectivity_is_low(self, workload):
        """The workload is selective enough for routing to be non-trivial
        (paper-like setting: most events match few subscriptions)."""
        events = workload.generate_events(600).events
        subs = workload.generate_subscriptions(120)
        fractions = [
            sum(1 for e in events if s.tree.evaluate(e)) / len(events) for s in subs
        ]
        assert float(np.mean(fractions)) < 0.03
