"""Tests for tree-level selectivity estimation."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SelectivityError
from repro.events import Event
from repro.selectivity.estimator import (
    SelectivityEstimate,
    SelectivityEstimator,
    combine_and,
    combine_or,
    selectivity_degradation,
)
from repro.selectivity.statistics import EventStatistics
from repro.subscriptions.builder import And, Not, Or, P
from repro.subscriptions.nodes import FALSE, TRUE, NotNode, PredicateLeaf
from repro.subscriptions.normalize import normalize
from repro.subscriptions.predicates import Operator, Predicate

from tests import strategies


def estimate(values):
    return [SelectivityEstimate.exact(value) for value in values]


class TestCombinators:
    def test_and_independence_average(self):
        result = combine_and(estimate([0.5, 0.4]))
        assert result.avg == pytest.approx(0.2)

    def test_and_frechet_bounds(self):
        result = combine_and(estimate([0.9, 0.8]))
        assert result.min == pytest.approx(0.7)  # 0.9 + 0.8 - 1
        assert result.max == pytest.approx(0.8)  # min of components

    def test_and_lower_bound_clamped_to_zero(self):
        result = combine_and(estimate([0.3, 0.3]))
        assert result.min == 0.0

    def test_or_inclusion_exclusion_average(self):
        result = combine_or(estimate([0.5, 0.4]))
        assert result.avg == pytest.approx(0.7)

    def test_or_frechet_bounds(self):
        result = combine_or(estimate([0.5, 0.4]))
        assert result.min == pytest.approx(0.5)  # max of components
        assert result.max == pytest.approx(0.9)  # sum, capped at 1

    def test_or_upper_bound_capped(self):
        result = combine_or(estimate([0.8, 0.7]))
        assert result.max == 1.0

    def test_and_bounds_survive_rounding_inversion(self):
        # 1.0 + (1 - 2**-53) rounds up to exactly 2.0, so the Fréchet
        # lower bound computes to 1.0 — above the min-of-components
        # upper bound of 1 - 2**-53.  _ordered must repair the
        # inversion, not just project the average.
        result = combine_and(estimate([1.0, 1.0 - 2.0**-53]))
        assert 0.0 <= result.min <= result.avg <= result.max <= 1.0

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=5))
    @settings(max_examples=80)
    def test_components_stay_ordered(self, probabilities):
        for combiner in (combine_and, combine_or):
            result = combiner(estimate(probabilities))
            assert 0.0 <= result.min <= result.avg <= result.max <= 1.0

    def test_frechet_bounds_are_tight_for_and(self):
        """The Fréchet bounds are achievable by real joint distributions:
        check against exhaustively constructed two-variable worlds."""
        # World A: p1 and p2 maximally overlapping -> intersection = min
        # World B: maximally disjoint -> intersection = max(0, p1+p2-1)
        p1, p2 = 0.6, 0.7
        bounds = combine_and(estimate([p1, p2]))
        assert bounds.max == pytest.approx(min(p1, p2))
        assert bounds.min == pytest.approx(p1 + p2 - 1)


class TestEstimateExactness:
    def test_leaf_uses_statistics(self, simple_estimator):
        result = simple_estimator.estimate(normalize(P("cat") == "b"))
        assert result == SelectivityEstimate.exact(0.5)

    def test_constants(self, simple_estimator):
        assert simple_estimator.estimate(TRUE).avg == 1.0
        assert simple_estimator.estimate(FALSE).avg == 0.0

    def test_conjunction(self, simple_estimator):
        tree = normalize(And(P("cat") == "b", P("price") <= 10.0))
        assert simple_estimator.estimate(tree).avg == pytest.approx(0.25)

    def test_negated_leaf(self, simple_estimator):
        tree = normalize(Not(P("cat") == "b"))
        assert simple_estimator.estimate(tree).avg == pytest.approx(0.5)

    def test_non_normalized_tree_rejected(self, simple_estimator):
        with pytest.raises(SelectivityError):
            simple_estimator.estimate(NotNode(PredicateLeaf(
                Predicate("cat", Operator.EQ, "b"))))

    def test_requires_event_statistics(self):
        with pytest.raises(SelectivityError):
            SelectivityEstimator("nope")


class TestDegradation:
    def test_componentwise_maximum(self):
        original = SelectivityEstimate(0.1, 0.2, 0.3)
        pruned = SelectivityEstimate(0.1, 0.5, 0.4)
        assert selectivity_degradation(original, pruned) == pytest.approx(0.3)

    def test_degradation_of_pruning_is_nonnegative(self, simple_estimator):
        original = normalize(And(P("cat") == "b", P("price") <= 10.0))
        pruned = normalize(P("cat") == "b")
        assert simple_estimator.degradation(original, pruned) >= 0.0

    def test_measure_counts_exact_fraction(self, simple_estimator):
        tree = normalize(P("cat") == "b")
        events = [Event({"cat": "b"}), Event({"cat": "a"}), Event({"cat": "b"})]
        assert simple_estimator.measure(tree, events) == pytest.approx(2 / 3)

    def test_measure_rejects_empty(self, simple_estimator):
        with pytest.raises(SelectivityError):
            simple_estimator.measure(TRUE, [])


class TestBoundsHoldEmpirically:
    def test_true_selectivity_within_bounds_for_independent_attributes(self):
        """Construct the full joint of three independent binary attributes
        and check min <= true <= max for a set of Boolean trees."""
        from repro.selectivity.statistics import CategoricalStatistics

        probabilities = {"x": 0.3, "y": 0.6, "z": 0.5}
        statistics = EventStatistics(
            {
                name: CategoricalStatistics({1: probability, 0: 1 - probability})
                for name, probability in probabilities.items()
            }
        )
        estimator = SelectivityEstimator(statistics)

        trees = [
            normalize(And(P("x") == 1, P("y") == 1)),
            normalize(Or(P("x") == 1, P("z") == 1)),
            normalize(And(P("x") == 1, Or(P("y") == 1, P("z") == 1))),
            normalize(Or(And(P("x") == 1, P("y") == 1), Not(P("z") == 1))),
        ]
        # Enumerate the joint distribution exactly.
        worlds = []
        for bits in itertools.product([0, 1], repeat=3):
            weight = 1.0
            for (name, probability), bit in zip(sorted(probabilities.items()), bits):
                weight *= probability if bit else (1 - probability)
            worlds.append((Event(dict(zip(sorted(probabilities), bits))), weight))
        for tree in trees:
            true_selectivity = sum(
                weight for event, weight in worlds if tree.evaluate(event)
            )
            bounds = estimator.estimate(tree)
            assert bounds.min - 1e-9 <= true_selectivity <= bounds.max + 1e-9
            assert true_selectivity == pytest.approx(bounds.avg, abs=1e-9)

    def test_auction_estimates_bracket_measurements(
        self, workload, auction_events, auction_subscriptions, auction_estimator
    ):
        """On the real workload the measured selectivity must fall inside
        (or very near) the [min, max] estimate."""
        sample = auction_events.events[:300]
        for subscription in auction_subscriptions[:60]:
            bounds = auction_estimator.estimate(subscription.tree)
            measured = auction_estimator.measure(subscription.tree, sample)
            assert bounds.min - 0.02 <= measured <= bounds.max + 0.02

    @given(strategies.trees())
    @settings(max_examples=60)
    def test_estimates_always_well_formed(self, tree):
        statistics = EventStatistics({}, default_probability=0.4)
        estimator = SelectivityEstimator(statistics)
        bounds = estimator.estimate(normalize(tree))
        assert 0.0 <= bounds.min <= bounds.avg <= bounds.max <= 1.0
