"""Property tests: sharded matching ≡ unsharded ≡ per-event oracle.

The equivalence harness of the sharded engine
(:mod:`repro.matching.sharded`): at every point of an arbitrary
register/unregister/replace churn history, for every shard count and
every executor — serial, threaded, and process workers fed
shared-memory batches — a :class:`ShardedMatcher` must produce exactly the
per-event id lists of one unsharded :class:`CountingMatcher` over the
same table — and exactly its path-independent ``MatchStatistics``
counters — including empty shards and worst-case all-subscriptions-in-
one-shard skew.  A concurrency stress section hammers a threaded
matcher from many caller threads and asserts the merge stays
deterministic.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MatchingError
from repro.events import Event, EventBatch
from repro.matching.counting import CountingMatcher
from repro.matching.sharded import ShardedMatcher, shard_of
from repro.subscriptions.builder import P
from repro.subscriptions.subscription import Subscription

from tests import strategies

#: Churn op codes drawn by the properties below (register twice as
#: likely, like the batch-equivalence suite).
_OPS = ["register", "register", "replace", "unregister"]

SHARD_COUNTS = [1, 2, 3, 8]
EXECUTORS = ["serial", "threads", "processes"]


def churn_ops():
    """A random churn history: (op, tree) pairs."""
    return st.lists(
        st.tuples(st.sampled_from(_OPS), strategies.trees()),
        min_size=1,
        max_size=10,
    )


def apply_churn(ops, *matchers):
    """Apply ``ops`` to every matcher in lockstep (ids never recycled)."""
    next_id = 0
    live = []
    for op, tree in ops:
        if op == "register" or not live:
            subscription = Subscription(next_id, tree)
            next_id += 1
            live.append(subscription.id)
            for matcher in matchers:
                matcher.register(subscription)
        elif op == "replace":
            target = live[len(live) // 2]
            replacement = Subscription(target, tree)
            for matcher in matchers:
                matcher.replace(replacement)
        else:
            target = live.pop()
            for matcher in matchers:
                matcher.unregister(target)


def counters(stats):
    """The path-independent counter tuple (wall clock excluded)."""
    return (
        stats.events,
        stats.matches,
        stats.candidates,
        stats.tree_evaluations,
        stats.fulfilled_predicates,
    )


class _AllOnShardZero(ShardedMatcher):
    """Worst-case skew: every subscription routed to shard 0."""

    def shard_of(self, subscription_id: int) -> int:
        return 0


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("executor", EXECUTORS)
@given(ops=churn_ops(), events=st.lists(strategies.events(), max_size=8))
@settings(max_examples=20, deadline=None)
def test_sharded_equals_unsharded_and_oracle(shards, executor, ops, events):
    sharded = ShardedMatcher(shards, executor=executor)
    plain = CountingMatcher()
    apply_churn(ops, sharded, plain)
    try:
        batch = EventBatch(events)
        assert sharded.match_batch(batch) == plain.match_batch(batch)
        assert counters(sharded.statistics) == counters(plain.statistics)
        # The per-event oracle, through both single-event entry points.
        oracle = [plain.match(event) for event in events]
        assert [sharded.match(event) for event in events] == oracle
        assert counters(sharded.statistics) == counters(plain.statistics)
        assert sharded.subscriptions() == plain.subscriptions()
        assert sharded.entry_count == plain.entry_count
        assert sharded.tree_slot_count == plain.tree_slot_count
        assert sharded.negated_entry_count == plain.negated_entry_count
    finally:
        sharded.close()


@pytest.mark.parametrize("executor", EXECUTORS)
@given(ops=churn_ops(), events=st.lists(strategies.events(), max_size=6))
@settings(max_examples=15, deadline=None)
def test_all_subscriptions_on_one_shard_skew(executor, ops, events):
    """Results survive total load-balance failure (everything on shard 0)."""
    skewed = _AllOnShardZero(4, executor=executor)
    plain = CountingMatcher()
    apply_churn(ops, skewed, plain)
    try:
        populations = skewed.shard_populations
        assert populations[1:] == [0, 0, 0]
        assert populations[0] == plain.subscription_count
        assert skewed.match_batch(events) == plain.match_batch(events)
        assert counters(skewed.statistics) == counters(plain.statistics)
    finally:
        skewed.close()


@given(ops=churn_ops(), events=st.lists(strategies.events(), max_size=6))
@settings(max_examples=15, deadline=None)
def test_more_shards_than_subscriptions(ops, events):
    """Mostly-empty shards contribute empty lists and zero counters."""
    sharded = ShardedMatcher(8, executor="serial")
    plain = CountingMatcher()
    apply_churn(ops[:3], sharded, plain)
    assert sharded.match_batch(events) == plain.match_batch(events)
    assert counters(sharded.statistics) == counters(plain.statistics)


@given(ops=churn_ops(), events=st.lists(strategies.events(), max_size=6))
@settings(max_examples=15, deadline=None)
def test_compaction_inside_shards_is_invisible(ops, events):
    """Explicit per-shard rebuild() never changes match results."""
    sharded = ShardedMatcher(3, executor="serial")
    plain = CountingMatcher()
    apply_churn(ops, sharded, plain)
    before = sharded.match_batch(events)
    sharded.rebuild()
    assert sharded.match_batch(events) == before == plain.match_batch(events)


def test_shard_routing_is_stable_and_balanced():
    """Sequential ids (the allocator's pattern) spread across all shards."""
    populations = [0] * 8
    for sub_id in range(256):
        assert shard_of(sub_id, 8) == shard_of(sub_id, 8)
        populations[shard_of(sub_id, 8)] += 1
    # splitmix64 mixing: every shard populated, no shard starved (the
    # exact split is deterministic — seed-free — so this cannot flake).
    assert min(populations) >= 16
    assert sum(populations) == 256


def test_replace_keeps_the_subscription_on_its_shard():
    matcher = ShardedMatcher(4, executor="serial")
    matcher.register(Subscription(11, P("a") == 1))
    home = matcher.shard_of(11)
    before = matcher.shard_populations
    matcher.replace(Subscription(11, P("a") >= 5))
    assert matcher.shard_populations == before
    assert matcher.shards[home].subscriptions()[11].tree is not None


def test_replace_with_identical_tree_is_a_noop_equivalent():
    tree = P("a") <= 3
    matcher = ShardedMatcher(4, executor="serial")
    plain = CountingMatcher()
    for engine in (matcher, plain):
        engine.register(Subscription(2, tree))
        engine.replace(Subscription(2, tree))
    events = [Event({"a": value}) for value in (1, 3, 7)]
    assert matcher.match_batch(events) == plain.match_batch(events)


def test_unknown_and_duplicate_ids_raise_from_the_owning_shard():
    matcher = ShardedMatcher(4, executor="serial")
    with pytest.raises(MatchingError):
        matcher.unregister(99)  # id hashed to an empty shard
    matcher.register(Subscription(1, P("a") == 1))
    with pytest.raises(MatchingError):
        matcher.register(Subscription(1, P("a") == 2))
    with pytest.raises(MatchingError):
        matcher.replace(Subscription(7, P("a") == 2))


def test_invalid_configuration_rejected():
    with pytest.raises(MatchingError):
        ShardedMatcher(0)
    with pytest.raises(MatchingError):
        ShardedMatcher(2, executor="fibers")


def test_out_of_range_shard_routing_rejected():
    class Broken(ShardedMatcher):
        def shard_of(self, subscription_id: int) -> int:
            return 17

    with pytest.raises(MatchingError):
        Broken(2, executor="serial").register(Subscription(1, P("a") == 1))


def test_injected_executor_is_not_shut_down_by_close():
    pool = ThreadPoolExecutor(max_workers=2)
    try:
        matcher = ShardedMatcher(2, executor=pool)
        matcher.register(Subscription(1, P("a") == 1))
        matcher.register(Subscription(2, P("a") >= 0))
        events = [Event({"a": 1})]
        assert matcher.match_batch(events) == [[1, 2]]
        matcher.close()
        # The pool belongs to the caller: still usable after close().
        assert pool.submit(lambda: 42).result() == 42
        assert matcher.match_batch(events) == [[1, 2]]
    finally:
        pool.shutdown(wait=True)


def test_owned_executor_close_is_idempotent_and_recoverable():
    matcher = ShardedMatcher(2, executor="threads")
    matcher.register(Subscription(1, P("a") == 1))
    matcher.register(Subscription(2, P("a") >= 0))
    events = [Event({"a": 1})]
    assert matcher.match_batch(events) == [[1, 2]]
    matcher.close()
    matcher.close()
    # A fresh pool is built lazily on the next threaded batch.
    with matcher:
        assert matcher.match_batch(events) == [[1, 2]]


def test_statistics_reset_only_touches_the_aggregate():
    """Resetting the facade's counters must not corrupt later deltas."""
    sharded = ShardedMatcher(3, executor="serial")
    plain = CountingMatcher()
    for sub_id in range(9):
        subscription = Subscription(sub_id, P("a") <= sub_id)
        sharded.register(subscription)
        plain.register(subscription)
    events = [Event({"a": sub_id % 5}) for sub_id in range(12)]
    sharded.match_batch(events)
    plain.match_batch(events)
    sharded.statistics.reset()
    plain.statistics.reset()
    assert sharded.match_batch(events) == plain.match_batch(events)
    assert counters(sharded.statistics) == counters(plain.statistics)


# -- concurrency stress -------------------------------------------------------


def test_threaded_matching_is_deterministic_under_hammering(
    workload, auction_subscriptions, auction_events
):
    """Many caller threads, one threaded matcher: every result identical.

    The merge contract (shard-order collection + stable sort of merged
    id lists) makes a threaded run indistinguishable from a serial one,
    however calls interleave; 32 concurrent ``match_batch`` calls must
    all equal the unsharded reference, and repeating the same batch must
    reproduce the same lists (seeded workload, so this is end-to-end
    reproducible).
    """
    plain = CountingMatcher()
    with ShardedMatcher(4, executor="threads") as sharded:
        for subscription in auction_subscriptions:
            plain.register(subscription)
            sharded.register(subscription)
        batch = EventBatch(auction_events.events[:128])
        expected = plain.match_batch(batch)
        assert sharded.match_batch(batch) == expected
        with ThreadPoolExecutor(max_workers=4) as callers:
            futures = [
                callers.submit(sharded.match_batch, batch) for _ in range(32)
            ]
            results = [future.result() for future in futures]
        assert all(result == expected for result in results)
        # Seeded reproducibility: the same batch twice, bit-identical.
        assert sharded.match_batch(batch) == sharded.match_batch(batch)
        # Call-granularity atomicity: 32 + 3 batch calls, every counter
        # exactly (35 ×) the single-pass reference's.
        single = counters(plain.statistics)
        aggregate = counters(sharded.statistics)
        assert aggregate == tuple(value * 35 for value in single)


def test_threaded_churn_between_hammering_rounds(workload):
    """Churn from the caller thread between rounds stays serialized."""
    subscriptions = workload.generate_subscriptions(60)
    events = workload.generate_events(64)
    plain = CountingMatcher()
    with ShardedMatcher(3, executor="threads") as sharded:
        for subscription in subscriptions:
            plain.register(subscription)
            sharded.register(subscription)
        for round_index in range(3):
            expected = plain.match_batch(events)
            with ThreadPoolExecutor(max_workers=3) as callers:
                results = list(
                    callers.map(
                        lambda _: sharded.match_batch(events), range(6)
                    )
                )
            assert all(result == expected for result in results)
            victim = subscriptions[round_index].id
            plain.unregister(victim)
            sharded.unregister(victim)
        assert plain.match_batch(events) == sharded.match_batch(events)


# -- process executor lifecycle ----------------------------------------------


def test_process_pool_restart_replays_the_table(workload):
    """close() + next match rebuilds workers from the authority tables.

    This is the broker restart/migration path: the subscription log is
    re-seeded with the full table and drained into the fresh pool, so
    results (and counters) are as if the pool had never died.
    """
    subscriptions = workload.generate_subscriptions(40)
    events = workload.generate_events(48)
    plain = CountingMatcher()
    with ShardedMatcher(3, executor="processes") as sharded:
        for subscription in subscriptions:
            plain.register(subscription)
            sharded.register(subscription)
        expected = plain.match_batch(events)
        assert sharded.match_batch(events) == expected
        sharded.close()  # pool gone; matcher still usable
        assert sharded.match_batch(events) == expected
        # Churn against a *stopped* pool lands in the tables only and
        # must still be replayed correctly into the next pool.
        sharded.close()
        victim = subscriptions[0].id
        plain.unregister(victim)
        sharded.unregister(victim)
        assert sharded.match_batch(events) == plain.match_batch(events)


def test_process_executor_recovers_from_killed_workers(workload):
    """Dead workers are healed *inside* the failing call: the pool is
    torn down, the tables replay into fresh workers, and the same
    ``match_batch`` answers correctly (the crash is only visible in the
    health report)."""
    subscriptions = workload.generate_subscriptions(20)
    events = workload.generate_events(16)
    plain = CountingMatcher()
    with ShardedMatcher(2, executor="processes") as sharded:
        for subscription in subscriptions:
            plain.register(subscription)
            sharded.register(subscription)
        expected = plain.match_batch(events)
        assert sharded.match_batch(events) == expected
        for process in sharded._pool._processes:
            process.terminate()
            process.join(5.0)
        assert sharded.match_batch(events) == expected
        health = sharded.health_report()
        assert health.executor == "processes"
        assert not health.degraded
        assert health.crashes >= 1
        assert health.rebuilds >= 1


def test_process_executor_raises_with_breaker_disabled(workload):
    """``crash_loop_threshold=None`` restores the old contract: a dead
    worker fails the in-flight call, and the *next* call heals."""
    subscriptions = workload.generate_subscriptions(20)
    events = workload.generate_events(16)
    plain = CountingMatcher()
    with ShardedMatcher(
        2, executor="processes", crash_loop_threshold=None
    ) as sharded:
        for subscription in subscriptions:
            plain.register(subscription)
            sharded.register(subscription)
        expected = plain.match_batch(events)
        assert sharded.match_batch(events) == expected
        for process in sharded._pool._processes:
            process.terminate()
            process.join(5.0)
        with pytest.raises(MatchingError):
            sharded.match_batch(events)
        # The failed call tore the pool down; the next one replays the
        # tables into fresh workers and answers correctly again.
        assert sharded.match_batch(events) == expected
        assert sharded.health_report().crashes == 1


def test_process_executor_leaves_no_shared_segments(workload):
    """Every packed batch is released, even across close/restart."""
    from repro.matching.shm import live_segment_names

    subscriptions = workload.generate_subscriptions(30)
    events = workload.generate_events(512)  # large: forces segment mode
    with ShardedMatcher(2, executor="processes") as sharded:
        for subscription in subscriptions:
            sharded.register(subscription)
        sharded.match_batch(events)
        assert live_segment_names() == ()
        sharded.close()
        sharded.match_batch(events)
        assert live_segment_names() == ()
    assert live_segment_names() == ()


def test_process_executor_rebuild_and_introspection(workload):
    """rebuild() on live replicas stays invisible; counts match remote."""
    subscriptions = workload.generate_subscriptions(25)
    events = workload.generate_events(32)
    plain = CountingMatcher()
    with ShardedMatcher(3, executor="processes") as sharded:
        for subscription in subscriptions:
            plain.register(subscription)
            sharded.register(subscription)
        before = sharded.match_batch(events)
        sharded.rebuild()
        plain.rebuild()
        assert sharded.match_batch(events) == before == plain.match_batch(events)
        assert sharded.entry_count == plain.entry_count
        assert sharded.tree_slot_count == plain.tree_slot_count
        assert sharded.negated_entry_count == plain.negated_entry_count
        probe = events.events[0]
        assert sharded.fulfilled_counts(probe) == plain.fulfilled_counts(probe)
        assert sum(sharded.shard_populations) == plain.subscription_count


def test_measure_matching_with_process_shards(workload):
    """The experiment helper measures identically through worker processes."""
    from repro.experiments.measurements import measure_matching

    subscriptions = workload.generate_subscriptions(40)
    events = workload.generate_events(32)
    _seconds, fraction, matcher = measure_matching(
        subscriptions, events, shards=2, executor="processes"
    )
    with matcher:
        _plain_seconds, plain_fraction, plain = measure_matching(
            subscriptions, events
        )
        assert fraction == plain_fraction
        assert counters(matcher.statistics) == counters(plain.statistics)


def test_measure_matching_with_shards(workload):
    """The experiment helper accepts shards= and measures identically."""
    from repro.experiments.measurements import measure_matching

    subscriptions = workload.generate_subscriptions(40)
    events = workload.generate_events(32)
    _seconds, fraction, matcher = measure_matching(
        subscriptions, events, shards=3, executor="serial"
    )
    assert isinstance(matcher, ShardedMatcher)
    _plain_seconds, plain_fraction, plain = measure_matching(
        subscriptions, events
    )
    assert isinstance(plain, CountingMatcher)
    assert fraction == plain_fraction
    assert counters(matcher.statistics) == counters(plain.statistics)
