"""The chaos soak: seeded fault storms vs the in-process oracle.

The headline robustness test of the fault-injection subsystem
(:mod:`repro.faults`).  One seeded :class:`FaultPlan` drives wire
faults (connection resets, short writes, stalled reads, split frames)
through every subscriber's stream wrapper *and* worker-pool faults
(shard workers killed mid-``match_batch``) through every broker's
sharded engine, while three remote subscribers with heartbeats and
``auto_reconnect`` ride out the storm.  After at least 20 faults
spanning at least four kinds, the plan is disarmed, the system
quiesces, and every client's delivered multiset must be bit-identical
to its in-process oracle session — same events, same sequence numbers
— with a gapless per-client ``delivery_seq``.

A second scenario pins the crash-loop circuit breaker: a worker pool
whose every ``match`` request dies trips the breaker, the matcher
degrades from processes to in-process threads, and the answers — the
whole point of the breaker — never change.
"""

import asyncio

import pytest

from repro.errors import TransportError
from repro.events import Event
from repro.faults import (
    BackoffSchedule,
    FaultPlan,
    WorkerFaultInjector,
    faulty_stream,
)
from repro.matching.counting import CountingMatcher
from repro.matching.sharded import ShardedMatcher
from repro.routing.topology import line_topology
from repro.service import PubSubService
from repro.subscriptions.builder import P
from repro.subscriptions.subscription import Subscription
from repro.transport import PubSubClient, PubSubServer

from tests.test_transport_e2e import (
    _Oracle,
    _pump_until,
    assert_gapless,
    fingerprint,
)

#: Every one of these fault kinds must actually fire during the soak.
REQUIRED_KINDS = frozenset(
    {"reset", "short_write", "stall", "split", "worker_kill"}
)

#: (name, broker, filter trees) for the three chaos subscribers.
SUBSCRIBERS = (
    ("alice", "b1", (P("price") <= 12.0, P("category") == "fiction")),
    ("bob", "b0", (P("price") >= 0.0,)),
    ("carol", "b1", (P("category") == "tech", P("price") >= 18.0)),
)


def _event(i, pad=0):
    payload = {
        "price": float(i % 25),
        "category": ("fiction", "tech", "news")[i % 3],
        "i": i,
    }
    if pad:
        payload["pad"] = "x" * pad
    return Event(payload)


async def _chaos_publish(client, event):
    """Publish through a faulted client: retry across resets/reconnects.

    A retry after an ambiguous failure may double-publish — which is
    fine for oracle equivalence, since every event the service accepts
    reaches the remote client and its oracle session identically."""
    for _ in range(200):
        try:
            await client.publish(event)
            return
        except (TransportError, ConnectionError, OSError):
            await asyncio.sleep(0.05)
    raise AssertionError("publish never went through")


class TestChaosSoak:
    @pytest.mark.timeout(300)
    def test_seeded_storm_heals_to_oracle_equivalence(self):
        async def main():
            plan = FaultPlan(
                3,
                wire_kinds=("reset", "short_write", "stall", "split"),
                mean_gap_bytes=800.0,
                min_first_gap_bytes=256,
                stall_seconds=0.05,
                holdback_seconds=0.02,
                worker_kinds=("worker_kill",),
                worker_mean_gap_calls=25.0,
            )
            # Setup (handshakes, subscribes) runs fault-free; the storm
            # starts once the topology is wired.
            plan.disarm()
            service = PubSubService(
                topology=line_topology(2),
                max_batch=1,
                shards=2,
                executor="processes",
            )
            for broker_id, broker in service.network.brokers.items():
                matcher = broker.matcher
                assert isinstance(matcher, ShardedMatcher)
                matcher.set_fault_injector(
                    WorkerFaultInjector(plan, label=broker_id)
                )
            try:
                async with PubSubServer(
                    service,
                    "b0",
                    queue_capacity=512,
                    heartbeat_interval=0.2,
                    idle_timeout=2.0,
                ) as server:
                    clients = {}
                    oracles = {}
                    for name, broker_id, trees in SUBSCRIBERS:
                        client = PubSubClient(
                            "127.0.0.1",
                            server.port,
                            name,
                            broker=broker_id,
                            queue_capacity=512,
                            heartbeat_interval=0.2,
                            liveness_timeout=1.5,
                            auto_reconnect=True,
                            max_reconnect_attempts=50,
                            backoff=BackoffSchedule(
                                seed=3, label=name, base=0.02, cap=0.2
                            ),
                            stream_wrapper=faulty_stream(plan, name),
                        )
                        await client.connect()
                        oracle = _Oracle(service, broker_id, "oracle-" + name)
                        for tree in trees:
                            await client.subscribe(tree)
                            oracle.subscribe(tree)
                        clients[name] = client
                        oracles[name] = oracle

                    # The publisher stays clean: the storm is on the
                    # subscribers' wires and in the worker pools.
                    publisher = PubSubClient(
                        "127.0.0.1", server.port, "publisher"
                    )
                    await publisher.connect()

                    plan.arm()
                    loop = asyncio.get_running_loop()
                    deadline = loop.time() + 150.0
                    published = 0
                    while (
                        plan.injected < 20
                        or not REQUIRED_KINDS <= plan.kinds_injected()
                    ):
                        assert loop.time() < deadline, (
                            "storm never reached coverage: %r injected, "
                            "kinds %r"
                            % (plan.injected, sorted(plan.kinds_injected()))
                        )
                        # The clean publisher guarantees forward
                        # progress; the wrapped subscribers publish
                        # padded events to drive their write lanes.
                        for _ in range(15):
                            await publisher.publish(_event(published))
                            published += 1
                        for client in clients.values():
                            for _ in range(3):
                                await _chaos_publish(
                                    client, _event(published, pad=180)
                                )
                                published += 1
                        await asyncio.sleep(0.05)

                    assert plan.injected >= 20
                    assert REQUIRED_KINDS <= plan.kinds_injected()

                    # Quiesce: no further faults; reconnect supervisors
                    # finish healing and the backlog drains.
                    plan.disarm()

                    def healed():
                        return all(
                            len(clients[name].notifications)
                            >= len(oracles[name].notifications)
                            for name, _, _ in SUBSCRIBERS
                        )

                    await _pump_until(healed, timeout=60.0)

                    for name, _, _ in SUBSCRIBERS:
                        client = clients[name]
                        assert fingerprint(client.notifications) == (
                            fingerprint(oracles[name].notifications)
                        ), "client %r diverged from its oracle" % name
                        assert_gapless(client)

                    # The storm was real: every subscriber survived at
                    # least one connection loss.
                    assert sum(
                        c.reconnects for c in clients.values()
                    ) >= 1
                    for client in clients.values():
                        await client.close()
                    await publisher.close()
            finally:
                service.network.close()

        asyncio.run(main())

    @pytest.mark.timeout(120)
    def test_crash_loop_breaker_degrades_with_identical_results(self):
        subscriptions = [
            Subscription(i, P("price") <= float(5 * (i + 1)))
            for i in range(12)
        ] + [
            Subscription(100 + i, P("category") == name)
            for i, name in enumerate(("fiction", "tech", "news"))
        ]
        batches = [
            [_event(i) for i in range(start, start + 8)]
            for start in range(0, 64, 8)
        ]
        plain = CountingMatcher()
        for subscription in subscriptions:
            plain.register(subscription)
        expected = [plain.match_batch(batch) for batch in batches]

        # Every match request kills its worker: a crash loop.
        plan = FaultPlan(
            7, worker_kinds=("worker_kill",), worker_mean_gap_calls=1.0
        )
        with ShardedMatcher(
            2, executor="processes", crash_loop_threshold=2
        ) as sharded:
            for subscription in subscriptions:
                sharded.register(subscription)
            sharded.set_fault_injector(WorkerFaultInjector(plan))
            results = [sharded.match_batch(batch) for batch in batches]
            health = sharded.health_report()
            assert results == expected  # bit-identical through the break
            assert health.degraded
            assert health.executor == "threads"
            assert health.crashes >= 2
            assert health.degraded_reason is not None
            assert "crash loop" in health.degraded_reason
            assert plan.counts()["worker_kill"] >= 2

            # Degraded-mode churn keeps matching correctly.
            extra = Subscription(500, P("i") >= 0)
            plain.register(extra)
            sharded.register(extra)
            tail = [_event(i) for i in range(64, 72)]
            assert sharded.match_batch(tail) == plain.match_batch(tail)
            report = sharded.health_report()
            assert report.degraded and report.executor == "threads"
