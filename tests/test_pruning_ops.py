"""Tests for pruning operations: enumeration, application, restrictions."""

import pytest

from repro.core.ops import (
    PruningOp,
    PruningState,
    apply_pruning,
    enumerate_prunings,
    is_prunable,
    pruned_child,
)
from repro.errors import PruningError
from repro.subscriptions.builder import And, Or, P
from repro.subscriptions.nodes import AndNode, OrNode, PredicateLeaf
from repro.subscriptions.normalize import is_normalized, normalize
from repro.subscriptions.subscription import Subscription


def norm(tree):
    return normalize(tree)


class TestEnumeration:
    def test_flat_and_offers_each_child(self):
        tree = norm(And(P("a") == 1, P("b") == 2, P("c") == 3))
        ops = enumerate_prunings(tree)
        assert len(ops) == 3
        assert all(op.and_path == () for op in ops)

    def test_single_predicate_offers_nothing(self):
        assert enumerate_prunings(norm(P("a") == 1)) == []

    def test_flat_or_offers_nothing(self):
        tree = norm(Or(P("a") == 1, P("b") == 2))
        assert enumerate_prunings(tree) == []

    def test_nested_ands_all_found(self):
        tree = norm(Or(And(P("a") == 1, P("b") == 2), And(P("c") == 3, P("d") == 4)))
        ops = enumerate_prunings(tree)
        assert len(ops) == 4
        assert {op.and_path for op in ops} == {(0,), (1,)}

    def test_is_prunable_matches_enumeration(self):
        prunable = norm(And(P("a") == 1, P("b") == 2))
        not_prunable = norm(Or(P("a") == 1, P("b") == 2))
        assert is_prunable(prunable)
        assert not is_prunable(not_prunable)

    def test_deterministic_order(self):
        tree = norm(And(P("a") == 1, P("b") == 2, Or(P("c") == 3, P("d") == 4)))
        assert enumerate_prunings(tree) == enumerate_prunings(tree)


class TestBottomUpRestriction:
    def test_child_containing_and_not_removable(self):
        # top AND has children: leaf and OR(leaf, AND(...)) — the OR child
        # contains an AND, so bottom-up forbids removing it directly.
        tree = norm(
            And(P("x") == 0, Or(P("a") == 1, And(P("b") == 2, P("c") == 3)))
        )
        unrestricted = enumerate_prunings(tree, bottom_up_only=False)
        restricted = enumerate_prunings(tree, bottom_up_only=True)
        assert len(unrestricted) == 4
        assert len(restricted) == 3  # the OR child of the root is excluded

    def test_leaf_children_always_removable(self):
        tree = norm(And(P("a") == 1, P("b") == 2))
        assert len(enumerate_prunings(tree, bottom_up_only=True)) == 2

    def test_is_prunable_equivalent_under_restriction(self):
        tree = norm(
            And(P("x") == 0, Or(P("a") == 1, And(P("b") == 2, P("c") == 3)))
        )
        assert is_prunable(tree, bottom_up_only=True) == is_prunable(tree)


class TestApplication:
    def test_removes_named_child(self):
        tree = norm(And(P("a") == 1, P("b") == 2, P("c") == 3))
        target = pruned_child(tree, PruningOp((), 1))
        pruned = apply_pruning(tree, PruningOp((), 1))
        assert isinstance(pruned, AndNode)
        assert len(pruned.children) == 2
        assert target not in pruned.children

    def test_two_child_and_folds_to_survivor(self):
        tree = norm(And(P("a") == 1, P("b") == 2))
        pruned = apply_pruning(tree, PruningOp((), 0))
        assert isinstance(pruned, PredicateLeaf)

    def test_result_stays_normalized(self):
        tree = norm(
            And(Or(P("a") == 1, P("b") == 2), Or(P("c") == 3, And(P("d") == 4, P("e") == 5)))
        )
        for op in enumerate_prunings(tree):
            assert is_normalized(apply_pruning(tree, op))

    def test_surviving_or_flattens_into_parent_or(self):
        # Or(And(Or(a,b), c), d): pruning c leaves Or(a,b) under Or -> flatten
        tree = norm(
            Or(And(Or(P("a") == 1, P("b") == 2), P("c") == 3), P("d") == 4)
        )
        inner_and_path = next(
            path for path, node in tree.iter_nodes() if isinstance(node, AndNode)
        )
        # find the index of the leaf child (c) inside the AND
        and_node = tree.node_at(inner_and_path)
        leaf_index = next(
            index
            for index, child in enumerate(and_node.children)
            if isinstance(child, PredicateLeaf)
        )
        pruned = apply_pruning(tree, PruningOp(inner_and_path, leaf_index))
        assert isinstance(pruned, OrNode)
        assert is_normalized(pruned)
        assert len(pruned.children) == 3

    def test_invalid_path_rejected(self):
        tree = norm(And(P("a") == 1, P("b") == 2))
        with pytest.raises(PruningError):
            apply_pruning(tree, PruningOp((0,), 0))

    def test_invalid_index_rejected(self):
        tree = norm(And(P("a") == 1, P("b") == 2))
        with pytest.raises(PruningError):
            apply_pruning(tree, PruningOp((), 5))

    def test_duplicate_children_after_pruning_are_merged(self):
        # Or(And(a, b), b): pruning a leaves Or(b, b) -> folds to b
        b = P("bb") == 2
        tree = norm(Or(And(P("a") == 1, P("bb") == 2), P("bb") == 2))
        and_path = next(
            path for path, node in tree.iter_nodes() if isinstance(node, AndNode)
        )
        and_node = tree.node_at(and_path)
        a_index = next(
            index
            for index, child in enumerate(and_node.children)
            if child.predicate.attribute == "a"
        )
        pruned = apply_pruning(tree, PruningOp(and_path, a_index))
        assert is_normalized(pruned)
        assert isinstance(pruned, PredicateLeaf)


class TestPruningState:
    def test_tracks_original_and_current(self):
        subscription = Subscription(1, And(P("a") == 1, P("b") == 2, P("c") == 3))
        state = PruningState(subscription)
        op = enumerate_prunings(state.current)[0]
        state.apply(op)
        assert state.pruning_count == 1
        assert state.original is subscription.tree
        assert state.current != subscription.tree

    def test_as_subscription_carries_pruned_tree(self):
        subscription = Subscription(1, And(P("a") == 1, P("b") == 2), owner="o")
        state = PruningState(subscription)
        assert state.as_subscription() is subscription  # unpruned: same object
        state.apply(enumerate_prunings(state.current)[0])
        pruned = state.as_subscription()
        assert pruned.id == 1
        assert pruned.owner == "o"
        assert pruned.leaf_count == 1

    def test_history_replays_to_current(self):
        subscription = Subscription(
            1, And(P("a") == 1, P("b") == 2, Or(P("c") == 3, P("d") == 4))
        )
        state = PruningState(subscription)
        while True:
            ops = enumerate_prunings(state.current)
            if not ops:
                break
            state.apply(ops[0])
        replayed = subscription.tree
        for op in state.history:
            replayed = apply_pruning(replayed, op)
        assert replayed == state.current
