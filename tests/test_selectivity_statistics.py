"""Tests for attribute statistics models."""

import pytest

from repro.errors import SelectivityError
from repro.events import Event
from repro.selectivity.statistics import (
    CategoricalStatistics,
    ContinuousStatistics,
    EmpiricalStatistics,
    EventStatistics,
)
from repro.subscriptions.predicates import Operator, Predicate


class TestCategorical:
    @pytest.fixture()
    def stats(self):
        return CategoricalStatistics({"a": 0.25, "b": 0.5, "c": 0.25})

    def test_eq(self, stats):
        assert stats.predicate_probability(Operator.EQ, "b") == pytest.approx(0.5)

    def test_eq_unknown_value(self, stats):
        assert stats.predicate_probability(Operator.EQ, "zzz") == 0.0

    def test_ne_complements_within_presence(self, stats):
        assert stats.predicate_probability(Operator.NE, "b") == pytest.approx(0.5)

    def test_in_set_sums(self, stats):
        prob = stats.predicate_probability(Operator.IN_SET, frozenset({"a", "c"}))
        assert prob == pytest.approx(0.5)

    def test_le_lexicographic(self, stats):
        assert stats.predicate_probability(Operator.LE, "b") == pytest.approx(0.75)
        assert stats.predicate_probability(Operator.LT, "b") == pytest.approx(0.25)

    def test_prefix(self):
        stats = CategoricalStatistics({"abc": 0.5, "abd": 0.25, "xyz": 0.25})
        assert stats.predicate_probability(Operator.PREFIX, "ab") == pytest.approx(0.75)

    def test_contains(self):
        stats = CategoricalStatistics({"abc": 0.5, "xbcx": 0.25, "zzz": 0.25})
        assert stats.predicate_probability(
            Operator.CONTAINS, "bc"
        ) == pytest.approx(0.75)

    def test_presence_scales_probabilities(self):
        stats = CategoricalStatistics({"a": 1.0}, presence=0.5)
        assert stats.predicate_probability(Operator.EQ, "a") == pytest.approx(0.5)
        assert stats.predicate_probability(Operator.NE, "a") == pytest.approx(0.0)

    def test_weights_are_normalized(self):
        stats = CategoricalStatistics({"a": 2, "b": 6})
        assert stats.predicate_probability(Operator.EQ, "a") == pytest.approx(0.25)

    def test_rejects_empty(self):
        with pytest.raises(SelectivityError):
            CategoricalStatistics({})

    def test_rejects_bad_presence(self):
        with pytest.raises(SelectivityError):
            CategoricalStatistics({"a": 1.0}, presence=1.5)

    def test_numeric_values(self):
        stats = CategoricalStatistics({1: 0.5, 2: 0.3, 5: 0.2})
        assert stats.predicate_probability(Operator.LE, 2) == pytest.approx(0.8)
        assert stats.predicate_probability(Operator.GT, 2) == pytest.approx(0.2)


class TestContinuous:
    @pytest.fixture()
    def stats(self):
        return ContinuousStatistics([0.0, 10.0, 20.0], [0.0, 0.5, 1.0])

    def test_point_mass_zero(self, stats):
        assert stats.predicate_probability(Operator.EQ, 10.0) == 0.0

    def test_le_interpolates(self, stats):
        assert stats.predicate_probability(Operator.LE, 5.0) == pytest.approx(0.25)
        assert stats.predicate_probability(Operator.LE, 15.0) == pytest.approx(0.75)

    def test_ge_is_complement(self, stats):
        assert stats.predicate_probability(Operator.GE, 15.0) == pytest.approx(0.25)

    def test_out_of_support(self, stats):
        assert stats.predicate_probability(Operator.LE, -5.0) == 0.0
        assert stats.predicate_probability(Operator.LE, 100.0) == 1.0

    def test_string_probe_is_zero(self, stats):
        assert stats.predicate_probability(Operator.LE, "m") == 0.0

    def test_validation(self):
        with pytest.raises(SelectivityError):
            ContinuousStatistics([0.0], [0.0])
        with pytest.raises(SelectivityError):
            ContinuousStatistics([0.0, 0.0], [0.0, 1.0])
        with pytest.raises(SelectivityError):
            ContinuousStatistics([0.0, 1.0], [0.5, 0.2])


class TestEmpirical:
    @pytest.fixture()
    def stats(self):
        values = [1, 1, 2, 3, "x"]
        return EmpiricalStatistics(values, total_events=10)

    def test_presence_fraction(self, stats):
        assert stats.presence == pytest.approx(0.5)

    def test_eq_frequency(self, stats):
        assert stats.predicate_probability(Operator.EQ, 1) == pytest.approx(0.2)

    def test_le_counts_sorted(self, stats):
        assert stats.predicate_probability(Operator.LE, 2) == pytest.approx(0.3)

    def test_string_values_counted(self, stats):
        assert stats.predicate_probability(Operator.EQ, "x") == pytest.approx(0.1)

    def test_prefix(self):
        stats = EmpiricalStatistics(["abc", "abd", "xyz"], total_events=3)
        assert stats.predicate_probability(Operator.PREFIX, "ab") == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(SelectivityError):
            EmpiricalStatistics([1], total_events=0)
        with pytest.raises(SelectivityError):
            EmpiricalStatistics([1, 2], total_events=1)


class TestEventStatistics:
    def test_from_events_matches_sample(self):
        events = [Event({"a": 1}), Event({"a": 2}), Event({"b": "x"})]
        stats = EventStatistics.from_events(events)
        probe = Predicate("a", Operator.EQ, 1)
        assert stats.predicate_probability(probe) == pytest.approx(1 / 3)

    def test_unknown_attribute_uses_default(self):
        stats = EventStatistics({}, default_probability=0.3)
        probe = Predicate("zzz", Operator.EQ, 1)
        assert stats.predicate_probability(probe) == pytest.approx(0.3)

    def test_from_zero_events_rejected(self):
        with pytest.raises(SelectivityError):
            EventStatistics.from_events([])

    def test_contains_and_names(self, simple_statistics):
        assert "cat" in simple_statistics
        assert "zzz" not in simple_statistics
        assert simple_statistics.attribute_names() == ["cat", "flag", "price"]

    def test_probability_clamped(self):
        stats = EventStatistics({}, default_probability=1.0)
        probe = Predicate("x", Operator.EQ, 1)
        assert 0.0 <= stats.predicate_probability(probe) <= 1.0
