"""Tests for the persistent shard worker pool (`matching/process_pool`).

The worker request loop is driven two ways: in a thread over an
in-process pipe (so the loop itself is exercised under coverage, op by
op) and through real worker processes via :class:`ShardWorkerPool` —
including error replies, worker death detection, and graceful,
idempotent shutdown.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.errors import MatchingError
from repro.events import Event, EventBatch
from repro.matching.counting import CountingMatcher
from repro.matching.process_pool import (
    ShardWorkerPool,
    apply_op,
    serve_introspect,
    serve_match,
    shard_worker_main,
)
from repro.matching.shm import live_segment_names, pack_columns, release_columns
from repro.subscriptions.builder import And, P
from repro.subscriptions.serialize import op_to_dict
from repro.subscriptions.subscription import Subscription

SUBSCRIPTIONS = [
    Subscription(1, And(P("price") > 10, P("cat") == "book")),
    Subscription(2, P("price") <= 50),
    Subscription(3, P("cat").in_({"book", "cd"})),
]

EVENTS = [
    Event({"price": 20, "cat": "book"}),
    Event({"price": 60, "cat": "cd"}),
    Event({"other": "x"}),
] * 8


def reference_matcher() -> CountingMatcher:
    matcher = CountingMatcher()
    for subscription in SUBSCRIPTIONS:
        matcher.register(subscription)
    return matcher


class InThreadWorker:
    """The worker loop running in a thread over a real mp pipe."""

    def __init__(self) -> None:
        self.connection, child = multiprocessing.Pipe()
        self.thread = threading.Thread(
            target=shard_worker_main, args=(child, 0.5), daemon=True
        )
        self.thread.start()

    def request(self, command, ops=(), payload=None):
        self.connection.send((command, list(ops), payload))
        return self.connection.recv()

    def stop(self) -> None:
        if self.thread.is_alive():
            self.connection.send(("stop", (), None))
            self.connection.recv()
        self.thread.join(5.0)
        assert not self.thread.is_alive()


@pytest.fixture
def worker():
    worker = InThreadWorker()
    yield worker
    worker.stop()


def test_worker_loop_serves_the_full_protocol(worker):
    reference = reference_matcher()
    register_ops = [op_to_dict("register", sub) for sub in SUBSCRIPTIONS]
    assert worker.request("sync", register_ops) == ("ok", None)

    packed = pack_columns(EventBatch(EVENTS).columns(), inline_max_bytes=0)
    try:
        status, (matched, deltas) = worker.request("match", (), packed)
    finally:
        release_columns(packed)
    assert status == "ok"
    assert matched == reference.match_batch(EventBatch(EVENTS))
    stats = reference.statistics
    assert tuple(deltas) == (
        stats.matches,
        stats.candidates,
        stats.tree_evaluations,
        stats.fulfilled_predicates,
    )
    assert live_segment_names() == ()

    assert worker.request("introspect") == (
        "ok",
        (
            reference.subscription_count,
            reference.entry_count,
            reference.tree_slot_count,
            reference.negated_entry_count,
        ),
    )
    probe = EVENTS[0]
    assert worker.request("fulfilled", (), probe.to_dict()) == (
        "ok",
        reference.fulfilled_counts(probe),
    )


def test_worker_loop_applies_churn_and_rebuild_ops(worker):
    reference = reference_matcher()
    ops = [op_to_dict("register", sub) for sub in SUBSCRIPTIONS]
    ops.append(op_to_dict("unregister", 2))
    ops.append(op_to_dict("replace", Subscription(3, P("cat") == "cd")))
    ops.append(op_to_dict("rebuild"))
    reference.unregister(2)
    reference.replace(Subscription(3, P("cat") == "cd"))
    reference.rebuild()

    packed = pack_columns(EventBatch(EVENTS).columns())
    try:
        status, (matched, _deltas) = worker.request("match", ops, packed)
    finally:
        release_columns(packed)
    assert status == "ok"
    assert matched == reference.match_batch(EventBatch(EVENTS))


def test_worker_loop_matches_with_an_empty_table(worker):
    packed = pack_columns(EventBatch(EVENTS[:3]).columns())
    try:
        status, (matched, deltas) = worker.request("match", (), packed)
    finally:
        release_columns(packed)
    assert status == "ok"
    assert matched == [[], [], []]
    assert tuple(deltas) == (0, 0, 0, 0)


def test_worker_loop_reports_errors_and_survives_them(worker):
    status, message = worker.request("frobnicate")
    assert status == "error"
    assert "unknown shard command" in message
    status, message = worker.request("sync", [op_to_dict("unregister", 99)])
    assert status == "error"
    assert "not registered" in message
    # The loop survived both bad requests.
    assert worker.request("sync") == ("ok", None)


def test_helpers_mirror_a_local_matcher():
    matcher = reference_matcher()
    assert serve_introspect(matcher)[0] == 3
    apply_op(matcher, op_to_dict("unregister", 1))
    assert serve_introspect(matcher)[0] == 2
    packed = pack_columns(EventBatch(EVENTS[:3]).columns())
    try:
        matched, _deltas = serve_match(matcher, packed)
    finally:
        release_columns(packed)
    assert matched == [[2, 3], [3], []]


# -- real worker processes ----------------------------------------------------


def test_pool_round_trips_and_closes_idempotently():
    pool = ShardWorkerPool(2)
    try:
        assert len(pool) == 2
        assert pool.alive
        for shard in range(2):
            assert pool.request(shard, "sync") is None
        assert "2 workers" in repr(pool)
    finally:
        pool.close()
    assert not pool.alive
    pool.close()  # idempotent
    assert "closed" in repr(pool)
    with pytest.raises(MatchingError):
        pool.send(0, "sync")


def test_pool_reports_worker_errors():
    pool = ShardWorkerPool(1)
    try:
        with pytest.raises(MatchingError, match="failed"):
            pool.request(0, "frobnicate")
        # The worker survives its own error replies.
        assert pool.request(0, "sync") is None
    finally:
        pool.close()


def test_pool_detects_dead_workers():
    pool = ShardWorkerPool(1)
    try:
        pool._processes[0].terminate()
        pool._processes[0].join(5.0)
        with pytest.raises(MatchingError):
            pool.request(0, "sync")
    finally:
        pool.close()


def test_pool_with_explicit_spawn_start_method():
    """The spawn path (every platform's lowest common denominator)."""
    pool = ShardWorkerPool(1, start_method="spawn")
    try:
        ops = [op_to_dict("register", sub) for sub in SUBSCRIPTIONS]
        packed = pack_columns(EventBatch(EVENTS).columns(), inline_max_bytes=0)
        try:
            matched, _deltas = pool.request(0, "match", ops, packed)
        finally:
            release_columns(packed)
        assert matched == reference_matcher().match_batch(EventBatch(EVENTS))
        assert live_segment_names() == ()
    finally:
        pool.close()
