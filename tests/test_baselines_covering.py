"""Tests for the covering baseline."""

import pytest

from repro.baselines.covering import CoveringTable, covers, predicate_implies
from repro.errors import MatchingError
from repro.events import Event
from repro.subscriptions.builder import And, Or, P
from repro.subscriptions.predicates import Operator, Predicate
from repro.subscriptions.subscription import Subscription


def pred(attribute, operator, value):
    return Predicate(attribute, operator, value)


class TestPredicateImplication:
    @pytest.mark.parametrize(
        "specific,general,expected",
        [
            (pred("p", Operator.LE, 10), pred("p", Operator.LE, 20), True),
            (pred("p", Operator.LE, 20), pred("p", Operator.LE, 10), False),
            (pred("p", Operator.LT, 10), pred("p", Operator.LE, 10), True),
            (pred("p", Operator.LE, 10), pred("p", Operator.LT, 10), False),
            (pred("p", Operator.LE, 9), pred("p", Operator.LT, 10), True),
            (pred("p", Operator.GE, 10), pred("p", Operator.GE, 5), True),
            (pred("p", Operator.GT, 5), pred("p", Operator.GE, 5), True),
            (pred("p", Operator.GE, 5), pred("p", Operator.GT, 5), False),
            (pred("p", Operator.EQ, 7), pred("p", Operator.LE, 10), True),
            (pred("p", Operator.EQ, 7), pred("p", Operator.GE, 10), False),
            (pred("p", Operator.EQ, 7), pred("p", Operator.NE, 8), True),
            (
                pred("p", Operator.IN_SET, frozenset({1, 2})),
                pred("p", Operator.IN_SET, frozenset({1, 2, 3})),
                True,
            ),
            (
                pred("p", Operator.IN_SET, frozenset({1, 5})),
                pred("p", Operator.LE, 4),
                False,
            ),
            (
                pred("p", Operator.IN_SET, frozenset({1, 3})),
                pred("p", Operator.LE, 4),
                True,
            ),
            (
                pred("p", Operator.NOT_IN_SET, frozenset({1, 2})),
                pred("p", Operator.NE, 1),
                True,
            ),
            (pred("s", Operator.PREFIX, "abc"), pred("s", Operator.PREFIX, "ab"), True),
            (pred("s", Operator.PREFIX, "ab"), pred("s", Operator.PREFIX, "abc"), False),
            (pred("s", Operator.PREFIX, "abc"), pred("s", Operator.CONTAINS, "bc"), True),
            (pred("s", Operator.CONTAINS, "abc"), pred("s", Operator.CONTAINS, "b"), True),
            # different attributes never imply
            (pred("p", Operator.LE, 10), pred("q", Operator.LE, 20), False),
        ],
    )
    def test_implication_matrix(self, specific, general, expected):
        assert predicate_implies(specific, general) is expected

    def test_identity(self):
        probe = pred("p", Operator.LE, 10)
        assert predicate_implies(probe, probe)


class TestCovers:
    def test_fewer_constraints_cover_more(self):
        general = Subscription(1, P("a") == 1)
        specific = Subscription(2, And(P("a") == 1, P("b") <= 5))
        assert covers(general, specific)
        assert not covers(specific, general)

    def test_wider_bound_covers(self):
        general = Subscription(1, And(P("a") == 1, P("b") <= 10))
        specific = Subscription(2, And(P("a") == 1, P("b") <= 5))
        assert covers(general, specific)

    def test_non_conjunctive_is_conservative(self):
        general = Subscription(1, Or(P("a") == 1, P("b") == 2))
        specific = Subscription(2, P("a") == 1)
        assert not covers(general, specific)

    def test_unrelated_subscriptions(self):
        a = Subscription(1, And(P("a") == 1, P("b") <= 5))
        b = Subscription(2, And(P("c") == 1, P("d") <= 5))
        assert not covers(a, b)
        assert not covers(b, a)


class TestCoveringTable:
    def test_suppresses_covered_entries(self):
        table = CoveringTable()
        table.register(Subscription(1, P("a") == 1))
        table.register(Subscription(2, And(P("a") == 1, P("b") <= 5)))
        assert [s.id for s in table.forwarding_set] == [1]
        assert table.suppressed_count == 1

    def test_association_count_reflects_active_only(self):
        table = CoveringTable()
        table.register(Subscription(1, P("a") == 1))
        table.register(Subscription(2, And(P("a") == 1, P("b") <= 5)))
        assert table.association_count == 1

    def test_unregister_reactivates_covered(self):
        table = CoveringTable()
        table.register(Subscription(1, P("a") == 1))
        table.register(Subscription(2, And(P("a") == 1, P("b") <= 5)))
        table.unregister(1)
        assert [s.id for s in table.forwarding_set] == [2]

    def test_match_uses_active_set(self):
        table = CoveringTable()
        table.register(Subscription(1, P("a") == 1))
        table.register(Subscription(2, And(P("a") == 1, P("b") <= 5)))
        assert table.match(Event({"a": 1, "b": 100}))
        assert not table.match(Event({"a": 2}))

    def test_forwarding_is_superset_safe(self, workload):
        """Whatever covering suppresses, forwarding decisions stay exact:
        an event matches the active set iff it matches some registered sub."""
        table = CoveringTable()
        subs = workload.generate_subscriptions(40)
        for subscription in subs:
            table.register(subscription)
        events = workload.generate_events(80).events
        for event in events:
            direct = any(s.tree.evaluate(event) for s in subs)
            assert table.match(event) == direct

    def test_duplicate_registration_rejected(self):
        table = CoveringTable()
        table.register(Subscription(1, P("a") == 1))
        with pytest.raises(MatchingError):
            table.register(Subscription(1, P("a") == 2))

    def test_unknown_unregister_rejected(self):
        with pytest.raises(MatchingError):
            CoveringTable().unregister(5)
